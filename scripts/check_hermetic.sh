#!/usr/bin/env bash
# Verifies the workspace is hermetic: it must build and test with the
# crates.io registry unreachable, and the dependency tree must contain
# only workspace-local crates (the `cca-*` family plus the root package).
#
# Run from anywhere inside the repo:
#   scripts/check_hermetic.sh [--quick]
#
# --quick skips the test run (build + tree check only).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

# Forbid any network access from cargo: offline mode fails fast if any
# dependency would need to be fetched.
export CARGO_NET_OFFLINE=true

echo "== hermetic check: dependency tree =="
TREE=$(cargo tree --workspace --edges normal,build,dev --prefix none 2>&1)
echo "$TREE"

# Every line of `cargo tree` must be a workspace member: the root package
# `cca` or a `cca-*` crate, each with a local `(/...)` path source and no
# registry hash.
BAD=$(printf '%s\n' "$TREE" | sed 's/ (\*)$//' | grep -v -E '^(cca|cca-[a-z]+) v[0-9][^ ]* \(/' || true)
if [[ -n "$BAD" ]]; then
    echo "ERROR: non-workspace dependencies found:" >&2
    printf '%s\n' "$BAD" >&2
    exit 1
fi
echo "OK: only workspace-local crates in the tree."

echo
echo "== hermetic check: offline release build =="
cargo build --release --workspace --all-targets

if [[ "$QUICK" -eq 0 ]]; then
    echo
    echo "== hermetic check: offline test run =="
    cargo test -q --workspace
fi

echo
echo "hermetic check passed."
