#!/usr/bin/env bash
# Verifies the sharded-CSR layer end to end (DESIGN.md §11):
#   1. clippy is clean (-D warnings) on every crate the sharding work
#      touches (core, trace, bench, the root crate);
#   2. the shard unit tests and the shard-invariance property suite pass
#      (shard counts {1, 2, 7, n} x threads {1, 2, 8} bit-identical to
#      the flat CSR; problem dispatch and restriction preserve bits);
#   3. the interleave-boundary pins hold (f32/f64 switch exact at
#      2^24 +/- 1 nodes) and the generator-scale sampler regressions
#      pass (Zipf / WeightedSampler exact at n = 10^6);
#   4. the CLI --shards taxonomy holds (byte-identical output across
#      shard and thread counts, 0/2/3 exit codes under sharding);
#   5. the shard bench runs in quick mode (which itself hard-asserts
#      bit identity of every sharded cost/batch/delta vs. the flat CSR,
#      including the > 2^24-node f64 interleave regime) and writes JSON;
#   6. the committed BENCH_shard.json is a full (non-quick) 10^6-object
#      / 10^7-edge run with all bits_match true and throughput above
#      conservative floors.
#
# Run from anywhere inside the repo:
#   scripts/check_shard.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== shard check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-trace -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== shard check: shard unit tests =="
cargo test -q -p cca-core --lib shard

echo
echo "== shard check: shard-invariance property suite =="
cargo test -q -p cca-core --test shard_properties

echo
echo "== shard check: interleave-boundary pins (2^24 +/- 1) =="
cargo test -q -p cca-core --test batch_properties interleave_width

echo
echo "== shard check: generator-scale sampler regressions =="
cargo test -q -p cca-trace million
cargo test -q -p cca-trace instance

echo
echo "== shard check: CLI --shards taxonomy =="
cargo test -q -p cca --test cli shard

echo
echo "== shard check: quick bench smoke (hard-asserts bit identity) =="
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench placement_shard
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== shard check: committed BENCH_shard.json =="
test -f BENCH_shard.json || { echo "BENCH_shard.json is missing"; exit 1; }
grep -q '"bench": "placement_shard"' BENCH_shard.json
grep -q '"name": "zipf-1m"' BENCH_shard.json
grep -q '"objects": 1000000' BENCH_shard.json
grep -q '"edges": 10000000' BENCH_shard.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_shard.json || {
  echo "BENCH_shard.json was written by a quick run; re-run: cargo bench -p cca-bench --bench placement_shard"
  exit 1
}
# Every sharded row and the wide-interleave probe must have matched the
# flat CSR to the bit when the baseline was recorded.
if grep -q '"bits_match": false' BENCH_shard.json; then
  echo "ERROR: committed BENCH_shard.json records a bit-identity break" >&2
  exit 1
fi
grep -q '"wide_interleave": {"num_nodes": 16777217, "bits_match": true}' \
  BENCH_shard.json
echo "OK: full-scale baseline present, bits_match all-true."

echo
echo "== shard check: throughput floors on the committed baseline =="
# Conservative floors (~25-35% of the recording host's measurements) so
# the gate trips on a real regression, not on host-to-host noise. At
# 10^7 edges: every sharded build must clear 1 Medge/s and every sharded
# eval 50 Medges/s; the flat baseline build (a full sort-based CSR
# construction, inherently slower) must clear 0.2 Medges/s.
awk '
  /"shards":/ {
    if (match($0, /"build_medges_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 22, RLENGTH - 22) + 0
      if (v < 1.0) { bad = 1 }
    }
    if (match($0, /"eval_medges_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 21, RLENGTH - 21) + 0
      if (v < 50.0) { bad = 1 }
    }
  }
  /"flat":/ {
    if (match($0, /"build_medges_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 22, RLENGTH - 22) + 0
      if (v < 0.2) { bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
' BENCH_shard.json || {
  echo "ERROR: committed BENCH_shard.json is below the throughput floors" >&2
  echo "       (sharded build >= 1 Medge/s, sharded eval >= 50 Medges/s," >&2
  echo "        flat build >= 0.2 Medges/s)" >&2
  exit 1
}
echo "OK: committed throughput clears the floors on every row."

echo
echo "== shard check: shard-parallel speedup gate =="
CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "$CORES" -ge 8 ]]; then
    # On a real multicore host, 2 build threads must beat 1 for the
    # 7-shard rows of the committed baseline.
    SPEEDUP_OK="$(awk '
        /"shards": 7, "threads": 1,/ {
            if (match($0, /"build_ms": [0-9.]+/))
                t1 = substr($0, RSTART + 12, RLENGTH - 12) + 0
        }
        /"shards": 7, "threads": 2,/ {
            if (match($0, /"build_ms": [0-9.]+/))
                t2 = substr($0, RSTART + 12, RLENGTH - 12) + 0
        }
        END { print (t1 > 0 && t2 > 0 && t2 < t1) ? "yes" : "no" }
    ' BENCH_shard.json)"
    if [[ "$SPEEDUP_OK" != "yes" ]]; then
        echo "ERROR: host has $CORES cores but the 7-shard build is not" >&2
        echo "       faster with 2 threads — shard parallelism regressed" >&2
        exit 1
    fi
    echo "OK: 7-shard build speeds up with threads on this $CORES-core host."
else
    echo "SKIP: host has $CORES core(s); shard speedup is physics-bounded."
    echo "      Bit identity (checked above) is the binding contract here."
fi

echo
echo "shard check: OK"
