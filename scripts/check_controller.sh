#!/usr/bin/env bash
# Verifies the online re-optimization controller end to end
# (DESIGN.md §12):
#   1. clippy is clean (-D warnings) on every crate the controller work
#      touches (core, lp, trace, bench, the root crate);
#   2. the controller unit tests, the persisted-report round-trip tests,
#      the drift golden pins, and the online integration suite pass
#      (counter partition, accumulated-loss monotonicity, byte identity
#      across threads {1, 2, 8} x shards {1, 2, 7});
#   3. the CLI `run` taxonomy holds (0 clean / 2 degraded, report shape,
#      byte-identical output across thread and shard counts, degenerate
#      flags rejected at parse time);
#   4. a release-mode chaos soak survives injected node losses: exit
#      code 0 or 2, never a panic, with a byte-identity spot check
#      against a differently-threaded rerun;
#   5. the quick-mode soak bench runs (hard-asserting the counter
#      invariant, repair convergence, and flat-vs-sharded determinism)
#      and writes JSON;
#   6. the committed BENCH_controller.json is a full (non-quick)
#      10^4-epoch run with the invariant intact, both repairs
#      converged, determinism recorded, and throughput above a
#      conservative floor.
#
# Run from anywhere inside the repo:
#   scripts/check_controller.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== controller check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-lp -p cca-trace -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== controller check: controller unit tests =="
cargo test -q -p cca-core --lib controller

echo
echo "== controller check: report persistence round-trip =="
cargo test -q -p cca-core --lib persist

echo
echo "== controller check: drift golden pins =="
cargo test -q -p cca-trace --test drift_golden

echo
echo "== controller check: online integration suite =="
cargo test -q -p cca --test controller

echo
echo "== controller check: CLI run taxonomy =="
cargo test -q -p cca --test cli online_run
cargo test -q -p cca --test cli count_options_reject_zero_uniformly

echo
echo "== controller check: release chaos soak (exit 0/2, never a panic) =="
cargo build -q --release --bin cca
soak_a="$(mktemp)"
soak_b="$(mktemp)"
trap 'rm -f "$soak_a" "$soak_b"' EXIT
set +e
./target/release/cca run --preset small --epochs 2000 --seed 42 \
  --drop-nodes 2 --threads 2 > "$soak_a"
code_a=$?
./target/release/cca run --preset small --epochs 2000 --seed 42 \
  --drop-nodes 2 --threads 8 --shards 7 > "$soak_b"
code_b=$?
set -e
for code in "$code_a" "$code_b"; do
  if [ "$code" -ne 0 ] && [ "$code" -ne 2 ]; then
    echo "ERROR: chaos soak exited $code (want 0 or 2)" >&2
    exit 1
  fi
done
if [ "$code_a" -ne "$code_b" ]; then
  echo "ERROR: exit code changed with thread/shard count ($code_a vs $code_b)" >&2
  exit 1
fi
if ! cmp -s "$soak_a" "$soak_b"; then
  echo "ERROR: chaos soak report differs across thread/shard counts" >&2
  exit 1
fi
grep -q '^node_losses	2$' "$soak_a" || {
  echo "ERROR: chaos soak did not record both node losses" >&2; exit 1; }
grep -q '^unrecovered_losses	0$' "$soak_a" || {
  echo "ERROR: chaos soak left a node loss unrepaired" >&2; exit 1; }
grep -q '^final_feasible	true$' "$soak_a" || {
  echo "ERROR: chaos soak ended infeasible" >&2; exit 1; }
echo "OK: soak exited $code_a, byte-identical across configs, repairs converged."

echo
echo "== controller check: quick bench smoke (hard-asserts invariants) =="
smoke_out="$(mktemp)"
trap 'rm -f "$soak_a" "$soak_b" "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench controller_soak
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== controller check: committed BENCH_controller.json =="
test -f BENCH_controller.json || { echo "BENCH_controller.json is missing"; exit 1; }
grep -q '"bench": "controller_soak"' BENCH_controller.json
grep -q '"epochs": 10000' BENCH_controller.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_controller.json || {
  echo "BENCH_controller.json was written by a quick run; re-run: cargo bench -p cca-bench --bench controller_soak"
  exit 1
}
grep -q '"invariant_ok": true' BENCH_controller.json || {
  echo "ERROR: committed baseline violates the gate-counter partition" >&2
  exit 1
}
grep -q '"repair_converged": true' BENCH_controller.json || {
  echo "ERROR: committed baseline records an unrepaired node loss" >&2
  exit 1
}
grep -q '"reports_identical": true' BENCH_controller.json || {
  echo "ERROR: committed baseline records a determinism break" >&2
  exit 1
}
grep -q '"final_feasible": true' BENCH_controller.json || {
  echo "ERROR: committed baseline ended infeasible" >&2
  exit 1
}
echo "OK: full 10^4-epoch baseline present, invariants all-true."

echo
echo "== controller check: throughput floor on the committed baseline =="
# Conservative floor (~7% of the recording host's 7.5k epochs/s) so the
# gate trips on a real regression — an accidentally quadratic ingest or
# a solve on every epoch — not on host-to-host noise.
awk '
  /"epochs_per_s":/ {
    if (match($0, /"epochs_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 16, RLENGTH - 16) + 0
      if (v < 500.0) { bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
' BENCH_controller.json || {
  echo "ERROR: committed BENCH_controller.json is below the throughput" >&2
  echo "       floor (controller soak >= 500 epochs/s)" >&2
  exit 1
}
echo "OK: committed throughput clears the floor."

echo
echo "controller check: OK"
