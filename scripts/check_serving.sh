#!/usr/bin/env bash
# Verifies the async serving front end to end (DESIGN.md §13):
#   1. clippy is clean (-D warnings) on every crate the serving work
#      touches (core, search, par, bench, the root crate);
#   2. the histogram/report unit tests, the persisted-report round-trip
#      tests, the engine probe/home-node pins, the waker primitive, and
#      the executor's own module tests pass;
#   3. the serving property battery passes (batched admission
#      byte-identical to serial per-query execution across
#      inflight {1, 7, 64} x threads {1, 2, 8} x shards {1, 2, 7},
#      overload accounting, golden report pin);
#   4. the CLI `serve` taxonomy holds (0 clean / 2 shed / 3 infeasible,
#      report shape, byte-identical output across thread/shard/inflight
#      counts, degenerate flags rejected at parse time);
#   5. a release-mode load run under a tight budget sheds the heavy
#      tail deterministically: exit 2, never a hang or panic, with a
#      byte-identity spot check against a differently-threaded rerun;
#   6. the quick-mode load bench runs (hard-asserting the counter
#      partition and flat-vs-sharded determinism) and writes JSON;
#   7. the committed BENCH_serving.json is a full (non-quick) 10^4-query
#      run with the invariant intact, determinism recorded, a mixed
#      taxonomy, and throughput above a conservative floor.
#
# Run from anywhere inside the repo:
#   scripts/check_serving.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== serving check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-search -p cca-par -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== serving check: histogram + report unit tests =="
cargo test -q -p cca-core --lib serving

echo
echo "== serving check: report persistence round-trip =="
cargo test -q -p cca-core --lib persist

echo
echo "== serving check: engine probe/home-node pins =="
cargo test -q -p cca-search --lib probe_each
cargo test -q -p cca-search --lib home_node

echo
echo "== serving check: waker primitive =="
cargo test -q -p cca-par --lib wake_flag

echo
echo "== serving check: executor module tests =="
cargo test -q -p cca --lib serve

echo
echo "== serving check: serving property battery =="
cargo test -q -p cca --test serving_properties

echo
echo "== serving check: CLI serve taxonomy =="
cargo test -q -p cca --test cli serve_
cargo test -q -p cca --test cli count_options_reject_zero_uniformly

echo
echo "== serving check: release load run (exit 2, byte-identical, no hang) =="
cargo build -q --release --bin cca
load_a="$(mktemp)"
load_b="$(mktemp)"
trap 'rm -f "$load_a" "$load_b"' EXIT
set +e
./target/release/cca serve --preset small --seed 42 --queries 10000 \
  --deadline-ms 1 --threads 2 > "$load_a"
code_a=$?
./target/release/cca serve --preset small --seed 42 --queries 10000 \
  --deadline-ms 1 --threads 8 --shards 7 --inflight 1 > "$load_b"
code_b=$?
set -e
for code in "$code_a" "$code_b"; do
  if [ "$code" -ne 0 ] && [ "$code" -ne 2 ]; then
    echo "ERROR: load run exited $code (want 0 or 2)" >&2
    exit 1
  fi
done
if [ "$code_a" -ne "$code_b" ]; then
  echo "ERROR: exit code changed with thread/shard/inflight ($code_a vs $code_b)" >&2
  exit 1
fi
if ! cmp -s "$load_a" "$load_b"; then
  echo "ERROR: serving report differs across thread/shard/inflight counts" >&2
  exit 1
fi
grep -q '^shed_deadline	0$' "$load_a" || {
  echo "ERROR: the wall-clock backstop tripped on a healthy run" >&2; exit 1; }
awk -F'\t' '
  $1 == "queries" { queries = $2 }
  $1 == "served" || $1 == "degraded" || /^shed_/ { answered += $2 }
  END { exit (queries > 0 && answered == queries) ? 0 : 1 }
' "$load_a" || {
  echo "ERROR: load run counters do not partition the stream" >&2; exit 1; }
echo "OK: load run exited $code_a, byte-identical across configs, counters partition."

echo
echo "== serving check: quick bench smoke (hard-asserts invariants) =="
smoke_out="$(mktemp)"
trap 'rm -f "$load_a" "$load_b" "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench serving_load
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== serving check: committed BENCH_serving.json =="
test -f BENCH_serving.json || { echo "BENCH_serving.json is missing"; exit 1; }
grep -q '"bench": "serving_load"' BENCH_serving.json
grep -q '"queries": 10000' BENCH_serving.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_serving.json || {
  echo "BENCH_serving.json was written by a quick run; re-run: cargo bench -p cca-bench --bench serving_load"
  exit 1
}
grep -q '"invariant_ok": true' BENCH_serving.json || {
  echo "ERROR: committed baseline violates the admission-counter partition" >&2
  exit 1
}
grep -q '"reports_identical": true' BENCH_serving.json || {
  echo "ERROR: committed baseline records a determinism break" >&2
  exit 1
}
grep -q '"shed_deadline": 0' BENCH_serving.json || {
  echo "ERROR: committed baseline records a tripped wall-clock backstop" >&2
  exit 1
}
echo "OK: full 10^4-query baseline present, invariants all-true."

echo
echo "== serving check: throughput floor on the committed baseline =="
# Conservative floor (~6% of the recording host's 82k queries/s) so the
# gate trips on a real regression — an accidentally quadratic admission
# loop or a per-query re-probe — not on host-to-host noise.
awk '
  /"queries_per_s":/ {
    if (match($0, /"queries_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 17, RLENGTH - 17) + 0
      if (v < 5000.0) { bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
' BENCH_serving.json || {
  echo "ERROR: committed BENCH_serving.json is below the throughput" >&2
  echo "       floor (serving load >= 5000 queries/s)" >&2
  exit 1
}
echo "OK: committed throughput clears the floor."

echo
echo "serving check: OK"
