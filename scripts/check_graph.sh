#!/usr/bin/env bash
# Verifies the canonical CSR correlation-graph layer end to end:
#   1. clippy is clean (-D warnings) on every crate the graph refactor
#      touches (core, search, bench, the root crate);
#   2. the graph unit tests and the exact-equality delta property suite
#      pass (move_delta == full-recompute difference, multi-move and
#      resync tracking, structural CSR invariants);
#   3. the golden battery still passes — placements and cost bits must be
#      unchanged by the graph refactor;
#   4. the graph bench runs in quick mode (which itself asserts the >= 5x
#      move-delta contract on the 10k Zipf instance and bit-identical
#      cost folds) and writes a JSON baseline;
#   5. the committed BENCH_graph.json exists and clears the contract.
#
# Run from anywhere inside the repo:
#   scripts/check_graph.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== graph check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-search -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== graph check: graph unit tests =="
cargo test -q -p cca-core --lib graph

echo
echo "== graph check: exact-equality delta property suite =="
cargo test -q -p cca-core --test graph_properties

echo
echo "== graph check: golden battery (placements/cost bits unchanged) =="
cargo test -q -p cca-core --test golden

echo
echo "== graph check: quick bench smoke (asserts the >= 5x delta contract) =="
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench placement_graph
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== graph check: committed BENCH_graph.json =="
test -f BENCH_graph.json || { echo "BENCH_graph.json is missing"; exit 1; }
grep -q '"bench": "placement_graph"' BENCH_graph.json
grep -q '"name": "zipf-10k"' BENCH_graph.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_graph.json || {
  echo "BENCH_graph.json was written by a quick run; re-run: cargo bench -p cca-bench --bench placement_graph"
  exit 1
}

echo
echo "graph check: OK"
