#!/usr/bin/env bash
# Verifies the resilience layer end to end:
#   1. the workspace builds in release mode with the `chaos` fault-
#      injection feature enabled;
#   2. the core resilience unit tests and property suite pass;
#   3. the tier-2 chaos suite passes — every seeded fault plan must yield
#      a complete, audited placement, deterministically per seed;
#   4. the `cca place` exit-code taxonomy works (0 ok, 2 degraded).
#
# Run from anywhere inside the repo:
#   scripts/check_resilience.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== resilience check: release build with chaos feature =="
cargo build --release --features chaos

echo
echo "== resilience check: core resilience tests =="
cargo test -q -p cca-core --features chaos --lib resilience
cargo test -q -p cca-core --test property resilient

echo
echo "== resilience check: tier-2 chaos suite =="
cargo test -q --features chaos --test chaos

echo
echo "== resilience check: CLI exit-code taxonomy =="
CCA=target/release/cca
set +e
"$CCA" place --preset tiny --nodes 3 --deadline-ms 60000 >/dev/null 2>&1
OK_CODE=$?
"$CCA" place --preset tiny --nodes 3 --deadline-ms 0 >/dev/null 2>&1
DEGRADED_CODE=$?
set -e
if [[ "$OK_CODE" -ne 0 ]]; then
    echo "ERROR: generous deadline should exit 0, got $OK_CODE" >&2
    exit 1
fi
if [[ "$DEGRADED_CODE" -ne 2 ]]; then
    echo "ERROR: zero deadline should exit 2 (degraded), got $DEGRADED_CODE" >&2
    exit 1
fi
echo "OK: exit codes 0 (ok) and 2 (degraded) observed."

echo
echo "resilience check passed."
