#!/usr/bin/env bash
# Verifies the live re-optimizing runtime end to end (DESIGN.md §14):
#   1. clippy is clean (-D warnings) on every crate the live work
#      touches (core, search, par, bench, the root crate);
#   2. the runtime module tests pass (budget pacing, regime-shift
#      replay, interference charging, threads/shards/inflight
#      byte-identity) along with the executor's overhead-charging
#      tests;
#   3. the report persistence round-trip holds for every report kind
#      (unit tests plus the shrinking property battery);
#   4. the live property battery passes (per-epoch migrated bytes never
#      exceed the budget, the served/degraded/shed counters exactly
#      partition the offered stream, text round trip);
#   5. the CLI `live` taxonomy holds (0 clean / 2 shed / 3 infeasible,
#      byte-identical output across thread/shard/inflight counts,
#      degenerate flags rejected at parse time);
#   6. a release-mode replay of the pinned regime-shift scenario
#      migrates under budget and strictly improves shipped
#      bytes/query, byte-identical across differently-threaded reruns;
#   7. the quick-mode replay bench runs (hard-asserting improvement,
#      pacing, and determinism) and writes JSON;
#   8. the committed BENCH_live.json is a full (non-quick) run with
#      every invariant intact and throughput above a conservative
#      floor.
#
# Run from anywhere inside the repo:
#   scripts/check_live.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== live check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-search -p cca-par -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== live check: runtime module tests =="
cargo test -q -p cca --lib runtime

echo
echo "== live check: executor overhead charging =="
cargo test -q -p cca --lib serve

echo
echo "== live check: report persistence round-trip (all kinds) =="
cargo test -q -p cca-core --lib persist
cargo test -q -p cca-core --test persist_properties

echo
echo "== live check: live property battery =="
cargo test -q -p cca --test live_properties

echo
echo "== live check: CLI live taxonomy =="
cargo test -q -p cca --test cli live_

echo
echo "== live check: release replay (migrates, under budget, improves) =="
cargo build -q --release --bin cca
replay_a="$(mktemp)"
replay_b="$(mktemp)"
replay_c="$(mktemp)"
trap 'rm -f "$replay_a" "$replay_b" "$replay_c"' EXIT
scenario=(--preset small --nodes 6 --seed 2 --epochs 100
  --queries-per-epoch 256 --drift-sigma 0.25 --drift-epochs 0
  --warm-drift 24 --migration-budget 16384)
./target/release/cca live "${scenario[@]}" --threads 1 --inflight 1 > "$replay_a"
./target/release/cca live "${scenario[@]}" --threads 8 --shards 7 --inflight 64 > "$replay_b"
./target/release/cca live "${scenario[@]}" --threads 2 --shards 2 --inflight 1 > "$replay_c"
for other in "$replay_b" "$replay_c"; do
  if ! cmp -s "$replay_a" "$other"; then
    echo "ERROR: live report differs across thread/shard/inflight counts" >&2
    exit 1
  fi
done
awk -F'\t' '
  $1 == "queries" { queries = $2 }
  $1 == "served" || $1 == "degraded" || /^shed_/ { answered += $2 }
  $1 == "migrations" { migrations = $2 }
  $1 == "migrated_bytes" { migrated = $2 }
  $1 == "max_epoch_migrated_bytes" { max_epoch = $2 }
  $1 == "migration_budget" { budget = $2 }
  $1 == "pre_queries" { preq = $2 }
  $1 == "pre_executed_bytes" { preb = $2 }
  $1 == "post_queries" { postq = $2 }
  $1 == "post_executed_bytes" { postb = $2 }
  END {
    if (queries == 0 || answered != queries) {
      print "ERROR: counters do not partition the offered stream" > "/dev/stderr"; exit 1
    }
    if (migrations < 1 || migrated == 0) {
      print "ERROR: the regime shift never triggered a migration" > "/dev/stderr"; exit 1
    }
    if (max_epoch > budget) {
      printf "ERROR: an epoch shipped %d bytes over the %d budget\n", max_epoch, budget > "/dev/stderr"
      exit 1
    }
    if (preq == 0 || postq == 0) {
      print "ERROR: a replay window executed no queries" > "/dev/stderr"; exit 1
    }
    if (postb / postq >= preb / preq) {
      printf "ERROR: bytes/query did not improve (%.1f pre -> %.1f post)\n", \
        preb / preq, postb / postq > "/dev/stderr"
      exit 1
    }
    printf "OK: replay improved %.1f -> %.1f bytes/query, %d bytes paced under the %d budget.\n", \
      preb / preq, postb / postq, migrated, budget
  }
' "$replay_a"

echo
echo "== live check: quick bench smoke (hard-asserts invariants) =="
smoke_out="$(mktemp)"
trap 'rm -f "$replay_a" "$replay_b" "$replay_c" "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench live_replay
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== live check: committed BENCH_live.json =="
test -f BENCH_live.json || { echo "BENCH_live.json is missing"; exit 1; }
grep -q '"bench": "live_replay"' BENCH_live.json
grep -q '"epochs": 100' BENCH_live.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_live.json || {
  echo "BENCH_live.json was written by a quick run; re-run: cargo bench -p cca-bench --bench live_replay"
  exit 1
}
for invariant in counters_consistent within_budget improved; do
  grep -q "\"$invariant\": true" BENCH_live.json || {
    echo "ERROR: committed baseline violates $invariant" >&2
    exit 1
  }
done
grep -q '"reports_identical": true' BENCH_live.json || {
  echo "ERROR: committed baseline records a determinism break" >&2
  exit 1
}
echo "OK: full replay baseline present, invariants all-true."

echo
echo "== live check: throughput floor on the committed baseline =="
# Conservative floor (~5% of the recording host's 94k queries/s) so the
# gate trips on a real regression — re-solving every epoch, a
# quadratic migration slicer — not on host-to-host noise.
awk '
  /"queries_per_s":/ {
    if (match($0, /"queries_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 17, RLENGTH - 17) + 0
      if (v < 5000.0) { bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
' BENCH_live.json || {
  echo "ERROR: committed BENCH_live.json is below the throughput" >&2
  echo "       floor (live replay >= 5000 queries/s)" >&2
  exit 1
}
echo "OK: committed throughput clears the floor."

echo
echo "live check: OK"
