#!/usr/bin/env bash
# Verifies the parallel solve layer (cca-par) end to end:
#   1. the workspace builds in release mode with the `chaos` feature;
#   2. tier-1 (full test suite) passes;
#   3. the thread-count-invariance battery passes: property suite, theorem
#      suite, and the tier-2 chaos grid at threads {1, 2, 8};
#   4. the `cca place` report is byte-identical for --threads 1/2/8;
#   5. the parallel bench runs in quick mode and writes a JSON baseline,
#      and the committed BENCH_parallel.json exists with the determinism
#      column all-true;
#   6. on hosts with >= 8 cores, 8 threads must actually be faster than
#      serial (skipped on smaller hosts, where the speedup is physics-
#      bounded at ~1.0 — the determinism contract is the hard gate).
#
# Run from anywhere inside the repo:
#   scripts/check_parallel.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== parallel check: release build with chaos feature =="
cargo build --release --features chaos

echo
echo "== parallel check: tier-1 test suite =="
cargo test -q

echo
echo "== parallel check: thread-count invariance battery =="
cargo test -q -p cca-par
cargo test -q -p cca-rand stream
cargo test -q -p cca-core --lib thread
cargo test -q -p cca-core --test property thread_count
cargo test -q -p cca-core --test property exact_parallel
cargo test -q --test theorems parallel
cargo test -q --features chaos --test chaos thread

echo
echo "== parallel check: CLI determinism across --threads =="
CCA=target/release/cca
TMPDIR_PAR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_PAR"' EXIT
for T in 1 2 8; do
    "$CCA" place --preset tiny --nodes 3 --scope 40 --strategy lprr --seed 11 \
        --threads "$T" >"$TMPDIR_PAR/report_$T.out" 2>/dev/null
done
for T in 2 8; do
    if ! cmp -s "$TMPDIR_PAR/report_1.out" "$TMPDIR_PAR/report_$T.out"; then
        echo "ERROR: cca place --threads $T diverged from --threads 1" >&2
        diff "$TMPDIR_PAR/report_1.out" "$TMPDIR_PAR/report_$T.out" >&2 || true
        exit 1
    fi
done
echo "OK: cca place report identical for --threads 1/2/8."

echo
echo "== parallel check: bench smoke (quick mode) =="
SMOKE_JSON="$TMPDIR_PAR/BENCH_parallel_smoke.json"
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$SMOKE_JSON" \
    cargo bench -q -p cca-bench --bench placement_parallel
if [[ ! -s "$SMOKE_JSON" ]]; then
    echo "ERROR: bench smoke did not write $SMOKE_JSON" >&2
    exit 1
fi
if grep -q '"identical_to_serial": false' "$SMOKE_JSON"; then
    echo "ERROR: bench smoke reports a serial/parallel divergence" >&2
    exit 1
fi
echo "OK: quick bench wrote a baseline with identical_to_serial all-true."

echo
echo "== parallel check: committed baseline =="
if [[ ! -s BENCH_parallel.json ]]; then
    echo "ERROR: BENCH_parallel.json is missing — regenerate it with" >&2
    echo "       cargo bench -p cca-bench --bench placement_parallel" >&2
    exit 1
fi
if grep -q '"identical_to_serial": false' BENCH_parallel.json; then
    echo "ERROR: committed BENCH_parallel.json records a determinism break" >&2
    exit 1
fi
echo "OK: BENCH_parallel.json present, identical_to_serial all-true."

echo
echo "== parallel check: speedup gate =="
CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "$CORES" -ge 8 ]]; then
    # On a real multicore host, 8 rounding workers must beat serial. The
    # bench emits one series object per line, so awk can gate on the
    # 8-thread rows directly.
    SPEEDUP_OK="$(awk '
        /"threads": 8,/ {
            if (match($0, /"speedup_vs_serial": [0-9.]+/)) {
                v = substr($0, RSTART + 22, RLENGTH - 22) + 0
                if (v <= 1.0) bad = 1
            }
        }
        END { print bad ? "no" : "yes" }
    ' "$SMOKE_JSON")"
    if [[ "$SPEEDUP_OK" != "yes" ]]; then
        echo "ERROR: host has $CORES cores but 8 rounding threads are not" >&2
        echo "       faster than serial — parallelism regressed" >&2
        exit 1
    fi
    echo "OK: 8-thread rounding beats serial on this $CORES-core host."
else
    echo "SKIP: host has $CORES core(s); speedup is physics-bounded at ~1.0."
    echo "      Determinism (checked above) is the binding contract here."
fi

echo
echo "parallel check passed."
