#!/usr/bin/env bash
# Runs every check_*.sh suite in this directory, in a stable order, and
# reports a one-line verdict per suite at the end. Fails if any suite
# fails (but always runs them all, so one broken suite doesn't hide
# another).
#
# Run from anywhere inside the repo:
#   scripts/check_all.sh
set -uo pipefail

cd "$(dirname "$0")"

suites=()
for s in check_*.sh; do
  [ "$s" = "check_all.sh" ] && continue
  suites+=("$s")
done

declare -A verdict
failed=0
for s in "${suites[@]}"; do
  echo
  echo "==================== $s ===================="
  if bash "$s"; then
    verdict[$s]="OK"
  else
    verdict[$s]="FAILED"
    failed=1
  fi
done

echo
echo "==================== summary ===================="
for s in "${suites[@]}"; do
  printf '%-28s %s\n' "$s" "${verdict[$s]}"
done
exit "$failed"
