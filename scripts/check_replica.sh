#!/usr/bin/env bash
# Verifies the replica-aware placement layer end to end (DESIGN.md §15):
#   1. clippy is clean (-D warnings) on every crate the replication work
#      touches (core, search, bench, the root crate);
#   2. the replica/domain-tree unit tests pass (spread rule, repair,
#      domain-loss chaos, v2 persistence, replica kernels);
#   3. the replica property battery passes (r=1 bit-identity across
#      threads {1, 2, 8} x shards {1, 2, 7}, spread invariant through
#      spread/migrate/repair, deterministic domain-kill grid, reads
#      survive a domain kill end to end);
#   4. the CLI replica taxonomy holds (--replicas 0 and replicas >
#      domains rejected at parse time, r=1 --domains flat byte-identical
#      to the default, v2 placement files, replicated serve);
#   5. a release-mode r=1 identity matrix run: `place --replicas 1
#      --domains flat` is byte-identical to the flag-free run;
#   6. a release-mode replicated run survives a whole-domain kill with
#      the spread invariant intact (spread valid: true on stdout);
#   7. the quick-mode read bench runs (hard-asserting spread validity,
#      counter partition, monotone transfer bytes, and r=1 equivalence)
#      and writes JSON;
#   8. the committed BENCH_replica.json is a full (non-quick) 10^4-query
#      run with every invariant true and throughput above a conservative
#      floor at every replication factor.
#
# Run from anywhere inside the repo:
#   scripts/check_replica.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== replica check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-search -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== replica check: replica + domain-tree unit tests =="
cargo test -q -p cca-core --lib replica
cargo test -q -p cca-core --lib domain

echo
echo "== replica check: replica property battery =="
cargo test -q -p cca --test replica_properties

echo
echo "== replica check: CLI replica taxonomy =="
cargo test -q -p cca --test cli replica
cargo test -q -p cca --test cli domains_flag_rejects_bad_specs

echo
echo "== replica check: release r=1 identity matrix =="
cargo build -q --release --bin cca
plain="$(mktemp)"
flagged="$(mktemp)"
trap 'rm -f "$plain" "$flagged"' EXIT
./target/release/cca place --preset tiny --nodes 4 --scope 40 \
  --strategy greedy --seed 7 > "$plain"
./target/release/cca place --preset tiny --nodes 4 --scope 40 \
  --strategy greedy --seed 7 --replicas 1 --domains flat > "$flagged"
if ! cmp -s "$plain" "$flagged"; then
  echo "ERROR: --replicas 1 --domains flat changed the place output" >&2
  diff "$plain" "$flagged" >&2 || true
  exit 1
fi
echo "OK: r=1 flat tree is byte-identical to the default."

echo
echo "== replica check: release replicated place keeps the spread =="
./target/release/cca place --preset tiny --nodes 6 --scope 40 \
  --strategy greedy --seed 7 --replicas 2 --domains 3 > "$flagged"
grep -q 'replicated x2' "$flagged" || {
  echo "ERROR: replicated place did not report the replication factor" >&2
  exit 1
}
grep -q 'spread valid: true' "$flagged" || {
  echo "ERROR: replicated place violated the spread invariant" >&2
  exit 1
}
echo "OK: replicated place reports a valid spread."

echo
echo "== replica check: quick bench smoke (hard-asserts invariants) =="
smoke_out="$(mktemp)"
trap 'rm -f "$plain" "$flagged" "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench replica_read
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== replica check: committed BENCH_replica.json =="
test -f BENCH_replica.json || { echo "BENCH_replica.json is missing"; exit 1; }
grep -q '"bench": "replica_read"' BENCH_replica.json
grep -q '"queries": 10000' BENCH_replica.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_replica.json || {
  echo "BENCH_replica.json was written by a quick run; re-run: cargo bench -p cca-bench --bench replica_read"
  exit 1
}
if grep -q '"spread_valid": false' BENCH_replica.json; then
  echo "ERROR: committed baseline records a spread-invariant break" >&2
  exit 1
fi
if grep -q '"counters_ok": false' BENCH_replica.json; then
  echo "ERROR: committed baseline violates the admission-counter partition" >&2
  exit 1
fi
grep -q '"r1_report_identical_to_single_copy": true' BENCH_replica.json || {
  echo "ERROR: committed baseline records an r=1 equivalence break" >&2
  exit 1
}
echo "OK: full 10^4-query baseline present, invariants all-true."

echo
echo "== replica check: throughput floor on the committed baseline =="
# Conservative floor (~6% of the recording host's ~90k queries/s) so the
# gate trips on a real regression — a per-query replica rescan or an
# accidental copy of the extras table — not on host-to-host noise.
awk '
  /"queries_per_s":/ {
    if (match($0, /"queries_per_s": [0-9.]+/)) {
      v = substr($0, RSTART + 17, RLENGTH - 17) + 0
      if (v < 5000.0) { bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
' BENCH_replica.json || {
  echo "ERROR: committed BENCH_replica.json is below the throughput" >&2
  echo "       floor (replicated read >= 5000 queries/s at every r)" >&2
  exit 1
}
echo "OK: committed throughput clears the floor at every replication factor."

echo
echo "replica check: OK"
