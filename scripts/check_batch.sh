#!/usr/bin/env bash
# Verifies the batched placement-evaluation kernel end to end:
#   1. clippy is clean (-D warnings) on every crate the batch refactor
#      touches (core, bench, the root crate with the probe subcommand);
#   2. the graph unit tests and the exact-equality batch property suite
#      pass (batch columns bit-equal serial folds, thread/chunk
#      invariance, batched best-of vs a sequential reference, the wide
#      f64 interleave fallback);
#   3. the CLI taxonomy tests for `cca probe --candidates` pass
#      (validation, exit codes, thread-invariant reports);
#   4. the batch bench runs in quick mode (which itself asserts the
#      >= 2x batched-vs-independent contract at k = 16 on the 10k Zipf
#      instance and bit-identical columns) and writes a JSON baseline;
#   5. the committed BENCH_batch.json exists and clears the contract.
#
# Run from anywhere inside the repo:
#   scripts/check_batch.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== batch check: clippy -D warnings on touched crates =="
cargo clippy -q -p cca-core -p cca-bench -p cca \
  --all-targets -- -D warnings

echo
echo "== batch check: graph unit tests =="
cargo test -q -p cca-core --lib graph

echo
echo "== batch check: exact-equality batch property suite =="
cargo test -q -p cca-core --test batch_properties

echo
echo "== batch check: probe CLI taxonomy =="
cargo test -q -p cca --test cli probe

echo
echo "== batch check: quick bench smoke (asserts the >= 2x batch contract) =="
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
CCA_BENCH_QUICK=1 CCA_BENCH_OUT="$smoke_out" \
  cargo bench -q -p cca-bench --bench placement_batch
test -s "$smoke_out" || { echo "bench smoke wrote no JSON"; exit 1; }

echo
echo "== batch check: committed BENCH_batch.json =="
test -f BENCH_batch.json || { echo "BENCH_batch.json is missing"; exit 1; }
grep -q '"bench": "placement_batch"' BENCH_batch.json
grep -q '"name": "zipf-10k"' BENCH_batch.json
grep -q '"batch_speedup_floor": 2' BENCH_batch.json
# The committed baseline must be a full (non-quick) run.
grep -q '"quick": false' BENCH_batch.json || {
  echo "BENCH_batch.json was written by a quick run; re-run: cargo bench -p cca-bench --bench placement_batch"
  exit 1
}

echo
echo "batch check: OK"
