//! Async serving front with batched admission (DESIGN.md §13).
//!
//! A first-party poll-based executor — real [`std::future::Future`] tasks
//! driven by [`cca_par::WakeFlag`] wakers, no external runtime — that
//! admits concurrent query streams in bounded windows, coalesces the
//! admitted work into batched calls ([`QueryEngine::probe_each`] for
//! admission estimates, one home-node-grouped
//! [`cca_par::par_map_indexed`] execution sweep per window), and enforces
//! per-query latency budgets with the established 0/2/3 degrade taxonomy.
//!
//! # Virtual time is the determinism contract
//!
//! A serving report that changed with thread count or admission-window
//! size would be useless as a regression artifact, so latency here is
//! **virtual**: every query is charged a deterministic service time
//!
//! ```text
//! service_ns = SERVICE_BASE_NS
//!            + SERVICE_WORD_NS × keywords
//!            + SERVICE_BYTE_NS × comm_bytes
//! ```
//!
//! — a pure function of the query and the placement, with **no
//! queue-wait component**. Consequently the whole
//! [`ServingReport`] (counters, histogram, quantiles, digest) is
//! byte-identical across `threads` × `shards` × `inflight`; wall-clock
//! throughput is measured by the caller and reported separately
//! (BENCH_serving.json). The wall clock enters execution only through the
//! [`DeadlineGate`] liveness backstop, which never trips in a healthy
//! run (see [`ResponseStatus::ShedDeadline`]).
//!
//! # Admission taxonomy
//!
//! Every offered query is answered and accounted exactly once:
//!
//! * **served** — executed, within its virtual budget.
//! * **degraded** — executed, over budget (the admission estimate is a
//!   lower bound under intersection, so a query can clear the gate and
//!   still run long).
//! * **shed (admission)** — the batched pre-execution estimate already
//!   exceeded the budget; answered from the estimate without touching
//!   posting lists.
//! * **shed (overload)** — the bounded queue was full on arrival
//!   (open-loop [`ServeConfig::burst`] mode only; a closed loop never
//!   overflows).
//! * **shed (deadline)** — the wall-clock backstop tripped mid-batch.
//!
//! `queries == served + degraded + shed_admission + shed_overload +
//! shed_deadline` is asserted, not hoped for.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use cca_core::ServingReport;
use cca_hash::md5;
use cca_par::{par_map_indexed, DeadlineGate, WakeFlag};
use cca_search::{AggregationPolicy, Cluster, InvertedIndex, QueryEngine};
use cca_trace::Query;

/// Fixed virtual cost of any query (parse, plan, respond): 20 µs.
pub const SERVICE_BASE_NS: u64 = 20_000;
/// Virtual cost per queried keyword (posting-list lookup): 5 µs.
pub const SERVICE_WORD_NS: u64 = 5_000;
/// Virtual cost per communicated byte (~1 MB/s wire, deliberately slow
/// so placement quality dominates the latency distribution and a 1 ms
/// budget meaningfully sheds multi-kilobyte shipments).
pub const SERVICE_BYTE_NS: u64 = 1024;

/// Constant grace added to every batch's wall-clock liveness pool.
/// Latency is accounted in virtual time; the wall-clock gate only
/// exists to abandon a hung batch, so it must be far above scheduler
/// noise — a tripped gate leaks real time into the report.
const GATE_GRACE_MS: u64 = 1_000;

/// The virtual service time charged to a query with `words` keywords
/// moving `comm_bytes` bytes. Saturating: overflow clamps at `u64::MAX`
/// (the top histogram bucket) instead of wrapping.
#[must_use]
pub fn service_ns(words: usize, comm_bytes: u64) -> u64 {
    SERVICE_BASE_NS
        .saturating_add(SERVICE_WORD_NS.saturating_mul(words as u64))
        .saturating_add(SERVICE_BYTE_NS.saturating_mul(comm_bytes))
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-window size: at most this many queries are in flight
    /// (admitted but unanswered) at once, and each dispatched batch
    /// contains at most this many queries. Must be at least 1.
    pub inflight: usize,
    /// Worker threads for batch execution (1 runs inline). Never changes
    /// the report.
    pub threads: usize,
    /// Per-query virtual latency budget in milliseconds. `None` disables
    /// budgets (nothing is shed or degraded). Also arms the wall-clock
    /// [`DeadlineGate`] backstop, pooled per batch.
    pub deadline_ms: Option<u64>,
    /// Open-loop mode: offer up to this many arrivals per executor cycle
    /// regardless of completions, shedding arrivals that find the bounded
    /// queue (capacity [`ServeConfig::queue_capacity`]) full. `None` is
    /// the closed loop: arrivals are admitted only as slots free up, so
    /// the queue never overflows.
    pub burst: Option<usize>,
    /// Extra virtual nanoseconds charged to every query on top of
    /// [`service_ns`] — background interference (the live runtime charges
    /// each epoch's migration traffic here, spread per query, so moving
    /// bytes and serving bytes share one virtual-time ledger). Counted in
    /// the admission estimate, the executed latency, and every shed
    /// path's estimated latency alike, so the taxonomy stays consistent;
    /// `0` is byte-identical to the pre-overhead format.
    pub overhead_ns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            inflight: 64,
            threads: 1,
            deadline_ms: None,
            burst: None,
            overhead_ns: 0,
        }
    }
}

impl ServeConfig {
    /// Bounded-queue capacity: twice the admission window, so a modest
    /// burst queues while a sustained overload sheds.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.inflight.saturating_mul(2).max(1)
    }

    /// The per-query virtual budget in nanoseconds, if any.
    #[must_use]
    pub fn budget_ns(&self) -> Option<u64> {
        self.deadline_ms.map(|ms| ms.saturating_mul(1_000_000))
    }
}

/// How one query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Executed within budget.
    Served,
    /// Executed over budget.
    Degraded,
    /// Shed at admission (estimate exceeded the budget).
    ShedAdmission,
    /// Shed on arrival (queue full, open-loop mode).
    ShedOverload,
    /// Shed mid-batch by the wall-clock backstop.
    ShedDeadline,
}

impl ResponseStatus {
    /// Stable wire code, part of the digest format.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ResponseStatus::Served => 0,
            ResponseStatus::Degraded => 1,
            ResponseStatus::ShedAdmission => 2,
            ResponseStatus::ShedOverload => 3,
            ResponseStatus::ShedDeadline => 4,
        }
    }

    /// True when the query was actually executed (pages are real).
    #[must_use]
    pub fn executed(self) -> bool {
        matches!(self, ResponseStatus::Served | ResponseStatus::Degraded)
    }
}

/// The answer to one offered query, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Arrival index of the query in the offered stream.
    pub index: usize,
    /// How the query was answered.
    pub status: ResponseStatus,
    /// Communication bytes: executed bytes when
    /// [`ResponseStatus::executed`], the admission estimate otherwise.
    pub bytes: u64,
    /// Virtual latency in nanoseconds (estimate-based for shed queries).
    pub latency_ns: u64,
    /// Number of result pages (0 for shed queries).
    pub pages: u64,
    /// MD5 over the result page ids in order (digest of the empty string
    /// for shed queries) — byte-identity of the payload, not just its
    /// size.
    pub pages_digest: [u8; 16],
}

impl Response {
    /// The digest record of this response: one line of the stream the
    /// report digest is computed over.
    fn record(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            self.index,
            self.status.code(),
            self.bytes,
            self.latency_ns,
            self.pages,
            md5::Md5::hex(&self.pages_digest)
        )
    }
}

/// Everything a serving run produced: the deterministic report plus the
/// per-query responses and batching telemetry (the latter two are *not*
/// part of the report because batch sizes legitimately vary with
/// `inflight`).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The persisted, determinism-contracted report.
    pub report: ServingReport,
    /// Per-query responses in arrival order (one per offered query).
    pub responses: Vec<Response>,
    /// Number of execution batches dispatched.
    pub batches: u64,
    /// Largest batch dispatched.
    pub max_batch: usize,
}

/// What batch execution hands back to a waiting task.
#[derive(Debug, Clone, Copy)]
enum BatchResult {
    /// Executed: communicated bytes, page count, page-id digest.
    Done {
        comm_bytes: u64,
        pages: u64,
        pages_digest: [u8; 16],
    },
    /// The wall-clock backstop tripped before this query ran.
    Shed,
}

/// Shared state between the executor and its tasks: the submission queue
/// and the result/waker slots, one per offered query.
struct Board {
    /// Query indices awaiting execution, in submission order.
    pending: Vec<usize>,
    /// Deposited batch results, by query index.
    results: Vec<Option<BatchResult>>,
    /// Wakers of tasks waiting on a result, by query index.
    wakers: Vec<Option<Waker>>,
}

/// The leaf future: submits its query to the board once, then parks until
/// the executor deposits the batch result and wakes it.
struct ExecuteInBatch {
    board: Rc<RefCell<Board>>,
    index: usize,
    submitted: bool,
}

impl Future for ExecuteInBatch {
    type Output = BatchResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<BatchResult> {
        let this = self.get_mut();
        let mut board = this.board.borrow_mut();
        if let Some(result) = board.results[this.index].take() {
            return Poll::Ready(result);
        }
        if !this.submitted {
            board.pending.push(this.index);
            this.submitted = true;
        }
        board.wakers[this.index] = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// One in-flight task: the future answering one query, plus its waker.
struct Task {
    index: usize,
    future: Pin<Box<dyn Future<Output = Response>>>,
    flag: Arc<WakeFlag>,
    waker: Waker,
}

impl Task {
    /// A task that executes query `index` through the batch board and
    /// grades the answer against the virtual budget.
    fn new(
        board: Rc<RefCell<Board>>,
        index: usize,
        words: usize,
        est_bytes: u64,
        budget_ns: Option<u64>,
        overhead_ns: u64,
    ) -> Self {
        let flag = WakeFlag::new();
        let waker = Waker::from(Arc::clone(&flag));
        let future = async move {
            let result = ExecuteInBatch {
                board,
                index,
                submitted: false,
            }
            .await;
            match result {
                BatchResult::Done {
                    comm_bytes,
                    pages,
                    pages_digest,
                } => {
                    let latency_ns =
                        service_ns(words, comm_bytes).saturating_add(overhead_ns);
                    let status = match budget_ns {
                        Some(b) if latency_ns > b => ResponseStatus::Degraded,
                        _ => ResponseStatus::Served,
                    };
                    Response {
                        index,
                        status,
                        bytes: comm_bytes,
                        latency_ns,
                        pages,
                        pages_digest,
                    }
                }
                BatchResult::Shed => estimate_response(
                    index,
                    ResponseStatus::ShedDeadline,
                    words,
                    est_bytes,
                    overhead_ns,
                ),
            }
        };
        Task {
            index,
            future: Box::pin(future),
            flag,
            waker,
        }
    }
}

/// A response answered from the admission estimate alone (any shed path).
fn estimate_response(
    index: usize,
    status: ResponseStatus,
    words: usize,
    est_bytes: u64,
    overhead_ns: u64,
) -> Response {
    Response {
        index,
        status,
        bytes: est_bytes,
        latency_ns: service_ns(words, est_bytes).saturating_add(overhead_ns),
        pages: 0,
        pages_digest: md5::digest(b""),
    }
}

/// Serves `queries` against `index` placed on `cluster`.
///
/// The executor runs admission cycles until every offered query is
/// answered: admit a window (batched [`QueryEngine::probe_each`]
/// estimate, budget check, overload check), poll woken tasks in arrival
/// order, then dispatch the accumulated submissions as one
/// home-node-grouped [`par_map_indexed`] batch. See the module docs for
/// the determinism contract.
///
/// # Panics
///
/// Panics if `config.inflight` is 0, or on an internal executor stall
/// (a cycle that makes no progress — a bug, never a load condition).
#[must_use]
pub fn serve(
    index: &InvertedIndex,
    cluster: &Cluster,
    policy: AggregationPolicy,
    queries: &[Query],
    config: &ServeConfig,
) -> ServeOutcome {
    assert!(config.inflight > 0, "inflight window must be at least 1");
    let engine = QueryEngine::new(index, cluster, policy);
    let n = queries.len();
    let budget_ns = config.budget_ns();
    let capacity = config.queue_capacity();

    let board = Rc::new(RefCell::new(Board {
        pending: Vec::new(),
        results: vec![None; n],
        wakers: vec![None; n],
    }));
    let mut responses: Vec<Option<Response>> = vec![None; n];
    let mut live: Vec<Task> = Vec::new();
    let mut next_arrival = 0usize;
    let mut batches = 0u64;
    let mut max_batch = 0usize;

    loop {
        let mut progressed = false;

        // 1. Admission: pick the cycle's arrivals (closed loop fills the
        // window; open loop offers a burst), estimate them with one
        // batched probe, then answer or admit each in arrival order.
        let mut offered: Vec<usize> = Vec::new();
        match config.burst {
            None => {
                while live.len() + offered.len() < config.inflight && next_arrival < n {
                    offered.push(next_arrival);
                    next_arrival += 1;
                }
            }
            Some(burst) => {
                while offered.len() < burst && next_arrival < n {
                    offered.push(next_arrival);
                    next_arrival += 1;
                }
            }
        }
        if !offered.is_empty() {
            progressed = true;
            let window: Vec<Query> = offered.iter().map(|&i| queries[i].clone()).collect();
            let estimates = engine.probe_each(&window);
            let mut admitted = live.len();
            for (&i, &est_bytes) in offered.iter().zip(&estimates) {
                let words = queries[i].words.len();
                if config.burst.is_some() && admitted >= capacity {
                    responses[i] = Some(estimate_response(
                        i,
                        ResponseStatus::ShedOverload,
                        words,
                        est_bytes,
                        config.overhead_ns,
                    ));
                    continue;
                }
                if let Some(budget) = budget_ns {
                    if service_ns(words, est_bytes).saturating_add(config.overhead_ns) > budget {
                        responses[i] = Some(estimate_response(
                            i,
                            ResponseStatus::ShedAdmission,
                            words,
                            est_bytes,
                            config.overhead_ns,
                        ));
                        continue;
                    }
                }
                live.push(Task::new(
                    Rc::clone(&board),
                    i,
                    words,
                    est_bytes,
                    budget_ns,
                    config.overhead_ns,
                ));
                admitted += 1;
            }
        }

        // 2. Poll every woken task, in arrival order (live is kept sorted
        // by construction: admissions append ascending indices and
        // completions only remove).
        let mut completed: Vec<(usize, Response)> = Vec::new();
        for task in &mut live {
            if !task.flag.take() {
                continue;
            }
            progressed = true;
            let mut cx = Context::from_waker(&task.waker);
            if let Poll::Ready(response) = task.future.as_mut().poll(&mut cx) {
                completed.push((task.index, response));
            }
        }
        if !completed.is_empty() {
            let done: Vec<usize> = completed.iter().map(|&(i, _)| i).collect();
            for (i, response) in completed {
                responses[i] = Some(response);
            }
            live.retain(|t| !done.contains(&t.index));
        }

        // 3. Dispatch: drain the submission queue as one batch, grouped
        // by home node so co-located queries run adjacently (stable sort
        // — submission order is preserved within a node).
        let mut batch: Vec<usize> = std::mem::take(&mut board.borrow_mut().pending);
        if !batch.is_empty() {
            progressed = true;
            batch.sort_by_key(|&i| engine.home_node(&queries[i]));
            batches += 1;
            max_batch = max_batch.max(batch.len());
            // Wall-clock liveness backstop, pooled over the batch. The
            // pool is deliberately generous — a constant grace term plus
            // deadline_ms per query — because latency accounting is done
            // entirely in virtual time: this gate exists only to shed
            // the remainder of a genuinely hung batch instead of
            // blocking forever, and must never trip on scheduler noise
            // (a tripped gate would leak wall-clock nondeterminism into
            // the report).
            let gate = DeadlineGate::new(config.deadline_ms.map(|ms| {
                Instant::now()
                    + Duration::from_millis(
                        GATE_GRACE_MS + ms.saturating_mul(batch.len() as u64),
                    )
            }));
            let results: Vec<BatchResult> =
                par_map_indexed(config.threads, batch.len(), |k| {
                    if gate.expired() {
                        return BatchResult::Shed;
                    }
                    let r = engine.execute(&queries[batch[k]]);
                    let mut page_bytes = Vec::with_capacity(r.pages.len() * 8);
                    for p in &r.pages {
                        page_bytes.extend_from_slice(&p.0.to_le_bytes());
                    }
                    BatchResult::Done {
                        comm_bytes: r.comm_bytes,
                        pages: r.pages.len() as u64,
                        pages_digest: md5::digest(&page_bytes),
                    }
                });
            let mut board = board.borrow_mut();
            for (&i, &result) in batch.iter().zip(&results) {
                board.results[i] = Some(result);
                if let Some(waker) = board.wakers[i].take() {
                    waker.wake();
                }
            }
        }

        if live.is_empty() && next_arrival >= n {
            break;
        }
        assert!(progressed, "serving executor stalled with work outstanding");
    }

    let responses: Vec<Response> = responses
        .into_iter()
        .map(|r| r.expect("every offered query is answered"))
        .collect();
    let report = build_report(&responses);
    debug_assert!(report.counters_consistent());
    ServeOutcome {
        report,
        responses,
        batches,
        max_batch,
    }
}

/// Folds the arrival-ordered responses into the persisted report.
fn build_report(responses: &[Response]) -> ServingReport {
    let mut report = ServingReport {
        queries: responses.len() as u64,
        ..ServingReport::default()
    };
    let mut stream = String::new();
    for r in responses {
        let _ = write!(stream, "{}", r.record());
        match r.status {
            ResponseStatus::Served => report.served += 1,
            ResponseStatus::Degraded => report.degraded += 1,
            ResponseStatus::ShedAdmission => report.shed_admission += 1,
            ResponseStatus::ShedOverload => report.shed_overload += 1,
            ResponseStatus::ShedDeadline => report.shed_deadline += 1,
        }
        if r.status.executed() {
            report.executed_bytes += r.bytes;
            report.histogram.record(r.latency_ns);
        } else {
            report.estimated_bytes += r.bytes;
        }
    }
    report.digest = md5::Md5::hex(&md5::digest(stream.as_bytes()));
    report.refresh_quantiles();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use cca_core::greedy_placement;
    use cca_trace::TraceConfig;

    fn fixture() -> (Pipeline, Cluster, Vec<Query>) {
        let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 4);
        cfg.seed = 9;
        let p = Pipeline::build(&cfg);
        let placement = greedy_placement(&p.problem);
        let cluster = p.cluster_for(&placement);
        let queries = p.workload.queries.queries.clone();
        (p, cluster, queries)
    }

    #[test]
    fn closed_loop_serves_everything_identically_to_serial_execute() {
        let (p, cluster, queries) = fixture();
        let engine = QueryEngine::new(&p.index, &cluster, p.config().aggregation);
        let out = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig::default(),
        );
        assert!(out.report.counters_consistent());
        assert_eq!(out.report.queries, queries.len() as u64);
        assert_eq!(out.report.served, queries.len() as u64);
        assert!(!out.report.degraded());
        for (i, (resp, q)) in out.responses.iter().zip(&queries).enumerate() {
            let serial = engine.execute(q);
            assert_eq!(resp.index, i);
            assert_eq!(resp.status, ResponseStatus::Served);
            assert_eq!(resp.bytes, serial.comm_bytes, "query {i}");
            assert_eq!(resp.pages, serial.pages.len() as u64, "query {i}");
            assert_eq!(resp.latency_ns, service_ns(q.words.len(), serial.comm_bytes));
        }
    }

    #[test]
    fn report_is_identical_across_inflight_and_threads() {
        let (p, cluster, queries) = fixture();
        let base = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig {
                inflight: 1,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        for (inflight, threads) in [(7, 2), (64, 4), (queries.len().max(1), 3)] {
            let out = serve(
                &p.index,
                &cluster,
                p.config().aggregation,
                &queries,
                &ServeConfig {
                    inflight,
                    threads,
                    ..ServeConfig::default()
                },
            );
            assert_eq!(out.report, base.report, "inflight {inflight} threads {threads}");
            assert_eq!(out.responses, base.responses);
        }
        // Batching telemetry is where the window size is allowed to show.
        assert_eq!(base.max_batch, 1);
    }

    #[test]
    fn zero_deadline_sheds_every_query_at_admission() {
        let (p, cluster, queries) = fixture();
        let out = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig {
                deadline_ms: Some(0),
                ..ServeConfig::default()
            },
        );
        assert!(out.report.counters_consistent());
        assert_eq!(out.report.shed_admission, queries.len() as u64);
        assert_eq!(out.report.served + out.report.degraded, 0);
        assert_eq!(out.batches, 0, "nothing reaches execution");
        assert!(out.report.degraded());
    }

    #[test]
    fn open_loop_overload_sheds_but_accounts_exactly() {
        let (p, cluster, queries) = fixture();
        let config = ServeConfig {
            inflight: 4,
            burst: Some(queries.len()),
            ..ServeConfig::default()
        };
        let out = serve(&p.index, &cluster, p.config().aggregation, &queries, &config);
        assert!(out.report.counters_consistent());
        assert_eq!(out.responses.len(), queries.len());
        assert!(out.report.shed_overload > 0, "10x capacity must overflow");
        assert_eq!(
            out.report.served + out.report.shed_overload,
            queries.len() as u64
        );
    }

    #[test]
    fn overhead_shifts_every_latency_and_tightens_admission() {
        let (p, cluster, queries) = fixture();
        let base = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig::default(),
        );
        let shifted = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig {
                overhead_ns: 1_000,
                ..ServeConfig::default()
            },
        );
        for (b, s) in base.responses.iter().zip(&shifted.responses) {
            assert_eq!(s.latency_ns, b.latency_ns + 1_000);
            assert_eq!(s.bytes, b.bytes, "overhead must not change the payload");
        }
        // Overhead above the whole budget closes the admission gate.
        let shed = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &queries,
            &ServeConfig {
                deadline_ms: Some(1),
                overhead_ns: 2_000_000,
                ..ServeConfig::default()
            },
        );
        assert!(shed.report.counters_consistent());
        assert_eq!(shed.report.shed_admission, queries.len() as u64);
    }

    #[test]
    fn empty_stream_is_a_clean_noop() {
        let (p, cluster, _) = fixture();
        let out = serve(
            &p.index,
            &cluster,
            p.config().aggregation,
            &[],
            &ServeConfig::default(),
        );
        assert!(out.report.counters_consistent());
        assert_eq!(out.report.queries, 0);
        assert_eq!(out.batches, 0);
        assert!(!out.report.degraded());
    }
}
