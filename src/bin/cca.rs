//! `cca` — command-line front end for the correlation-aware placement
//! pipeline.
//!
//! ```text
//! cca workload [--preset small|paper] [--seed N]
//!     print workload and correlation statistics (Fig 2-style)
//!
//! cca evaluate [--preset small|paper] [--seed N] [--nodes N] [--scope N]
//!     place with all three strategies, replay the trace, print the table
//!
//! cca place [--strategy random|greedy|lprr] [--nodes N] [--scope N] ...
//!     compute one placement and print per-node loads
//!
//! cca place --deadline-ms N [--min-strategy S] ...
//!     resilient placement through the degradation ladder: try the
//!     requested strategy within the wall-clock budget, fall back towards
//!     hash placement, and print the degradation report
//!
//! cca export-lp [--scope N] [--out FILE] ...
//!     write the scoped Figure-4 LP in CPLEX LP format (for external
//!     solvers such as the LPsolve the paper used)
//!
//! cca replay --placement FILE [--preset ...] [--seed N] [--nodes N]
//!     load a placement saved by `cca place --out` and replay the trace
//!
//! cca probe [--candidates K] [--scope N] [--seed N] ...
//!     solve the LP relaxation once, round K candidate placements, score
//!     all of them with one batched serving probe, and keep the placement
//!     that moves the fewest bytes on the query log
//!
//! cca run --epochs N [--seed S] [--drop-nodes K] [--drift-sigma F] ...
//!     online re-optimization loop: drift the query model each epoch,
//!     track EWMA correlation estimates, and migrate scoped placements
//!     only when projected savings amortize the migration bytes; seeded
//!     node losses are repaired mid-run (report on stdout)
//!
//! cca serve [--queries N] [--inflight K] [--deadline-ms D] ...
//!     async serving front: place greedily, sample a fresh query stream,
//!     and serve it through the batched-admission executor; stdout is
//!     the deterministic `# cca-serving-report v1` (byte-identical for
//!     any --threads/--shards/--inflight), human summary on stderr
//!
//! cca live [--epochs N] [--warm-drift K] [--migration-budget B] ...
//!     live re-optimizing runtime: serving and the drift controller in
//!     one epoch loop — the executor's admitted stream feeds the
//!     controller's estimates, accepted migrations ship as per-epoch
//!     byte-budgeted slices between serving windows, and migration
//!     bytes are charged into the serving virtual-time ledger; stdout
//!     is the deterministic `# cca-live-report v1` (byte-identical for
//!     any --threads/--shards/--inflight)
//! ```
//!
//! `place --out FILE` saves the computed placement; `workload --out FILE`
//! dumps the query log in the v1 text format.
//!
//! Exit codes: `0` success; `1` usage or I/O error; `2` a placement was
//! produced but degraded (a worse rung than requested was selected, or
//! capacities had to be repaired); `3` the placement is infeasible
//! (capacity violations remain).
//!
//! Argument parsing is deliberately dependency-free.

use cca::algo::{
    compose_with_hashed_rest, figure4::Figure4Lp, format_controller_report,
    format_live_report, format_serving_report, greedy_placement, importance_ranking,
    round_samples_scored, scope_subproblem, solve_relaxation, solve_resilient_replicated,
    spread_copies, validate_replica_spec, ControllerConfig, DomainTree, FaultPlan, ObjectId,
    RelaxOptions, ResilienceOptions, Rung, SolveBudget, Strategy,
};
use cca::online::{run_online, OnlineConfig};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::runtime::{run_live, LiveConfig};
use cca::serve::{serve, ServeConfig};
use cca::trace::TraceConfig;
use cca_rand::rngs::StdRng;
use cca_rand::SeedableRng;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Args {
    preset: String,
    seed: u64,
    nodes: usize,
    scope: Option<usize>,
    strategy: String,
    deadline_ms: Option<u64>,
    min_strategy: Option<String>,
    threads: Option<usize>,
    shards: Option<usize>,
    capacity_factor: Option<f64>,
    out: Option<String>,
    placement: Option<String>,
    candidates: usize,
    epochs: u64,
    queries_per_epoch: usize,
    drift_sigma: f64,
    drop_nodes: usize,
    queries: usize,
    inflight: usize,
    migration_budget: u64,
    warm_drift: u64,
    drift_epochs: Option<u64>,
    replicas: usize,
    domains: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            preset: "small".into(),
            seed: 42,
            nodes: 10,
            scope: Some(400),
            strategy: "lprr".into(),
            deadline_ms: None,
            min_strategy: None,
            threads: None,
            shards: None,
            capacity_factor: None,
            out: None,
            placement: None,
            candidates: 8,
            epochs: 1000,
            queries_per_epoch: 64,
            drift_sigma: 0.02,
            drop_nodes: 0,
            queries: 10_000,
            inflight: 64,
            migration_budget: 64 * 1024,
            warm_drift: 0,
            drift_epochs: None,
            replicas: 1,
            domains: None,
        }
    }
}

impl Args {
    /// Worker threads for the solve: `--threads N`, defaulting to the
    /// machine's available parallelism. The thread count never changes the
    /// computed placement — `--threads 1` merely runs everything inline.
    fn threads(&self) -> usize {
        self.threads.unwrap_or_else(cca_par::available_parallelism)
    }
}

fn usage() -> &'static str {
    "usage: cca <workload|evaluate|place|replay|export-lp|probe|run|serve|live> [options]\n\
     options:\n\
       --preset small|paper   workload size (default small)\n\
       --seed N               workload seed (default 42)\n\
       --nodes N              cluster size (default 10)\n\
       --scope N              optimization scope; 'full' for all objects (default 400)\n\
       --strategy S           random|greedy|lprr (place only; default lprr)\n\
       --deadline-ms N        wall-clock budget; enables the resilient\n\
                              degradation ladder (place only)\n\
       --min-strategy S       worst rung the ladder may select:\n\
                              lprr|partial-lprr|greedy|hash (place only)\n\
       --threads N            worker threads for the solve (default: all\n\
                              cores; results are identical for any N)\n\
       --shards N             evaluate costs on an N-shard graph view\n\
                              (place/probe; results are identical for\n\
                              any N, and --shards 1 equals no sharding)\n\
       --capacity-factor F    per-node capacity as a multiple of the\n\
                              average load (default 2.0, as in the paper)\n\
       --out FILE             output path (place/workload/export-lp/probe)\n\
       --placement FILE       saved placement to replay (replay only)\n\
       --candidates K         rounding candidates scored per batched\n\
                              probe, 1..=1024 (probe only; default 8)\n\
       --epochs N             epochs of the online controller loop\n\
                              (run only; default 1000)\n\
       --queries-per-epoch Q  queries sampled per epoch (run only;\n\
                              default 64)\n\
       --drift-sigma F        per-epoch drift of the query model (run\n\
                              only; default 0.02 — the paper's month is\n\
                              sigma 0.276)\n\
       --drop-nodes K         chaos: K node losses spread across the run\n\
                              (run only; default 0)\n\
       --queries N            queries in the served stream (serve only;\n\
                              default 10000)\n\
       --inflight K           admission-window size: max queries in\n\
                              flight and max batch per dispatch (serve/\n\
                              live; default 64; the report is identical\n\
                              for any K)\n\
       --migration-budget B   max migration bytes shipped per epoch\n\
                              (live only; default 65536)\n\
       --warm-drift K         drift steps applied before the first epoch\n\
                              — the regime shift the run recovers from\n\
                              (live only; default 0)\n\
       --drift-epochs N       drift only the first N epochs, or 'all'\n\
                              (live only; default all)\n\
       --replicas R           copies of every object, spread across\n\
                              distinct failure domains (place/probe/\n\
                              serve/run/live; default 1 = exact\n\
                              single-copy behaviour)\n\
       --domains SPEC         failure-domain tree over the nodes:\n\
                              'flat' (one domain per node, default),\n\
                              'D' (D contiguous domains), or 'ZxL'\n\
                              (Z zones of L leaf domains); requires\n\
                              replicas <= leaf domains\n\
     exit codes: 0 ok, 1 error, 2 degraded placement, 3 infeasible placement"
}

/// Unified parse-and-validate for count-valued flags: every count must be
/// at least 1 (degenerate zeros would otherwise surface as downstream
/// panics or silent empty output) and at most `max`.
fn parse_count(flag: &str, raw: &str, max: u64) -> Result<u64, String> {
    let n: u64 = raw
        .parse()
        .map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    if n > max {
        return Err(format!("{flag} must be at most {max}"));
    }
    Ok(n)
}

/// Parses a finite non-negative float flag.
fn parse_nonnegative(flag: &str, raw: &str) -> Result<f64, String> {
    let f: f64 = raw.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !(f.is_finite() && f >= 0.0) {
        return Err(format!("{flag} must be a finite non-negative number"));
    }
    Ok(f)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--preset" => args.preset = value()?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--nodes" => args.nodes = parse_count(flag, &value()?, u64::MAX)? as usize,
            "--scope" => {
                let v = value()?;
                args.scope = if v == "full" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("--scope: {e}"))?)
                };
            }
            "--strategy" => args.strategy = value()?,
            "--deadline-ms" => {
                args.deadline_ms =
                    Some(value()?.parse().map_err(|e| format!("--deadline-ms: {e}"))?);
            }
            "--min-strategy" => args.min_strategy = Some(value()?),
            "--threads" => args.threads = Some(parse_count(flag, &value()?, u64::MAX)? as usize),
            "--shards" => args.shards = Some(parse_count(flag, &value()?, u64::MAX)? as usize),
            "--capacity-factor" => {
                let f: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--capacity-factor: {e}"))?;
                if !(f.is_finite() && f > 0.0) {
                    return Err("--capacity-factor must be a positive number".into());
                }
                args.capacity_factor = Some(f);
            }
            "--out" => args.out = Some(value()?),
            "--placement" => args.placement = Some(value()?),
            "--candidates" => args.candidates = parse_count(flag, &value()?, 1024)? as usize,
            "--epochs" => args.epochs = parse_count(flag, &value()?, u64::MAX)?,
            "--queries-per-epoch" => {
                args.queries_per_epoch = parse_count(flag, &value()?, u64::MAX)? as usize;
            }
            "--drift-sigma" => args.drift_sigma = parse_nonnegative(flag, &value()?)?,
            "--queries" => args.queries = parse_count(flag, &value()?, u64::MAX)? as usize,
            "--inflight" => args.inflight = parse_count(flag, &value()?, u64::MAX)? as usize,
            "--drop-nodes" => {
                args.drop_nodes = value()?.parse().map_err(|e| format!("--drop-nodes: {e}"))?;
            }
            "--migration-budget" => {
                args.migration_budget = parse_count(flag, &value()?, u64::MAX)?;
            }
            "--warm-drift" => {
                args.warm_drift = value()?.parse().map_err(|e| format!("--warm-drift: {e}"))?;
            }
            "--replicas" => args.replicas = parse_count(flag, &value()?, 64)? as usize,
            "--domains" => args.domains = Some(value()?),
            "--drift-epochs" => {
                let v = value()?;
                args.drift_epochs = if v == "all" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("--drift-epochs: {e}"))?)
                };
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(args)
}

fn trace_config(args: &Args) -> Result<TraceConfig, String> {
    match args.preset.as_str() {
        "small" => Ok(TraceConfig::small()),
        "paper" => Ok(TraceConfig::paper_scaled()),
        "tiny" => Ok(TraceConfig::tiny()),
        other => Err(format!("unknown preset {other} (small|paper|tiny)")),
    }
}

fn build_pipeline(args: &Args) -> Result<Pipeline, String> {
    let mut config = PipelineConfig::new(trace_config(args)?, args.nodes);
    config.seed = args.seed;
    if let Some(f) = args.capacity_factor {
        config.capacity_factor = f;
    }
    eprintln!(
        "building {} workload (seed {}, {} nodes)...",
        args.preset, args.seed, args.nodes
    );
    let mut p = Pipeline::build(&config);
    if let Some(n) = args.shards {
        // Bulk cost evaluation (rounding ranking, ladder ranking,
        // migrate/repair scoring, probe candidate scoring via the scoped
        // subproblem) runs shard-parallel; every result is bit-identical
        // to the unsharded run on these dyadic-weight workloads.
        p.problem.set_sharding(n, args.threads());
    }
    Ok(p)
}

/// Parses and validates the replication spec against `--nodes`: the
/// `--domains` tree (flat when omitted) with `--replicas` copies spread
/// across it. `--replicas 0` is already rejected at parse time by
/// [`parse_count`]; a replica count exceeding the leaf-domain count
/// surfaces the typed [`cca::algo::ProblemError::ReplicaSpread`] here —
/// both are usage errors (exit 1).
fn replica_spec(args: &Args) -> Result<DomainTree, String> {
    let tree = match &args.domains {
        None => DomainTree::flat(args.nodes),
        Some(spec) => {
            DomainTree::parse(spec, args.nodes).map_err(|e| format!("--domains: {e}"))?
        }
    };
    validate_replica_spec(args.replicas, &tree).map_err(|e| format!("--replicas: {e}"))?;
    Ok(tree)
}

fn strategy(name: &str, threads: usize) -> Result<Strategy, String> {
    match name {
        "random" | "random-hash" => Ok(Strategy::RandomHash),
        "greedy" => Ok(Strategy::Greedy),
        "lprr" => Ok(Strategy::lprr_threads(threads)),
        other => Err(format!("unknown strategy {other} (random|greedy|lprr)")),
    }
}

fn cmd_workload(args: &Args) -> Result<(), String> {
    let p = build_pipeline(args)?;
    println!("documents:         {}", p.workload.corpus.len());
    println!("indexed keywords:  {}", p.index.num_keywords());
    println!("total index bytes: {}", p.index.total_bytes());
    print!(
        "{}",
        cca::trace::WorkloadSummary::of(&p.workload.queries, 200).report()
    );
    println!("problem pairs:        {}", p.problem.pairs().len());
    println!("node capacity:        {} bytes", p.problem.capacity(0));
    if let Some(path) = &args.out {
        let mut file =
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        cca::trace::write_query_log(&mut file, &p.workload.queries)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote query log to {path}");
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let p = build_pipeline(args)?;
    let base = p
        .evaluate(&Strategy::RandomHash, None)
        .map_err(|e| e.to_string())?;
    println!(
        "{:<12} {:>16} {:>10} {:>12} {:>10} {:>10}",
        "strategy", "bytes moved", "vs random", "local frac", "storage", "traffic"
    );
    println!(
        "{:<12} {:>16} {:>10} {:>12} {:>10} {:>10}",
        "", "", "", "", "imbalance", "imbalance"
    );
    for (name, s, scope) in [
        ("random-hash", Strategy::RandomHash, None),
        ("greedy", Strategy::Greedy, args.scope),
        ("lprr", Strategy::lprr_threads(args.threads()), args.scope),
    ] {
        let eval = p.evaluate(&s, scope).map_err(|e| e.to_string())?;
        println!(
            "{:<12} {:>16} {:>9.1}% {:>12.3} {:>10.2} {:>10.2}",
            name,
            eval.replay.total_bytes,
            100.0 * eval.replay.total_bytes as f64 / base.replay.total_bytes as f64,
            eval.replay.local_fraction(),
            eval.imbalance,
            eval.replay.traffic_imbalance()
        );
    }
    Ok(())
}

fn print_loads(problem: &cca::algo::CcaProblem, placement: &cca::algo::Placement) {
    let loads = placement.loads(problem);
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    println!("per-node loads (bytes; mean {mean:.0}):");
    for (k, load) in loads.iter().enumerate() {
        println!("  node {k:>3}: {load:>12} ({:.2}x mean)", *load as f64 / mean);
    }
}

fn save_placement(
    path: &str,
    problem: &cca::algo::CcaProblem,
    placement: &cca::algo::Placement,
) -> Result<(), String> {
    let mut file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    cca::algo::write_placement(&mut file, problem, placement)
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote placement to {path}");
    Ok(())
}

/// The shared tail of every report-producing arm: the machine report on
/// stdout, the human summary on stderr, and an optional `--out` copy.
fn emit_report(text: &str, summary: &str, out: Option<&str>, label: &str) -> Result<(), String> {
    print!("{text}");
    eprint!("{summary}");
    if let Some(path) = out {
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {label} to {path}");
    }
    Ok(())
}

/// The repo-wide exit taxonomy (module docs): 3 when the outcome is
/// infeasible, 2 when it completed degraded, 0 otherwise.
fn exit_taxonomy(infeasible: bool, degraded: bool) -> ExitCode {
    if infeasible {
        ExitCode::from(3)
    } else if degraded {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_place(args: &Args) -> Result<ExitCode, String> {
    let tree = replica_spec(args)?;
    if args.replicas > 1 {
        return cmd_place_replicated(args, &tree);
    }
    if args.deadline_ms.is_some() || args.min_strategy.is_some() {
        return cmd_place_resilient(args);
    }
    let p = build_pipeline(args)?;
    let s = strategy(&args.strategy, args.threads())?;
    let report = p.place(&s, args.scope).map_err(|e| e.to_string())?;
    println!("strategy:   {}", report.strategy);
    println!("model cost: {:.2}", report.cost);
    let audit = cca::algo::audit_placement(&p.problem, &report.placement, 5);
    print!("{}", audit.report());
    print_loads(&p.problem, &report.placement);
    if let Some(path) = &args.out {
        save_placement(path, &p.problem, &report.placement)?;
    }
    Ok(exit_taxonomy(!audit.feasible(), false))
}

fn cmd_place_resilient(args: &Args) -> Result<ExitCode, String> {
    let start = Rung::parse(&args.strategy)
        .ok_or_else(|| format!("unknown strategy {} (lprr|partial-lprr|greedy|hash)", args.strategy))?;
    let floor = match &args.min_strategy {
        None => Rung::Hash,
        Some(s) => Rung::parse(s)
            .ok_or_else(|| format!("unknown min-strategy {s} (lprr|partial-lprr|greedy|hash)"))?,
    };
    if floor < start {
        return Err(format!(
            "--min-strategy {floor} is a better rung than --strategy {start}; \
             the floor must be the same rung or a worse one"
        ));
    }
    let p = build_pipeline(args)?;
    let options = ResilienceOptions {
        budget: SolveBudget {
            deadline: args.deadline_ms.map(Duration::from_millis),
            ..SolveBudget::default()
        },
        start,
        floor,
        partial_scope: args.scope,
        threads: args.threads(),
        ..ResilienceOptions::default()
    };
    let r = p.place_resilient(&options);
    println!("strategy:   {} (resilient)", r.report.selected);
    println!("model cost: {:.2}", r.cost);
    print!("{}", r.report.summary());
    print!("{}", r.audit.report());
    print_loads(&r.effective_problem, &r.placement);
    if let Some(path) = &args.out {
        save_placement(path, &r.effective_problem, &r.placement)?;
    }
    Ok(exit_taxonomy(!r.audit.feasible(), r.report.degraded))
}

/// `cca place --replicas R`: replica-aware placement through the same
/// degradation ladder as the resilient path. The primary column comes
/// from the ladder; the extra copies spread deterministically across
/// distinct leaf domains of `--domains`. Saved placements use the
/// `# cca-placement v2` format.
fn cmd_place_replicated(args: &Args, tree: &DomainTree) -> Result<ExitCode, String> {
    let start = Rung::parse(&args.strategy).ok_or_else(|| {
        format!(
            "unknown strategy {} (lprr|partial-lprr|greedy|hash)",
            args.strategy
        )
    })?;
    let floor = match &args.min_strategy {
        None => Rung::Hash,
        Some(s) => Rung::parse(s)
            .ok_or_else(|| format!("unknown min-strategy {s} (lprr|partial-lprr|greedy|hash)"))?,
    };
    let p = build_pipeline(args)?;
    let options = ResilienceOptions {
        budget: SolveBudget {
            deadline: args.deadline_ms.map(Duration::from_millis),
            ..SolveBudget::default()
        },
        start,
        floor,
        partial_scope: args.scope,
        threads: args.threads(),
        ..ResilienceOptions::default()
    };
    let r = solve_resilient_replicated(
        &p.problem,
        &options,
        &FaultPlan::default(),
        tree,
        args.replicas,
    )
    .map_err(|e| e.to_string())?;
    println!("strategy:   {} (replicated x{})", r.base.report.selected, args.replicas);
    println!("model cost: {:.2}", r.cost);
    println!(
        "replicas:   {} copies across {} leaf domains (spread valid: {})",
        args.replicas,
        tree.num_domains(),
        r.spread_valid
    );
    print!("{}", r.base.report.summary());
    print!("{}", r.base.audit.report());
    let loads = r.replica.replica_loads(&r.base.effective_problem);
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    println!("per-node copy-inclusive loads (bytes; mean {mean:.0}):");
    for (k, load) in loads.iter().enumerate() {
        println!("  node {k:>3}: {load:>12} ({:.2}x mean)", *load as f64 / mean);
    }
    if let Some(path) = &args.out {
        let mut file =
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        cca::algo::write_replica_placement(&mut file, &r.base.effective_problem, &r.replica)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote replica placement to {path}");
    }
    Ok(exit_taxonomy(
        !r.base.audit.feasible() || !r.spread_valid,
        r.base.report.degraded,
    ))
}

/// `cca probe`: LP-relax once, round `--candidates` placements from the
/// same fractional solution, rank all of them with **one** batched probe
/// over the query log ([`Pipeline::probe_batch`]), and keep the candidate
/// that ships the fewest bytes. Ties break by model cost, then by
/// candidate index, so the winner is deterministic for a fixed seed.
fn cmd_probe(args: &Args) -> Result<ExitCode, String> {
    let tree = replica_spec(args)?;
    let p = build_pipeline(args)?;
    let threads = args.threads();
    let scope_size = args
        .scope
        .unwrap_or(p.problem.num_objects())
        .min(p.problem.num_objects());
    let scope: Vec<ObjectId> = importance_ranking(&p.problem)
        .into_iter()
        .take(scope_size)
        .collect();
    let sub = scope_subproblem(&p.problem, &scope, false);
    eprintln!(
        "relaxing {} objects on {} nodes...",
        sub.num_objects(),
        sub.num_nodes()
    );
    let seed_placement = greedy_placement(&sub);
    let outcome = solve_relaxation(&sub, Some(&seed_placement), &RelaxOptions::default())
        .map_err(|e| e.to_string())?;
    let (samples, model_costs) =
        round_samples_scored(&outcome.fractional, &sub, args.candidates, args.seed, threads)
            .map_err(|e| e.to_string())?;
    let full: Vec<cca::algo::Placement> = samples
        .iter()
        .map(|s| compose_with_hashed_rest(&p.problem, &scope, s))
        .collect();
    let probed = p.probe_batch(&full);
    println!("{:>9} {:>16} {:>16}", "candidate", "model cost", "probe bytes");
    let mut best: usize = 0;
    for (i, (&bytes, &cost)) in probed.iter().zip(&model_costs).enumerate() {
        println!("{i:>9} {cost:>16.2} {bytes:>16}");
        let better = (bytes, cost) < (probed[best], model_costs[best]);
        if better {
            best = i;
        }
    }
    println!(
        "selected:   candidate {best} ({} probed bytes)",
        probed[best]
    );
    let placement = full.into_iter().nth(best).expect("candidates >= 1");
    let audit = cca::algo::audit_placement(&p.problem, &placement, 5);
    print!("{}", audit.report());
    if args.replicas > 1 {
        // The probe ranks single-copy candidates; the extra copies of
        // the winner spread deterministically afterwards.
        let rp = spread_copies(
            &p.problem,
            &tree,
            placement,
            args.replicas,
            args.replicas as f64,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "replicas:   {} copies across {} leaf domains (spread valid: {})",
            args.replicas,
            tree.num_domains(),
            rp.spread_valid(&tree)
        );
        if let Some(path) = &args.out {
            let mut file =
                std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            cca::algo::write_replica_placement(&mut file, &p.problem, &rp)
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote replica placement to {path}");
        }
        return Ok(exit_taxonomy(!audit.feasible(), false));
    }
    if let Some(path) = &args.out {
        save_placement(path, &p.problem, &placement)?;
    }
    Ok(exit_taxonomy(!audit.feasible(), false))
}

/// `cca run`: the online drift-driven re-optimization loop (DESIGN.md
/// §12). Builds the pipeline, places greedily, then runs `--epochs`
/// controller epochs of drifting traffic with cost/benefit-gated scoped
/// migrations, optionally injecting `--drop-nodes` seeded node losses.
/// Stdout is exactly the serialized `ControllerReport` (byte-identical
/// for a fixed seed across any `--threads`/`--shards`, absent
/// `--deadline-ms`); the human summary goes to stderr.
fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    let tree = replica_spec(args)?;
    let p = build_pipeline(args)?;
    let controller = ControllerConfig {
        threads: args.threads(),
        shards: args.shards.unwrap_or(0),
        budget: SolveBudget {
            deadline: args.deadline_ms.map(Duration::from_millis),
            ..SolveBudget::default()
        },
        // `--domains` upgrades the robustness gate to probe whole-domain
        // loss; absent the flag the probe is the exact historic
        // heaviest-node check.
        domains: args.domains.as_ref().map(|_| tree.clone()),
        ..ControllerConfig::default()
    };
    let config = OnlineConfig {
        epochs: args.epochs,
        queries_per_epoch: args.queries_per_epoch,
        drift_sigma: args.drift_sigma,
        seed: args.seed,
        faults: FaultPlan {
            drop_nodes: args.drop_nodes,
            seed: args.seed ^ 0xfa01_7000,
            ..FaultPlan::default()
        },
        controller,
    };
    eprintln!(
        "running {} epochs x {} queries (drift sigma {}, {} node losses)...",
        config.epochs, config.queries_per_epoch, config.drift_sigma, args.drop_nodes
    );
    let outcome = run_online(&p, &config);
    let text = format_controller_report(&outcome.report);
    let mut summary = outcome.report.summary();
    if args.replicas > 1 {
        // The controller optimizes the primary column; the extra copies
        // of the final placement spread deterministically afterwards
        // (stderr only — the stdout report stays byte-identical).
        let rp = spread_copies(
            &outcome.problem,
            &tree,
            outcome.placement.clone(),
            args.replicas,
            args.replicas as f64,
        )
        .map_err(|e| e.to_string())?;
        summary.push_str(&format!(
            "final placement replicated x{} across {} leaf domains (spread valid: {})\n",
            args.replicas,
            tree.num_domains(),
            rp.spread_valid(&tree)
        ));
    }
    emit_report(&text, &summary, args.out.as_deref(), "controller report")?;
    Ok(exit_taxonomy(
        !outcome.report.final_feasible,
        outcome.report.degraded(),
    ))
}

/// `cca serve`: the async serving front (DESIGN.md §13). Places greedily,
/// samples a fresh `--queries`-long stream from the workload's query
/// model (a seed distinct from the training log, so serving is measured
/// on unseen traffic), and serves it through the batched-admission
/// executor. Stdout is exactly the serialized `# cca-serving-report v1`
/// — byte-identical for a fixed seed across any `--threads`, `--shards`
/// and `--inflight`; the human summary and wall-clock throughput go to
/// stderr.
fn cmd_serve(args: &Args) -> Result<ExitCode, String> {
    let tree = replica_spec(args)?;
    let p = build_pipeline(args)?;
    let placement = greedy_placement(&p.problem);
    let audit = cca::algo::audit_placement(&p.problem, &placement, 5);
    // With one copy this is exactly `cluster_for` (the report is
    // byte-identical to pre-replication builds); with more, reads route
    // to the cheapest replica.
    let cluster = if args.replicas > 1 {
        let rp = spread_copies(
            &p.problem,
            &tree,
            placement.clone(),
            args.replicas,
            args.replicas as f64,
        )
        .map_err(|e| e.to_string())?;
        eprintln!(
            "replicating {} copies across {} leaf domains (spread valid: {})",
            args.replicas,
            tree.num_domains(),
            rp.spread_valid(&tree)
        );
        p.cluster_for_replicas(&rp)
    } else {
        p.cluster_for(&placement)
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5e12_7e00);
    let stream = p.workload.model.sample_log(args.queries, &mut rng);
    let config = ServeConfig {
        inflight: args.inflight,
        threads: args.threads(),
        deadline_ms: args.deadline_ms,
        burst: None,
        overhead_ns: 0,
    };
    eprintln!(
        "serving {} queries (inflight {}, {} threads)...",
        args.queries, args.inflight, config.threads
    );
    let start = std::time::Instant::now();
    let outcome = serve(
        &p.index,
        &cluster,
        p.config().aggregation,
        &stream.queries,
        &config,
    );
    let elapsed = start.elapsed();
    let text = format_serving_report(&outcome.report);
    let mut summary = outcome.report.summary();
    summary.push_str(&format!(
        "{} batches (max {}), {:.0} queries/s wall-clock\n",
        outcome.batches,
        outcome.max_batch,
        args.queries as f64 / elapsed.as_secs_f64().max(1e-9)
    ));
    emit_report(&text, &summary, args.out.as_deref(), "serving report")?;
    Ok(exit_taxonomy(
        !audit.feasible(),
        outcome.report.degraded(),
    ))
}

/// `cca live`: the live re-optimizing runtime (DESIGN.md §14). Places
/// greedily, optionally applies `--warm-drift` regime-shift steps to the
/// query model, then drives `--epochs` epochs in which the admitted
/// serving stream feeds the controller's estimates and accepted
/// migrations ship as `--migration-budget`-bounded slices between
/// serving windows. Stdout is exactly the serialized
/// `# cca-live-report v1` — byte-identical for a fixed seed across any
/// `--threads`, `--shards` and `--inflight`; the human summary goes to
/// stderr. `--deadline-ms` here is the per-query serving budget (the
/// controller's solves stay un-deadlined, keeping the run
/// deterministic).
fn cmd_live(args: &Args) -> Result<ExitCode, String> {
    let tree = replica_spec(args)?;
    let p = build_pipeline(args)?;
    let controller = ControllerConfig {
        threads: args.threads(),
        shards: args.shards.unwrap_or(0),
        // A bounded replay amortizes migrations over the run itself: a
        // move is worthwhile iff it pays for its bytes within the epochs
        // this run will actually serve.
        horizon_epochs: args.epochs,
        // `--domains` upgrades the robustness gate to probe whole-domain
        // loss; absent the flag the probe is the exact historic
        // heaviest-node check.
        domains: args.domains.as_ref().map(|_| tree.clone()),
        ..ControllerConfig::default()
    };
    let config = LiveConfig {
        epochs: args.epochs,
        queries_per_epoch: args.queries_per_epoch,
        drift_sigma: args.drift_sigma,
        drift_epochs: args.drift_epochs,
        warm_drift_steps: args.warm_drift,
        seed: args.seed,
        inflight: args.inflight,
        threads: args.threads(),
        deadline_ms: args.deadline_ms,
        migration_budget: args.migration_budget,
        replicas: args.replicas,
        domains: args.domains.as_ref().map(|_| tree.clone()),
        controller,
    };
    eprintln!(
        "running {} live epochs x {} queries (warm drift {}, sigma {}, budget {} B/epoch)...",
        config.epochs,
        config.queries_per_epoch,
        config.warm_drift_steps,
        config.drift_sigma,
        config.migration_budget
    );
    let outcome = run_live(&p, &config);
    let text = format_live_report(&outcome.report);
    emit_report(
        &text,
        &outcome.report.summary(),
        args.out.as_deref(),
        "live report",
    )?;
    Ok(exit_taxonomy(
        !outcome.report.final_feasible,
        outcome.report.degraded(),
    ))
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .placement
        .as_ref()
        .ok_or("replay needs --placement FILE")?;
    let p = build_pipeline(args)?;
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let placement =
        cca::algo::read_placement(file, &p.problem).map_err(|e| format!("{path}: {e}"))?;
    let stats = p.replay(&placement);
    let base = p
        .evaluate(&Strategy::RandomHash, None)
        .map_err(|e| e.to_string())?;
    println!("bytes moved:   {}", stats.total_bytes);
    println!(
        "vs random:     {:.1}%",
        100.0 * stats.total_bytes as f64 / base.replay.total_bytes as f64
    );
    println!("local queries: {:.3}", stats.local_fraction());
    Ok(())
}

fn cmd_export_lp(args: &Args) -> Result<(), String> {
    let p = build_pipeline(args)?;
    let scope = args.scope.unwrap_or(p.problem.num_objects());
    let ranking = importance_ranking(&p.problem);
    let keep: Vec<_> = ranking.into_iter().take(scope).collect();
    let sub = scope_subproblem(&p.problem, &keep, false);
    eprintln!(
        "building Figure-4 LP for {} objects, {} pairs, {} nodes...",
        sub.num_objects(),
        sub.pairs().len(),
        sub.num_nodes()
    );
    let lp = Figure4Lp::build(&sub);
    let text = cca::lp::write_lp(&lp.model);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} bytes to {path}", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "workload" => cmd_workload(&args).map(|()| ExitCode::SUCCESS),
        "evaluate" => cmd_evaluate(&args).map(|()| ExitCode::SUCCESS),
        "place" => cmd_place(&args),
        "probe" => cmd_probe(&args),
        "run" => cmd_run(&args),
        "serve" => cmd_serve(&args),
        "live" => cmd_live(&args),
        "replay" => cmd_replay(&args).map(|()| ExitCode::SUCCESS),
        "export-lp" => cmd_export_lp(&args).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
