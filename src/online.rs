//! Online re-optimization driver: drifting query stream → controller.
//!
//! [`run_online`] closes the loop the paper leaves open. It takes a built
//! [`Pipeline`] (whose problem was solved against the "January" query
//! model), then, epoch by epoch, drifts the query model cumulatively
//! (`cca_trace::drift`, small per-epoch σ), samples a fresh query log,
//! re-estimates pair statistics under the pipeline's
//! [`CorrelationMode`], and feeds the observed co-occurrence counts to a
//! [`Controller`] — which detects drift, gates migrations on projected
//! savings vs. [`cca::algo::migration_bytes`](cca_core::migration_bytes),
//! and survives injected node loss (DESIGN.md §12).
//!
//! Determinism: with no wall-clock deadline in
//! [`ControllerConfig::budget`], the entire run — estimates, gate
//! decisions, migrations, repairs, the final report — is a pure function
//! of `(pipeline, OnlineConfig)`; `threads` and `shards` change only how
//! fast it runs. The drift and sampling RNG streams are seeded from
//! [`OnlineConfig::seed`] independently of the pipeline seed.

use crate::pipeline::{CorrelationMode, Pipeline};
use cca_core::controller::{Controller, ControllerConfig, ControllerReport, EpochObservation, EpochOutcome};
use cca_core::{greedy_placement, CcaProblem, FaultPlan, ObjectId, Placement};
use cca_rand::rngs::StdRng;
use cca_rand::SeedableRng;
use cca_trace::{DriftConfig, PairStats, QueryLog};

/// Configuration of one online run.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Epochs to run.
    pub epochs: u64,
    /// Queries sampled per epoch (a power of two keeps observed
    /// correlations dyadic at the source; the controller re-quantizes
    /// either way).
    pub queries_per_epoch: usize,
    /// Per-epoch drift σ applied cumulatively to the query model. The
    /// paper's month-scale calibration is σ = 0.276 (Fig 2B); the
    /// default spreads comparable drift over ~190 epochs.
    pub drift_sigma: f64,
    /// Seed of the drift / sampling streams.
    pub seed: u64,
    /// Chaos: `drop_nodes` node losses (seeded by `faults.seed`) spread
    /// evenly across the run.
    pub faults: FaultPlan,
    /// Controller tuning.
    pub controller: ControllerConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            epochs: 1000,
            queries_per_epoch: 64,
            drift_sigma: 0.02,
            seed: 42,
            faults: FaultPlan::default(),
            controller: ControllerConfig::default(),
        }
    }
}

/// Result of [`run_online`]: the report plus the final placement (with
/// the base problem it indexes, for persistence).
#[derive(Debug)]
pub struct OnlineOutcome {
    /// End-of-run controller account.
    pub report: ControllerReport,
    /// The final live placement.
    pub placement: Placement,
    /// The base problem the placement indexes (clone of the pipeline's).
    pub problem: CcaProblem,
}

/// Epochs (1-based) at which fault injections fire: `drop_nodes` single
/// losses spread evenly across the run.
#[must_use]
pub fn fault_epochs(epochs: u64, drop_nodes: usize) -> Vec<u64> {
    (0..drop_nodes as u64)
        .map(|i| ((i + 1) * epochs / (drop_nodes as u64 + 1)).max(1))
        .collect()
}

/// Folds one epoch's query log into the controller's estimation feed:
/// pair statistics under the pipeline's [`CorrelationMode`], mapped from
/// word ids to object ids, with co-occurrence ratios recovered as integer
/// counts. Shared by the offline driver ([`run_online`]) and the live
/// runtime ([`crate::runtime::run_live`]), which feeds the *executed*
/// slice of the admitted stream through the same path — one estimator,
/// not two.
#[must_use]
pub fn epoch_observation(pipeline: &Pipeline, log: &QueryLog) -> EpochObservation {
    let stats = match pipeline.config().correlation {
        CorrelationMode::AllPairs => PairStats::from_log(log),
        CorrelationMode::TwoSmallest => {
            PairStats::from_log_two_smallest(log, |w| pipeline.index.size_bytes(w))
        }
        CorrelationMode::LargestRest => {
            PairStats::from_log_largest_rest(log, |w| pipeline.index.size_bytes(w))
        }
    };

    let queries = stats.num_queries();
    let mut pair_counts = Vec::new();
    for (key, r) in stats.iter() {
        let (oa, ob) = (
            pipeline.object_of_word[key.0.index()],
            pipeline.object_of_word[key.1.index()],
        );
        if oa == usize::MAX || ob == usize::MAX {
            continue;
        }
        // `r` is count/num_queries with num_queries ≤ 2^53: the
        // division is exact enough to recover the integer count.
        let count = (r * queries as f64).round() as u64;
        pair_counts.push((ObjectId(oa as u32), ObjectId(ob as u32), count));
    }
    EpochObservation {
        pair_counts,
        queries,
    }
}

/// Runs the controller loop; see the module docs. Equivalent to
/// [`run_online_with`] with a no-op observer.
#[must_use]
pub fn run_online(pipeline: &Pipeline, config: &OnlineConfig) -> OnlineOutcome {
    run_online_with(pipeline, config, |_, _| {})
}

/// [`run_online`] with a per-epoch observer `(epoch, outcome)` — used by
/// tests to watch gate decisions and accumulated-loss evolution.
pub fn run_online_with(
    pipeline: &Pipeline,
    config: &OnlineConfig,
    mut observe: impl FnMut(u64, &EpochOutcome),
) -> OnlineOutcome {
    let problem = &pipeline.problem;
    let initial = greedy_placement(problem);
    let mut controller = Controller::new(problem, initial, config.controller.clone());

    let mut model = pipeline.workload.model.clone();
    let drift = DriftConfig {
        sigma: config.drift_sigma,
    };
    let mut drift_rng = StdRng::seed_from_u64(config.seed ^ 0x00d2_1f70);
    let mut sample_rng = StdRng::seed_from_u64(config.seed ^ 0x5a3b_1e00);

    let fault_at = fault_epochs(config.epochs, config.faults.drop_nodes);
    let mut next_fault = 0usize;

    for epoch in 1..=config.epochs {
        while next_fault < fault_at.len() && fault_at[next_fault] == epoch {
            let plan = FaultPlan {
                drop_nodes: 1,
                seed: config.faults.seed.wrapping_add(next_fault as u64),
                ..FaultPlan::default()
            };
            controller.inject_fault(&plan);
            next_fault += 1;
        }

        model = model.drifted(drift, &mut drift_rng);
        let log = model.sample_log(config.queries_per_epoch, &mut sample_rng);
        let obs = epoch_observation(pipeline, &log);
        let outcome = controller.step(&obs);
        observe(epoch, &outcome);
    }

    OnlineOutcome {
        report: controller.report(),
        placement: controller.placement().clone(),
        problem: problem.clone(),
    }
}
