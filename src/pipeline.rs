//! The end-to-end evaluation pipeline of the paper's §4 case study.
//!
//! Workload generation → inverted-index construction → CCA problem
//! assembly → placement → trace replay with communication accounting.
//! Every figure harness and example builds on this module.

use cca_core::{
    place, place_partial, CcaProblem, ObjectId, Placement, PlacementReport, PlaceError, Strategy,
};
use cca_search::{AggregationPolicy, Cluster, ExecutionStats, InvertedIndex, QueryEngine, StopwordList};
use cca_trace::{PairStats, TraceConfig, WordId, Workload};

/// How pair correlations are estimated from the query log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CorrelationMode {
    /// Count every keyword pair in every query (the plain §2.1 definition).
    AllPairs,
    /// Count only the two smallest-index keywords of each query — the
    /// paper's §3.2 adjustment for intersection-like operations, used by
    /// its evaluation.
    #[default]
    TwoSmallest,
    /// Count one pair per non-largest keyword against the largest — the
    /// paper's §3.2 adjustment for union-like operations. Pair this with
    /// [`AggregationPolicy::Union`] replay.
    LargestRest,
}

/// Configuration of the evaluation pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Workload generator parameters.
    pub trace: TraceConfig,
    /// Seed for workload generation (placements themselves are seeded via
    /// the strategy options).
    pub seed: u64,
    /// Number of cluster nodes.
    pub num_nodes: usize,
    /// Per-node capacity as a multiple of the average per-node index size;
    /// the paper uses 2.0 ("no more than twice the average per-node load").
    pub capacity_factor: f64,
    /// Correlation estimation mode.
    pub correlation: CorrelationMode,
    /// Keep at most this many heaviest pairs in the CCA problem (the
    /// sparse-`E` assumption of §3.1); `0` disables pruning.
    pub max_pairs: usize,
    /// Ignore pairs co-requested fewer than this many times (noise floor).
    pub min_pair_count: u64,
    /// How the replayed engine aggregates multi-keyword operations.
    /// Intersection matches [`CorrelationMode::TwoSmallest`]; Union
    /// matches [`CorrelationMode::LargestRest`].
    pub aggregation: AggregationPolicy,
}

impl PipelineConfig {
    /// A pipeline over `trace` and `num_nodes` nodes with the paper's
    /// defaults (capacity factor 2.0, two-smallest correlations, pair noise
    /// floor of 2 co-occurrences).
    #[must_use]
    pub fn new(trace: TraceConfig, num_nodes: usize) -> Self {
        PipelineConfig {
            trace,
            seed: 42,
            num_nodes,
            capacity_factor: 2.0,
            correlation: CorrelationMode::TwoSmallest,
            max_pairs: 0,
            min_pair_count: 2,
            aggregation: AggregationPolicy::Intersection,
        }
    }
}

/// The built pipeline: workload, index, and the CCA problem over all
/// indexed keywords.
#[derive(Debug)]
pub struct Pipeline {
    /// The generated workload (corpus + query log + model).
    pub workload: Workload,
    /// Inverted index over the corpus.
    pub index: InvertedIndex,
    /// Pair statistics estimated from the query log per the configured
    /// [`CorrelationMode`].
    pub stats: PairStats,
    /// The CCA problem: one object per indexed keyword.
    pub problem: CcaProblem,
    /// Keyword of each object (object id → word id).
    pub word_of_object: Vec<WordId>,
    /// Object of each word (word id → object index, `usize::MAX` when the
    /// word is unindexed).
    pub object_of_word: Vec<usize>,
    config: PipelineConfig,
}

/// One evaluated placement: the solver report plus replay measurements.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Placement and model-level cost from the solver.
    pub report: PlacementReport,
    /// Trace-replay measurements (actual bytes moved, locality).
    pub replay: ExecutionStats,
    /// Load-imbalance factor of the placement (max/mean stored bytes).
    pub imbalance: f64,
}

impl Pipeline {
    /// Generates the workload, builds the index, estimates correlations and
    /// assembles the CCA problem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero nodes, empty workload).
    #[must_use]
    pub fn build(config: &PipelineConfig) -> Self {
        assert!(config.num_nodes > 0, "pipeline needs at least one node");
        let workload = Workload::generate(&config.trace, config.seed);
        let index = InvertedIndex::build(&workload.corpus, &workload.vocabulary, &StopwordList::smart());

        let stats = match config.correlation {
            CorrelationMode::AllPairs => PairStats::from_log(&workload.queries),
            CorrelationMode::TwoSmallest => {
                PairStats::from_log_two_smallest(&workload.queries, |w| index.size_bytes(w))
            }
            CorrelationMode::LargestRest => {
                PairStats::from_log_largest_rest(&workload.queries, |w| index.size_bytes(w))
            }
        };

        // Objects: every indexed keyword, in deterministic (word id) order.
        let mut keywords: Vec<WordId> = index.keywords().collect();
        keywords.sort_unstable();
        let mut object_of_word = vec![usize::MAX; workload.vocabulary.len()];
        for (idx, &w) in keywords.iter().enumerate() {
            object_of_word[w.index()] = idx;
        }

        let problem = assemble_problem(
            config,
            &workload,
            &index,
            &keywords,
            &object_of_word,
            &stats,
        );

        Pipeline {
            workload,
            index,
            stats,
            problem,
            word_of_object: keywords,
            object_of_word,
            config: config.clone(),
        }
    }

    /// The configuration the pipeline was built with.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Re-targets the pipeline at a different cluster size, recomputing the
    /// per-node capacities (`capacity_factor × total ÷ nodes`) without
    /// regenerating the workload or index. Used by the node-count sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn renode(&mut self, num_nodes: usize) {
        assert!(num_nodes > 0, "pipeline needs at least one node");
        self.config.num_nodes = num_nodes;
        let capacity = (self.config.capacity_factor * self.index.total_bytes() as f64
            / num_nodes as f64)
            .ceil() as u64;
        self.problem = self
            .problem
            .with_capacities(vec![capacity; num_nodes]);
    }

    /// Computes a placement: full optimization (`scope = None`) or
    /// important-object partial optimization over the top `scope` objects.
    ///
    /// Determinism: for a fixed pipeline seed and strategy configuration
    /// the placement is reproducible byte-for-byte, including under
    /// [`LprrOptions::threads`](cca_core::LprrOptions) — rounding
    /// repetition `i` draws from substream `i` of the seed regardless of
    /// which worker runs it.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the LPRR strategy.
    pub fn place(
        &self,
        strategy: &Strategy,
        scope: Option<usize>,
    ) -> Result<PlacementReport, PlaceError> {
        match scope {
            None => place(&self.problem, strategy),
            Some(m) => place_partial(&self.problem, m, strategy),
        }
    }

    /// Computes a placement through the degradation ladder of
    /// [`cca_core::resilience`]: always returns a placement, degrading
    /// from LPRR towards hash placement under deadlines or failures, with
    /// a structured report of what happened.
    #[must_use]
    pub fn place_resilient(
        &self,
        options: &cca_core::ResilienceOptions,
    ) -> cca_core::ResilientPlacement {
        cca_core::solve_resilient(&self.problem, options)
    }

    /// Materialises a placement as a cluster (word-level lookup table).
    #[must_use]
    pub fn cluster_for(&self, placement: &Placement) -> Cluster {
        let mut assignment = vec![usize::MAX; self.workload.vocabulary.len()];
        for (obj_idx, &w) in self.word_of_object.iter().enumerate() {
            assignment[w.index()] = placement.node_of(ObjectId(obj_idx as u32));
        }
        Cluster::with_assignment(self.config.num_nodes, &self.index, &assignment)
    }

    /// Materialises a replicated placement as a cluster: one lookup column
    /// per copy. With one replica this is exactly
    /// [`Pipeline::cluster_for`] on the primary column, so single-copy
    /// routing is unchanged.
    #[must_use]
    pub fn cluster_for_replicas(&self, rp: &cca_core::ReplicaPlacement) -> Cluster {
        if rp.replicas() == 1 {
            return self.cluster_for(rp.primary());
        }
        let columns: Vec<Vec<usize>> = (0..rp.replicas())
            .map(|j| {
                let mut column = vec![usize::MAX; self.workload.vocabulary.len()];
                for (obj_idx, &w) in self.word_of_object.iter().enumerate() {
                    column[w.index()] = rp.node_of(ObjectId(obj_idx as u32), j);
                }
                column
            })
            .collect();
        Cluster::with_replica_assignment(self.config.num_nodes, &self.index, &columns)
    }

    /// Replays the query log against a placement and measures communication.
    #[must_use]
    pub fn replay(&self, placement: &Placement) -> ExecutionStats {
        let cluster = self.cluster_for(placement);
        let engine = QueryEngine::new(&self.index, &cluster, self.config.aggregation);
        engine.replay(&self.workload.queries)
    }

    /// Estimates the replay bytes of a placement from metadata alone via
    /// [`QueryEngine::model_probe`] — O(total query words), no posting
    /// lists touched. Exact for [`AggregationPolicy::Union`] pipelines; a
    /// lower bound on [`ExecutionStats::total_bytes`] for
    /// [`AggregationPolicy::Intersection`]. Useful for ranking candidate
    /// placements before paying for a full [`Pipeline::replay`].
    #[must_use]
    pub fn probe(&self, placement: &Placement) -> u64 {
        self.probe_batch(std::slice::from_ref(placement))[0]
    }

    /// [`Pipeline::probe`] for `k` candidate placements at once via
    /// [`QueryEngine::probe_batch`]: every query's placement-independent
    /// shape (posting-size sort, host selection) is derived **once** and
    /// evaluated against all candidates, instead of once per candidate.
    /// Entry `c` equals `probe(&placements[c])` exactly; an empty slice
    /// yields an empty vector.
    #[must_use]
    pub fn probe_batch(&self, placements: &[Placement]) -> Vec<u64> {
        let clusters: Vec<Cluster> = placements.iter().map(|p| self.cluster_for(p)).collect();
        let Some(first) = clusters.first() else {
            return Vec::new();
        };
        let refs: Vec<&Cluster> = clusters.iter().collect();
        let engine = QueryEngine::new(&self.index, first, self.config.aggregation);
        engine.probe_batch(&self.workload.queries, &refs)
    }

    /// Builds a CCA problem with correlations re-estimated from a
    /// different query log (e.g. a drifted month) over this pipeline's
    /// corpus and index. The object table, sizes and capacities are
    /// identical to [`Pipeline::build`]'s, so placements are directly
    /// comparable and [`cca_core::migration_bytes`] applies.
    #[must_use]
    pub fn problem_for_log(&self, log: &cca_trace::QueryLog) -> CcaProblem {
        let stats = match self.config.correlation {
            CorrelationMode::AllPairs => PairStats::from_log(log),
            CorrelationMode::TwoSmallest => {
                PairStats::from_log_two_smallest(log, |w| self.index.size_bytes(w))
            }
            CorrelationMode::LargestRest => {
                PairStats::from_log_largest_rest(log, |w| self.index.size_bytes(w))
            }
        };
        assemble_problem(
            &self.config,
            &self.workload,
            &self.index,
            &self.word_of_object,
            &self.object_of_word,
            &stats,
        )
    }

    /// Places with `strategy` (and optional scope) and replays the trace.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the LPRR strategy.
    pub fn evaluate(
        &self,
        strategy: &Strategy,
        scope: Option<usize>,
    ) -> Result<Evaluation, PlaceError> {
        let report = self.place(strategy, scope)?;
        let replay = self.replay(&report.placement);
        let cluster = self.cluster_for(&report.placement);
        Ok(Evaluation {
            report,
            replay,
            imbalance: cluster.imbalance(),
        })
    }
}

/// Shared problem assembly for [`Pipeline::build`] and
/// [`Pipeline::problem_for_log`].
fn assemble_problem(
    config: &PipelineConfig,
    workload: &Workload,
    index: &InvertedIndex,
    keywords: &[WordId],
    object_of_word: &[usize],
    stats: &PairStats,
) -> CcaProblem {
    let mut builder = CcaProblem::builder();
    for &w in keywords {
        builder.add_object(workload.vocabulary.spelling(w), index.size_bytes(w));
    }

    // Pairs: correlation r from the log; communication cost w = bytes
    // shipped when split = size of the smaller index.
    let noise_floor = config.min_pair_count as f64 / stats.num_queries().max(1) as f64;
    for (pair, r) in stats.iter() {
        if r + 1e-15 < noise_floor {
            continue;
        }
        let (oa, ob) = (object_of_word[pair.0.index()], object_of_word[pair.1.index()]);
        if oa == usize::MAX || ob == usize::MAX {
            continue; // a queried word absent from the corpus
        }
        let wij = index.size_bytes(pair.0).min(index.size_bytes(pair.1)) as f64;
        if wij == 0.0 {
            continue;
        }
        builder
            .add_pair(ObjectId(oa as u32), ObjectId(ob as u32), r, wij)
            .expect("pipeline-constructed pairs are valid");
    }

    let total_bytes = index.total_bytes();
    let capacity =
        (config.capacity_factor * total_bytes as f64 / config.num_nodes as f64).ceil() as u64;
    let mut problem = builder
        .uniform_capacities(config.num_nodes, capacity)
        .build()
        .expect("pipeline-constructed problem is valid");
    if config.max_pairs > 0 {
        problem.prune_pairs(config.max_pairs);
    }
    problem
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> Pipeline {
        let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 3);
        cfg.seed = 11;
        Pipeline::build(&cfg)
    }

    #[test]
    fn problem_mirrors_index() {
        let p = tiny_pipeline();
        assert_eq!(p.problem.num_objects(), p.index.num_keywords());
        for (idx, &w) in p.word_of_object.iter().enumerate() {
            let o = ObjectId(idx as u32);
            assert_eq!(p.problem.size(o), p.index.size_bytes(w));
            assert_eq!(
                p.problem.name(o),
                p.workload.vocabulary.spelling(w),
                "object name must be the keyword spelling"
            );
            assert_eq!(p.object_of_word[w.index()], idx);
        }
    }

    #[test]
    fn capacity_is_factor_times_average() {
        let p = tiny_pipeline();
        let expected =
            (2.0 * p.index.total_bytes() as f64 / 3.0).ceil() as u64;
        assert_eq!(p.problem.capacity(0), expected);
    }

    #[test]
    fn pairs_have_min_size_costs() {
        let p = tiny_pipeline();
        assert!(!p.problem.pairs().is_empty(), "expected correlated pairs");
        for pair in p.problem.pairs() {
            let wa = p.word_of_object[pair.a.index()];
            let wb = p.word_of_object[pair.b.index()];
            let expected = p.index.size_bytes(wa).min(p.index.size_bytes(wb)) as f64;
            assert_eq!(pair.comm_cost, expected);
            assert!(pair.correlation > 0.0 && pair.correlation <= 1.0);
        }
    }

    #[test]
    fn replay_is_placement_sensitive_and_better_when_colocated() {
        let p = tiny_pipeline();
        let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
        let greedy = p.evaluate(&Strategy::Greedy, None).unwrap();
        assert!(random.replay.total_bytes > 0);
        assert!(
            greedy.replay.total_bytes <= random.replay.total_bytes,
            "greedy {} vs random {}",
            greedy.replay.total_bytes,
            random.replay.total_bytes
        );
    }

    #[test]
    fn single_node_cluster_is_free() {
        let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 1);
        cfg.seed = 11;
        let p = Pipeline::build(&cfg);
        let eval = p.evaluate(&Strategy::RandomHash, None).unwrap();
        assert_eq!(eval.replay.total_bytes, 0);
        assert!((eval.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_placement_hashes_the_tail() {
        let p = tiny_pipeline();
        let scoped = p.place(&Strategy::Greedy, Some(10)).unwrap();
        let full_random = p.place(&Strategy::RandomHash, None).unwrap();
        // Out-of-scope objects must match the hash placement.
        let ranking = cca_core::importance_ranking(&p.problem);
        let in_scope: std::collections::HashSet<_> = ranking.into_iter().take(10).collect();
        for o in p.problem.objects() {
            if !in_scope.contains(&o) {
                assert_eq!(
                    scoped.placement.node_of(o),
                    full_random.placement.node_of(o)
                );
            }
        }
    }

    #[test]
    fn probe_lower_bounds_replay() {
        let p = tiny_pipeline();
        for strategy in [Strategy::RandomHash, Strategy::Greedy] {
            let report = p.place(&strategy, None).unwrap();
            let probe = p.probe(&report.placement);
            let replayed = p.replay(&report.placement).total_bytes;
            assert!(
                probe <= replayed,
                "probe {probe} exceeded replayed bytes {replayed}"
            );
        }
        // And the probe still separates good from bad placements.
        let random = p.place(&Strategy::RandomHash, None).unwrap();
        let greedy = p.place(&Strategy::Greedy, None).unwrap();
        assert!(p.probe(&greedy.placement) <= p.probe(&random.placement));
    }

    #[test]
    fn probe_batch_matches_per_placement_probes() {
        let p = tiny_pipeline();
        let candidates = vec![
            p.place(&Strategy::RandomHash, None).unwrap().placement,
            p.place(&Strategy::Greedy, None).unwrap().placement,
        ];
        let batch = p.probe_batch(&candidates);
        assert_eq!(batch.len(), 2);
        for (c, placement) in candidates.iter().enumerate() {
            assert_eq!(batch[c], p.probe(placement), "candidate {c}");
        }
        assert!(p.probe_batch(&[]).is_empty());
    }

    #[test]
    fn union_pipeline_probe_is_exact() {
        let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 3);
        cfg.seed = 11;
        cfg.correlation = CorrelationMode::LargestRest;
        cfg.aggregation = AggregationPolicy::Union;
        let p = Pipeline::build(&cfg);
        let report = p.place(&Strategy::Greedy, None).unwrap();
        assert_eq!(
            p.probe(&report.placement),
            p.replay(&report.placement).total_bytes
        );
    }

    #[test]
    fn model_cost_tracks_replay_cost() {
        // The CCA objective (model) and replayed bytes (measurement) must
        // agree on ordering: a placement with much lower model cost should
        // not replay worse. Checked via random vs greedy.
        let p = tiny_pipeline();
        let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
        let greedy = p.evaluate(&Strategy::Greedy, None).unwrap();
        if greedy.report.cost < 0.5 * random.report.cost {
            assert!(greedy.replay.total_bytes < random.replay.total_bytes);
        }
    }
}
