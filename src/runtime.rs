//! Live re-optimizing runtime: serving and the drift controller in one
//! epoch-structured loop (DESIGN.md §14).
//!
//! [`run_live`] unifies the two halves that [`crate::serve`] and
//! [`crate::online`] previously exercised separately. Each epoch:
//!
//! 1. **Migrate** — if the controller has a staged migration, ship one
//!    byte-budgeted slice ([`Controller::advance_migration`]) and swap
//!    the serving cluster to the updated placement *between* admission
//!    windows (queries never observe a half-applied epoch).
//! 2. **Serve** — drift the query model, sample the epoch's offered
//!    stream, and run it through the batched admission executor
//!    ([`crate::serve::serve`]) against the current cluster. The slice's
//!    bytes are charged into the same virtual-time ledger as query
//!    traffic: every query in the epoch carries
//!    `migrated_bytes × SERVICE_BYTE_NS / offered` extra virtual
//!    nanoseconds ([`ServeConfig::overhead_ns`]), so migration traffic
//!    competes with queries for the latency budget instead of being
//!    free.
//! 3. **Estimate** — the *executed* slice of the admitted stream (the
//!    queries that actually ran; shed queries touched nothing) feeds
//!    [`crate::online::epoch_observation`] and then
//!    [`Controller::step`]: the controller estimates from exactly the
//!    stream the executor answered — one EWMA path, not a parallel
//!    estimator.
//!
//! Determinism: latency is virtual and the controller is deterministic
//! (no wall-clock solve budget by default), so the end-of-run
//! [`LiveReport`] — counters, per-window histograms, digest — is a pure
//! function of `(pipeline, LiveConfig)`; `threads`, `shards` and
//! `inflight` change only how fast it runs. The digest chains every
//! epoch's migrated bytes with its serving digest, so a single
//! out-of-order byte anywhere in the interleaved run shows up.

use std::fmt::Write as _;

use crate::online::epoch_observation;
use crate::pipeline::Pipeline;
use crate::serve::{serve, ServeConfig, SERVICE_BYTE_NS};
use cca_core::controller::{Controller, ControllerConfig, ControllerReport, EpochOutcome};
use cca_core::{
    greedy_placement, spread_copies, validate_replica_spec, CcaProblem, DomainTree, LiveReport,
    Placement, ServingReport,
};
use cca_hash::md5;
use cca_rand::rngs::StdRng;
use cca_rand::SeedableRng;
use cca_trace::{DriftConfig, Query, QueryLog};

/// Configuration of one live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Epochs to run.
    pub epochs: u64,
    /// Queries offered per epoch.
    pub queries_per_epoch: usize,
    /// Per-epoch drift σ applied cumulatively to the query model (same
    /// stream discipline as [`crate::online::OnlineConfig`]).
    pub drift_sigma: f64,
    /// Apply drift only to the first this-many epochs (`None` drifts
    /// every epoch). A bounded burst leaves a stationary tail in which
    /// the post-migration window measures the re-optimized placement
    /// instead of chasing a moving target.
    pub drift_epochs: Option<u64>,
    /// Drift steps applied to the query model *before* the first epoch:
    /// the regime shift that happened while the placement was offline —
    /// the paper's "January placement, February workload" scenario. The
    /// live stream then starts already mismatched with the greedy
    /// placement, and the pre-migration window prices that mismatch.
    pub warm_drift_steps: u64,
    /// Seed of the drift / sampling streams.
    pub seed: u64,
    /// Admission-window size of the serving executor. Never changes the
    /// report.
    pub inflight: usize,
    /// Worker threads for batch execution. Never changes the report.
    pub threads: usize,
    /// Per-query virtual latency budget in milliseconds (`None` disables
    /// shedding).
    pub deadline_ms: Option<u64>,
    /// Per-epoch migration byte budget: no epoch ships more than this.
    pub migration_budget: u64,
    /// Copies of every object the serving cluster holds. `1` (the
    /// default) is the exact single-copy runtime — reports are
    /// bit-identical to builds without replication. With `r > 1` the
    /// controller still optimizes the primary column; the serving
    /// overlay re-spreads the extra copies across `domains` after every
    /// migration slice, and reads route to the cheapest replica.
    pub replicas: usize,
    /// Failure-domain tree the copies spread across (`None` = flat: one
    /// leaf domain per node).
    pub domains: Option<DomainTree>,
    /// Controller tuning. `migration_budget_per_epoch` is overwritten
    /// with [`LiveConfig::migration_budget`] — the live runtime always
    /// paces migrations.
    pub controller: ControllerConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            epochs: 120,
            queries_per_epoch: 64,
            drift_sigma: 0.05,
            drift_epochs: None,
            warm_drift_steps: 0,
            seed: 42,
            inflight: 64,
            threads: 1,
            deadline_ms: None,
            migration_budget: 64 * 1024,
            replicas: 1,
            domains: None,
            controller: ControllerConfig::default(),
        }
    }
}

/// What one epoch of the live loop did — handed to the
/// [`run_live_with`] observer and folded into the [`LiveReport`].
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch number, 1-based.
    pub epoch: u64,
    /// Migration bytes shipped at the top of this epoch.
    pub migrated_bytes: u64,
    /// Virtual nanoseconds of migration interference charged to every
    /// query of this epoch.
    pub overhead_ns: u64,
    /// The epoch's serving report.
    pub report: ServingReport,
    /// What the controller decided after seeing the epoch's executed
    /// stream.
    pub outcome: EpochOutcome,
}

/// Result of [`run_live`].
#[derive(Debug)]
pub struct LiveOutcome {
    /// The headline end-of-run account (persisted as
    /// `# cca-live-report v1`).
    pub report: LiveReport,
    /// The controller's own end-of-run account.
    pub controller: ControllerReport,
    /// The final live placement.
    pub placement: Placement,
    /// The base problem the placement indexes (clone of the pipeline's).
    pub problem: CcaProblem,
}

/// Runs the live loop; see the module docs. Equivalent to
/// [`run_live_with`] with a no-op observer.
#[must_use]
pub fn run_live(pipeline: &Pipeline, config: &LiveConfig) -> LiveOutcome {
    run_live_with(pipeline, config, |_| {})
}

/// [`run_live`] with a per-epoch observer — used by tests to watch
/// migration pacing and per-epoch accounting.
///
/// # Panics
///
/// Panics if `config.replicas` cannot spread across `config.domains`
/// (validate with [`cca_core::validate_replica_spec`] first — the CLI
/// does).
pub fn run_live_with(
    pipeline: &Pipeline,
    config: &LiveConfig,
    mut observe: impl FnMut(&EpochRecord),
) -> LiveOutcome {
    let problem = &pipeline.problem;
    let tree = config
        .domains
        .clone()
        .unwrap_or_else(|| DomainTree::flat(problem.num_nodes()));
    validate_replica_spec(config.replicas.max(1), &tree).expect("replica spec must be valid");
    let replicas = config.replicas.max(1);
    // The serving overlay: with one copy this is exactly `cluster_for`
    // (bit-identical reports); with more, the extra copies are re-spread
    // deterministically from the controller's primary placement, so the
    // overlay follows every migration without its own state.
    let cluster_of = |primary: &Placement| {
        if replicas == 1 {
            pipeline.cluster_for(primary)
        } else {
            let rp = spread_copies(problem, &tree, primary.clone(), replicas, replicas as f64)
                .expect("spec validated above");
            pipeline.cluster_for_replicas(&rp)
        }
    };
    let initial = greedy_placement(problem);
    let mut controller_config = config.controller.clone();
    controller_config.migration_budget_per_epoch = Some(config.migration_budget);
    let mut controller = Controller::new(problem, initial, controller_config);
    let mut cluster = cluster_of(controller.placement());

    let mut model = pipeline.workload.model.clone();
    let drift = DriftConfig {
        sigma: config.drift_sigma,
    };
    let mut drift_rng = StdRng::seed_from_u64(config.seed ^ 0x00d2_1f70);
    let mut sample_rng = StdRng::seed_from_u64(config.seed ^ 0x5a3b_1e00);
    for _ in 0..config.warm_drift_steps {
        model = model.drifted(drift, &mut drift_rng);
    }

    let mut records: Vec<EpochRecord> = Vec::with_capacity(config.epochs as usize);

    for epoch in 1..=config.epochs {
        // 1. Ship one budgeted migration slice, then swap the serving
        // cluster before any of this epoch's queries are admitted.
        let mut migrated = 0u64;
        if let Some(slice) = controller.advance_migration() {
            migrated = slice.bytes;
            if slice.moves > 0 {
                cluster = cluster_of(controller.placement());
            }
        }

        // 2. Drift, sample, and serve the epoch's offered stream, with
        // the slice's bytes charged as per-query virtual interference.
        if config.drift_epochs.is_none_or(|k| epoch <= k) {
            model = model.drifted(drift, &mut drift_rng);
        }
        let log = model.sample_log(config.queries_per_epoch, &mut sample_rng);
        let overhead_ns = if log.queries.is_empty() {
            0
        } else {
            migrated.saturating_mul(SERVICE_BYTE_NS) / log.queries.len() as u64
        };
        let out = serve(
            &pipeline.index,
            &cluster,
            pipeline.config().aggregation,
            &log.queries,
            &ServeConfig {
                inflight: config.inflight,
                threads: config.threads,
                deadline_ms: config.deadline_ms,
                burst: None,
                overhead_ns,
            },
        );

        // 3. The executed slice of the admitted stream is the
        // controller's estimation stream.
        let executed: Vec<Query> = out
            .responses
            .iter()
            .filter(|r| r.status.executed())
            .map(|r| log.queries[r.index].clone())
            .collect();
        let executed_log = QueryLog {
            queries: executed,
            universe: log.universe,
        };
        let obs = epoch_observation(pipeline, &executed_log);
        let outcome = controller.step(&obs);

        let record = EpochRecord {
            epoch,
            migrated_bytes: migrated,
            overhead_ns,
            report: out.report,
            outcome,
        };
        observe(&record);
        records.push(record);
    }

    let controller_report = controller.report();
    let report = build_live_report(
        &records,
        &controller_report,
        controller.abandoned_migrations(),
        config.migration_budget,
    );
    debug_assert!(report.counters_consistent());
    debug_assert!(report.within_budget());
    LiveOutcome {
        report,
        controller: controller_report,
        placement: controller.placement().clone(),
        problem: problem.clone(),
    }
}

/// Folds the per-epoch records into the end-of-run [`LiveReport`]: sums
/// the serving counters, tracks migration pacing, and splits the run
/// into pre / mid / post windows around the epochs that shipped bytes.
fn build_live_report(
    records: &[EpochRecord],
    controller: &ControllerReport,
    abandoned_migrations: u64,
    migration_budget: u64,
) -> LiveReport {
    let mut report = LiveReport {
        epochs: records.len() as u64,
        evaluated: controller.evaluated,
        migrations: controller.migrations,
        abandoned_migrations,
        migration_budget,
        final_feasible: controller.final_feasible,
        ..LiveReport::default()
    };
    let first = records.iter().position(|r| r.migrated_bytes > 0);
    let last = records.iter().rposition(|r| r.migrated_bytes > 0);
    let mut stream = String::new();
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(stream, "{}\t{}\t{}", r.epoch, r.migrated_bytes, r.report.digest);
        report.queries += r.report.queries;
        report.served += r.report.served;
        report.degraded += r.report.degraded;
        report.shed_admission += r.report.shed_admission;
        report.shed_overload += r.report.shed_overload;
        report.shed_deadline += r.report.shed_deadline;
        report.executed_bytes += r.report.executed_bytes;
        report.estimated_bytes += r.report.estimated_bytes;
        if r.migrated_bytes > 0 {
            report.migration_epochs += 1;
            report.migrated_bytes += r.migrated_bytes;
            report.max_epoch_migrated_bytes = report.max_epoch_migrated_bytes.max(r.migrated_bytes);
        }
        let executed = r.report.served + r.report.degraded;
        // Window: pre before the first shipping epoch, post after the
        // last; a run with no migration is all pre.
        match (first, last) {
            (Some(f), Some(_)) if i < f => {
                report.pre_epochs += 1;
                report.pre_queries += executed;
                report.pre_executed_bytes += r.report.executed_bytes;
                report.pre_histogram.merge(&r.report.histogram);
            }
            (Some(_), Some(l)) if i > l => {
                report.post_epochs += 1;
                report.post_queries += executed;
                report.post_executed_bytes += r.report.executed_bytes;
                report.post_histogram.merge(&r.report.histogram);
            }
            (Some(_), Some(_)) => {
                report.mid_histogram.merge(&r.report.histogram);
            }
            _ => {
                report.pre_epochs += 1;
                report.pre_queries += executed;
                report.pre_executed_bytes += r.report.executed_bytes;
                report.pre_histogram.merge(&r.report.histogram);
            }
        }
    }
    report.digest = md5::Md5::hex(&md5::digest(stream.as_bytes()));
    report.refresh_quantiles();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use cca_trace::TraceConfig;

    fn tiny_pipeline(shards: Option<usize>) -> Pipeline {
        let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 4);
        cfg.seed = 9;
        let mut p = Pipeline::build(&cfg);
        if let Some(s) = shards {
            p.problem.set_sharding(s, 2);
        }
        p
    }

    fn drifty_config() -> LiveConfig {
        LiveConfig {
            epochs: 48,
            queries_per_epoch: 64,
            drift_sigma: 0.25,
            seed: 7,
            migration_budget: 4 * 1024,
            controller: ControllerConfig {
                evaluate_every: 4,
                horizon_epochs: 256,
                ..ControllerConfig::default()
            },
            ..LiveConfig::default()
        }
    }

    #[test]
    fn live_run_migrates_within_budget_and_accounts_exactly() {
        let p = tiny_pipeline(None);
        let config = drifty_config();
        let mut epoch_bytes = Vec::new();
        let out = run_live_with(&p, &config, |r| epoch_bytes.push(r.migrated_bytes));
        assert!(out.report.counters_consistent());
        assert!(out.report.within_budget());
        assert_eq!(out.report.epochs, config.epochs);
        assert_eq!(
            out.report.queries,
            config.epochs * config.queries_per_epoch as u64
        );
        for (i, &b) in epoch_bytes.iter().enumerate() {
            assert!(b <= config.migration_budget, "epoch {} shipped {b}", i + 1);
        }
        assert_eq!(out.report.migrated_bytes, epoch_bytes.iter().sum::<u64>());
        assert_eq!(out.report.migrated_bytes, out.controller.migrated_bytes);
        assert!(out.report.migrations > 0, "drift this size must migrate");
        assert!(
            out.report.migration_epochs > 1,
            "the budget must split the migration across epochs"
        );
    }

    #[test]
    fn report_is_identical_across_threads_shards_and_inflight() {
        let base_p = tiny_pipeline(None);
        let config = drifty_config();
        let base = run_live(&base_p, &config);
        assert!(base.report.migrations > 0, "exercise the migration path");
        for (threads, shards, inflight) in [(2, Some(2), 1), (8, Some(7), 64)] {
            let p = tiny_pipeline(shards);
            let out = run_live(
                &p,
                &LiveConfig {
                    threads,
                    inflight,
                    controller: ControllerConfig {
                        shards: shards.unwrap_or(1),
                        ..config.controller.clone()
                    },
                    ..config.clone()
                },
            );
            assert_eq!(
                out.report, base.report,
                "threads {threads} shards {shards:?} inflight {inflight}"
            );
            assert_eq!(out.placement, base.placement);
        }
    }

    /// The headline scenario: the placement was built on "January", the
    /// live stream is "February" (a warm drift burst), and the workload
    /// is stationary from then on. The controller detects the mismatch,
    /// migrates under budget, and the post-migration window ships
    /// strictly fewer bytes per query than the pre-migration window.
    #[test]
    fn regime_shift_replay_improves_bytes_per_query_after_migration() {
        let p = tiny_pipeline(None);
        let out = run_live(
            &p,
            &LiveConfig {
                epochs: 80,
                queries_per_epoch: 256,
                drift_sigma: 0.25,
                drift_epochs: Some(0),
                warm_drift_steps: 24,
                seed: 7,
                migration_budget: 4 * 1024,
                controller: ControllerConfig {
                    horizon_epochs: 256,
                    ..ControllerConfig::default()
                },
                ..LiveConfig::default()
            },
        );
        assert!(out.report.counters_consistent());
        assert!(out.report.within_budget());
        assert!(out.report.migrations >= 1);
        assert!(out.report.pre_epochs > 0 && out.report.post_epochs > 0);
        assert!(
            out.report.improved(),
            "post-migration window must ship strictly fewer bytes/query: pre {:?} post {:?}",
            out.report.pre_bytes_per_query(),
            out.report.post_bytes_per_query()
        );
    }

    #[test]
    fn no_drift_means_no_migration_and_an_all_pre_run() {
        let p = tiny_pipeline(None);
        let out = run_live(
            &p,
            &LiveConfig {
                epochs: 12,
                drift_sigma: 0.0,
                ..drifty_config()
            },
        );
        assert!(out.report.counters_consistent());
        assert_eq!(out.report.migrated_bytes, 0);
        assert_eq!(out.report.migration_epochs, 0);
        assert_eq!(out.report.pre_epochs, out.report.epochs);
        assert_eq!(out.report.post_epochs, 0);
        assert!(!out.report.improved(), "no post window, no improvement claim");
    }

    #[test]
    fn migration_interference_is_charged_to_the_epoch_queries() {
        let p = tiny_pipeline(None);
        let config = drifty_config();
        let mut charged = Vec::new();
        run_live_with(&p, &config, |r| {
            if r.migrated_bytes > 0 {
                charged.push((r.migrated_bytes, r.overhead_ns));
            }
        });
        assert!(!charged.is_empty());
        for (bytes, overhead) in charged {
            assert_eq!(
                overhead,
                bytes * SERVICE_BYTE_NS / config.queries_per_epoch as u64
            );
        }
    }
}
