//! # cca — Correlation-Aware Object Placement for Multi-Object Operations
//!
//! A Rust reproduction of *Zhong, Shen, Seiferas, ICDCS 2008*: placing
//! correlated objects (objects frequently requested together) on the same
//! node of a distributed system to minimise multi-object operation
//! communication, subject to per-node capacity.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`algo`] (`cca-core`) — the CCA problem, LP relaxation, randomized
//!   rounding (Algorithm 2.1), greedy and random-hash baselines, partial
//!   optimization, capacity repair, exact oracle.
//! * [`lp`] (`cca-lp`) — from-scratch dense and sparse simplex solvers.
//! * [`search`] (`cca-search`) — inverted indices, cluster simulator, query
//!   engine with communication accounting.
//! * [`trace`] (`cca-trace`) — synthetic corpus/query-log generation
//!   calibrated to the paper's trace statistics, plus trace analytics.
//! * [`hashing`] (`cca-hash`) — RFC 1321 MD5 and hash placement.
//! * [`pipeline`] — the end-to-end evaluation pipeline of the paper's §4
//!   case study: workload → index → CCA problem → placement → trace replay.
//! * [`serve`] — the async serving front: a first-party poll-based
//!   executor that admits bounded windows of concurrent queries, batches
//!   their execution per home node, and answers every query under the
//!   served/degraded/shed taxonomy with a deterministic latency report.
//!
//! # End-to-end example
//!
//! ```
//! use cca::pipeline::{CorrelationMode, Pipeline, PipelineConfig};
//! use cca::algo::Strategy;
//! use cca::trace::TraceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = PipelineConfig::new(TraceConfig::tiny(), 4);
//! config.seed = 7;
//! config.correlation = CorrelationMode::TwoSmallest;
//! let pipeline = Pipeline::build(&config);
//!
//! let random = pipeline.evaluate(&Strategy::RandomHash, None)?;
//! let lprr = pipeline.evaluate(&Strategy::lprr(), Some(50))?;
//! // Correlation-aware placement moves fewer bytes over the wire.
//! assert!(lprr.replay.total_bytes <= random.replay.total_bytes);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cca_core as algo;
pub use cca_hash as hashing;
pub use cca_lp as lp;
pub use cca_search as search;
pub use cca_trace as trace;

pub mod online;
pub mod pipeline;
pub mod runtime;
pub mod serve;
