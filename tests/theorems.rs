//! Statistical verification of the paper's formal results (Lemmas 1–2,
//! Theorems 2–3) on problems derived from the actual search pipeline, plus
//! the NP-hardness artifacts of Theorem 1.

use cca::algo::{
    construct_optimal_vertex, exact_placement, importance_ranking, round_once, round_samples,
    scope_subproblem, solve_relaxation, ExactOptions, ObjectId, RelaxMethod, RelaxOptions,
};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::trace::TraceConfig;
use cca_rand::rngs::StdRng;
use cca_rand::SeedableRng;

/// A small CCA subproblem carved from the real pipeline, so the theorem
/// checks run against realistic sizes/correlations rather than toys.
fn pipeline_subproblem(objects: usize) -> cca::algo::CcaProblem {
    let mut config = PipelineConfig::new(TraceConfig::tiny(), 3);
    config.seed = 1234;
    let p = Pipeline::build(&config);
    let ranking = importance_ranking(&p.problem);
    let keep: Vec<ObjectId> = ranking.into_iter().take(objects).collect();
    scope_subproblem(&p.problem, &keep, false)
}

/// Lemma 1: after rounding, object `i` is at node `k` with probability
/// `x_{i,k}` — verified empirically on the LP solution of a real
/// subproblem.
#[test]
fn lemma1_rounding_marginals() {
    let sub = pipeline_subproblem(12);
    let out = solve_relaxation(&sub, None, &RelaxOptions::default()).unwrap();
    let n = sub.num_nodes();
    let trials = 4000;
    let mut rng = StdRng::seed_from_u64(1);
    let mut counts = vec![vec![0u32; n]; sub.num_objects()];
    for _ in 0..trials {
        let placement = round_once(&out.fractional, &mut rng).expect("stochastic vertex");
        for o in sub.objects() {
            counts[o.index()][placement.node_of(o)] += 1;
        }
    }
    for o in sub.objects() {
        for (k, &count) in counts[o.index()].iter().enumerate() {
            let emp = f64::from(count) / trials as f64;
            let want = out.fractional.fraction(o, k);
            assert!(
                (emp - want).abs() < 0.035,
                "object {o} node {k}: empirical {emp}, expected {want}"
            );
        }
    }
}

/// Lemma 2: the probability two objects are split is bounded by their
/// split indicator `z_{i,j}`.
#[test]
fn lemma2_split_probability_bound() {
    let sub = pipeline_subproblem(12);
    let out = solve_relaxation(&sub, None, &RelaxOptions::default()).unwrap();
    let trials = 4000;
    let mut rng = StdRng::seed_from_u64(2);
    let mut split_counts = vec![0u32; sub.pairs().len()];
    for _ in 0..trials {
        let placement = round_once(&out.fractional, &mut rng).expect("stochastic vertex");
        for (e, pair) in sub.pairs().iter().enumerate() {
            if placement.node_of(pair.a) != placement.node_of(pair.b) {
                split_counts[e] += 1;
            }
        }
    }
    for (e, pair) in sub.pairs().iter().enumerate() {
        let emp = f64::from(split_counts[e]) / trials as f64;
        let z = out.fractional.split_indicator(pair.a, pair.b);
        assert!(
            emp <= z + 0.035,
            "pair {e}: split rate {emp} exceeds z = {z}"
        );
    }
}

/// Lemma 2 under the parallel rounder, exact form: on two nodes the
/// rounding never splits a pair more than the LP's split indicator says —
/// and in fact the split probability is *exactly* `z_{i,j}` (with two
/// nodes, a pair splits iff the rounding threshold lands in the interval
/// of width `z` between the two objects' cumulative fractions). That
/// upgrades the usual one-sided check to a two-sided 3-sigma binomial
/// test, which we run against the indexed substream fan-out at 8 threads.
#[test]
fn lemma2_exact_on_two_nodes_parallel() {
    let mut config = PipelineConfig::new(TraceConfig::tiny(), 2);
    config.seed = 1234;
    let p = Pipeline::build(&config);
    let ranking = importance_ranking(&p.problem);
    let keep: Vec<ObjectId> = ranking.into_iter().take(10).collect();
    let sub = scope_subproblem(&p.problem, &keep, false);
    let out = solve_relaxation(&sub, None, &RelaxOptions::default()).unwrap();
    let trials = 4000usize;
    let samples = round_samples(&out.fractional, trials, 7, 8).expect("stochastic vertex");
    assert_eq!(samples.len(), trials);
    for pair in sub.pairs() {
        let z = out.fractional.split_indicator(pair.a, pair.b);
        let splits = samples
            .iter()
            .filter(|s| s.node_of(pair.a) != s.node_of(pair.b))
            .count();
        let emp = splits as f64 / trials as f64;
        let sigma = (z * (1.0 - z) / trials as f64).sqrt();
        assert!(
            (emp - z).abs() <= 3.0 * sigma + 1e-9,
            "pair ({}, {}): empirical split rate {emp} vs exact z {z} (sigma {sigma})",
            pair.a,
            pair.b
        );
    }
}

/// Lemmas 1 and 2 hold under the threaded rounder on the 3-node pipeline
/// subproblem, and the sample vector itself is thread-count invariant:
/// repetition `i` is a function of `(seed, i)` alone, so 1, 2, and 8
/// worker threads produce the identical sequence of placements.
#[test]
fn lemmas_hold_under_parallel_rounder() {
    let sub = pipeline_subproblem(12);
    let out = solve_relaxation(&sub, None, &RelaxOptions::default()).unwrap();
    let trials = 2500usize;
    let serial = round_samples(&out.fractional, trials, 9, 1).expect("stochastic vertex");
    for threads in [2usize, 8] {
        let par = round_samples(&out.fractional, trials, 9, threads).expect("stochastic vertex");
        assert_eq!(par, serial, "threads = {threads} diverged from serial");
    }

    // Lemma 1 per substream: each object's marginal matches x_{i,k}. The
    // marginal is exact (Lemma 1), so a two-sided binomial bound applies;
    // 3.5 sigma keeps the 36 simultaneous checks comfortably inside it.
    for o in sub.objects() {
        for k in 0..sub.num_nodes() {
            let want = out.fractional.fraction(o, k);
            let hits = serial.iter().filter(|s| s.node_of(o) == k).count();
            let emp = hits as f64 / trials as f64;
            let sigma = (want * (1.0 - want) / trials as f64).sqrt();
            assert!(
                (emp - want).abs() <= 3.5 * sigma + 1e-9,
                "object {o} node {k}: empirical {emp}, expected {want} (sigma {sigma})"
            );
        }
    }

    // Lemma 2, one-sided on >= 2 nodes: split rate <= z + 3 sigma.
    for pair in sub.pairs() {
        let z = out.fractional.split_indicator(pair.a, pair.b);
        let splits = serial
            .iter()
            .filter(|s| s.node_of(pair.a) != s.node_of(pair.b))
            .count();
        let emp = splits as f64 / trials as f64;
        let sigma = (z * (1.0 - z) / trials as f64).sqrt();
        assert!(
            emp <= z + 3.0 * sigma + 1e-9,
            "pair ({}, {}): split rate {emp} exceeds z {z} + 3 sigma",
            pair.a,
            pair.b
        );
    }
}

/// Theorem 2: the expected communication cost of the rounded placement
/// equals the fractional solution's objective — for the degenerate
/// LP-optimal vertex that objective is 0 and indeed no pair ever splits;
/// for the clustered vertex the empirical mean matches the reported
/// expected cost.
#[test]
fn theorem2_expected_cost() {
    let sub = pipeline_subproblem(12);

    // Degenerate LP optimum: exactly zero cost on every rounding.
    let degen = construct_optimal_vertex(&sub).unwrap();
    assert!(degen.objective.abs() < 1e-9);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..500 {
        let placement = round_once(&degen.fractional, &mut rng).expect("stochastic vertex");
        assert_eq!(placement.communication_cost(&sub), 0.0);
    }

    // Clustered vertex: empirical mean tracks the reported expectation.
    let clustered = solve_relaxation(&sub, None, &RelaxOptions::default()).unwrap();
    let trials = 4000;
    let total: f64 = (0..trials)
        .map(|_| round_once(&clustered.fractional, &mut rng).expect("stochastic vertex").communication_cost(&sub))
        .sum();
    let emp = total / f64::from(trials);
    let spread = 0.05 * (1.0 + sub.total_pair_weight());
    assert!(
        (emp - clustered.objective).abs() < spread,
        "empirical {emp} vs expected {}",
        clustered.objective
    );
}

/// Theorem 3: expected per-node loads stay within the capacities.
#[test]
fn theorem3_expected_loads() {
    let sub = pipeline_subproblem(12);
    for method in [RelaxMethod::ClusteredVertex, RelaxMethod::CombinatorialVertex] {
        let out = solve_relaxation(
            &sub,
            None,
            &RelaxOptions {
                method,
                ..RelaxOptions::default()
            },
        )
        .unwrap();
        let trials = 3000;
        let mut rng = StdRng::seed_from_u64(4);
        let mut sums = vec![0.0f64; sub.num_nodes()];
        for _ in 0..trials {
            let placement = round_once(&out.fractional, &mut rng).expect("stochastic vertex");
            for (k, load) in placement.loads(&sub).iter().enumerate() {
                sums[k] += *load as f64;
            }
        }
        for (k, sum) in sums.iter().enumerate() {
            let mean = sum / f64::from(trials);
            let cap = sub.capacity(k) as f64;
            assert!(
                mean <= cap * 1.02 + 1.0,
                "{method:?}: node {k} mean load {mean} vs capacity {cap}"
            );
        }
    }
}

/// Theorem 1 artifact: the CCA problem embeds minimum multiway cut. Build
/// the paper's reduction instance — n oversized "terminal" objects that
/// must be bijectively placed — and check the exact solver finds the
/// minimum 3-way cut.
#[test]
fn theorem1_multiway_cut_embedding() {
    // Terminals t0,t1,t2 of size 6 on 3 nodes of capacity 10 (6 > 10/2, so
    // no two terminals share a node); small objects of total size <= 4
    // place freely.
    let mut b = cca::algo::CcaProblem::builder();
    let t0 = b.add_object("t0", 6);
    let t1 = b.add_object("t1", 6);
    let t2 = b.add_object("t2", 6);
    let u = b.add_object("u", 1);
    let v = b.add_object("v", 1);
    // Edge weights of the multiway-cut instance (r = 1, w = weight).
    b.add_pair(t0, u, 1.0, 5.0).unwrap();
    b.add_pair(t1, u, 1.0, 2.0).unwrap();
    b.add_pair(t2, u, 1.0, 1.0).unwrap();
    b.add_pair(t1, v, 1.0, 4.0).unwrap();
    b.add_pair(t2, v, 1.0, 3.0).unwrap();
    b.add_pair(u, v, 1.0, 1.0).unwrap();
    let p = b.uniform_capacities(3, 10).build().unwrap();

    let (placement, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
    // Terminals end up on three distinct nodes (the capacity argument of
    // the NP-hardness proof).
    let nodes: std::collections::HashSet<_> =
        [t0, t1, t2].iter().map(|&t| placement.node_of(t)).collect();
    assert_eq!(nodes.len(), 3, "terminals must be bijective to nodes");
    // Optimal cut: u joins t0 (cut 2+1+? u-v), v joins t1 (cut 3+1) —
    // enumerate: u with t0, v with t1: cost = t1u(2)+t2u(1)+t2v(3)+uv(1) = 7;
    // u with t0, v with t2: 2+1+4+1 = 8; u,v with t0: 2+1+4+3 = 10;
    // u with t1, v with t1: 5+1+3 = 9; u t1 v t2: 5+1+4+1 = 11; ...
    assert!((cost - 7.0).abs() < 1e-9, "minimum 3-way cut is 7, got {cost}");
    assert_eq!(placement.node_of(u), placement.node_of(t0));
    assert_eq!(placement.node_of(v), placement.node_of(t1));
}

/// The relaxation methods agree with the literal Figure-4 LP on a real
/// (small) subproblem.
#[test]
fn relaxation_methods_agree_on_pipeline_subproblem() {
    let sub = pipeline_subproblem(9);
    let fig4 = cca::algo::figure4::Figure4Lp::build(&sub)
        .solve(&Default::default())
        .unwrap();
    let cp = solve_relaxation(
        &sub,
        None,
        &RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            ..RelaxOptions::default()
        },
    )
    .unwrap();
    let vx = construct_optimal_vertex(&sub).unwrap();
    assert!(cp.converged);
    assert!(
        (fig4.1 - cp.objective).abs() < 1e-5 * (1.0 + fig4.1.abs()),
        "figure4 {} vs cutting-plane {}",
        fig4.1,
        cp.objective
    );
    assert!(
        (fig4.1 - vx.objective).abs() < 1e-5 * (1.0 + fig4.1.abs()),
        "figure4 {} vs combinatorial vertex {}",
        fig4.1,
        vx.objective
    );
}
