//! Heavyweight stress tests, `#[ignore]`d by default. Run with
//! `cargo test --release -- --ignored` to exercise paper-scale inputs.

use cca::algo::{RelaxMethod, RelaxOptions, Strategy};
use cca::lp::{validate_solution, Model, Relation, SolverOptions};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::trace::TraceConfig;
use cca_rand::rngs::StdRng;
use cca_rand::{Rng, SeedableRng};

/// The full paper-scaled pipeline: 25k keywords, 200k queries, all three
/// strategies, strict ordering. Takes ~30 s in release mode.
#[test]
#[ignore = "paper-scale; run with --ignored --release"]
fn paper_scale_pipeline_ordering() {
    let mut config = PipelineConfig::new(TraceConfig::paper_scaled(), 10);
    config.seed = 1;
    let p = Pipeline::build(&config);
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
    let greedy = p.evaluate(&Strategy::Greedy, Some(1000)).unwrap();
    let lprr = p.evaluate(&Strategy::lprr(), Some(1000)).unwrap();
    assert!(lprr.replay.total_bytes < greedy.replay.total_bytes);
    assert!(greedy.replay.total_bytes < random.replay.total_bytes);
    // The paper's headline: large savings over random hashing.
    let norm = lprr.replay.total_bytes as f64 / random.replay.total_bytes as f64;
    assert!(norm < 0.55, "lprr normalised cost {norm}");
}

/// A 400-variable, 250-row random sparse LP solved by the revised simplex
/// and validated from first principles.
#[test]
#[ignore = "slow; run with --ignored --release"]
fn large_random_lp_solves_and_validates() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut m = Model::minimize();
    let vars: Vec<_> = (0..400)
        .map(|i| m.add_var(format!("x{i}"), 0.5 + rng.random::<f64>()))
        .collect();
    for r in 0..250 {
        let row = m.add_constraint(format!("r{r}"), Relation::Ge, 1.0 + rng.random::<f64>() * 3.0);
        for &v in &vars {
            if rng.random::<f64>() < 0.05 {
                m.set_coeff(row, v, 0.1 + rng.random::<f64>());
            }
        }
    }
    let sol = m.solve(&SolverOptions::default()).expect("solvable");
    assert!(sol.objective > 0.0);
    assert!(validate_solution(&m, &sol).is_empty());
}

/// The cutting-plane relaxation converges (to the degenerate 0 optimum)
/// on a real scoped subproblem when given enough rounds.
#[test]
#[ignore = "slow; run with --ignored --release"]
fn cutting_plane_converges_on_pipeline_subproblem() {
    let mut config = PipelineConfig::new(TraceConfig::small(), 6);
    config.seed = 9;
    let p = Pipeline::build(&config);
    let ranking = cca::algo::importance_ranking(&p.problem);
    let keep: Vec<_> = ranking.into_iter().take(60).collect();
    let sub = cca::algo::scope_subproblem(&p.problem, &keep, false);
    let out = cca::algo::solve_relaxation(
        &sub,
        None,
        &RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            max_rounds: 200,
            ..RelaxOptions::default()
        },
    )
    .expect("solves");
    assert!(out.converged, "rounds: {}, cuts: {}", out.rounds, out.cuts);
    assert!(out.objective.abs() < 1e-5, "objective {}", out.objective);
}

/// MD5 throughput sanity over a large buffer (streaming equals one-shot).
#[test]
#[ignore = "slow; run with --ignored --release"]
fn md5_large_buffer() {
    let data: Vec<u8> = (0..8_000_000u32).map(|i| (i % 251) as u8).collect();
    let whole = cca::hashing::md5::digest(&data);
    let mut h = cca::hashing::md5::Md5::new();
    for chunk in data.chunks(65_521) {
        h.update(chunk);
    }
    assert_eq!(h.finalize(), whole);
}
