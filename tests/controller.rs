//! Integration tests for the online re-optimization controller
//! (`cca::online` + `cca_core::controller`), covering the DESIGN.md §12
//! contract end to end: determinism across thread/shard configurations,
//! the migration-counter invariant, accumulated-loss monotonicity, and
//! fault recovery under the drifting query stream.

use cca::algo::{
    format_controller_report, format_placement, ControllerConfig, EpochOutcome, FaultPlan,
};
use cca::online::{fault_epochs, run_online, run_online_with, OnlineConfig, OnlineOutcome};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::trace::TraceConfig;

fn pipeline(nodes: usize) -> Pipeline {
    let mut config = PipelineConfig::new(TraceConfig::tiny(), nodes);
    config.seed = 2008;
    Pipeline::build(&config)
}

fn online_config(epochs: u64, drop_nodes: usize, threads: usize, shards: usize) -> OnlineConfig {
    let mut config = OnlineConfig {
        epochs,
        seed: 7,
        ..OnlineConfig::default()
    };
    config.faults = FaultPlan {
        drop_nodes,
        seed: 0xfa17,
        ..FaultPlan::default()
    };
    config.controller = ControllerConfig {
        threads,
        shards,
        ..ControllerConfig::default()
    };
    config
}

fn render(outcome: &OnlineOutcome) -> String {
    format!(
        "{}{}",
        format_controller_report(&outcome.report),
        format_placement(&outcome.problem, &outcome.placement)
    )
}

/// With no wall-clock deadline, the full run — report and final placement
/// — is byte-identical across every thread × shard configuration.
#[test]
fn report_and_placement_are_byte_identical_across_threads_and_shards() {
    let p = pipeline(4);
    let reference = render(&run_online(&p, &online_config(300, 1, 1, 1)));
    assert!(reference.contains("# cca-controller-report v1"));
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 7] {
            let got = render(&run_online(&p, &online_config(300, 1, threads, shards)));
            assert_eq!(
                got, reference,
                "threads={threads} shards={shards} diverged from the serial flat run"
            );
        }
    }
}

/// Every evaluation reaches exactly one gate verdict: migrated, rejected
/// as not worthwhile, or rejected as not robust.
#[test]
fn gate_counters_partition_the_evaluations() {
    let p = pipeline(4);
    let outcome = run_online(&p, &online_config(400, 1, 1, 0));
    let r = &outcome.report;
    assert!(r.counters_consistent(), "{}", r.summary());
    assert_eq!(
        r.evaluated,
        r.migrations + r.rejected_not_worthwhile + r.rejected_not_robust
    );
    assert_eq!(r.epochs, 400);
    assert!(r.evaluated > 0, "drift never triggered an evaluation");
    assert!(r.queries > 0);
}

/// Accumulated loss never decreases between accepted migrations and
/// resets when one is accepted, observed scope-by-scope through the
/// per-epoch callback.
#[test]
fn accumulated_loss_is_monotone_between_migrations_and_resets_on_acceptance() {
    let p = pipeline(4);
    let mut config = online_config(500, 0, 1, 0);
    // Stronger per-epoch drift so the worthwhile gate actually opens
    // within the test's horizon (σ = 0.02 stays sub-threshold on tiny).
    config.drift_sigma = 0.1;
    let mut last_loss: Vec<f64> = vec![0.0; config.controller.scope_count];
    let mut migrations = 0u64;
    let mut violations = Vec::new();
    run_online_with(&p, &config, |epoch, outcome| match outcome {
        EpochOutcome::RejectedNotWorthwhile {
            scope,
            accumulated_loss,
            ..
        } => {
            if *accumulated_loss < last_loss[*scope] {
                violations.push((epoch, *scope, last_loss[*scope], *accumulated_loss));
            }
            last_loss[*scope] = *accumulated_loss;
        }
        EpochOutcome::Migrated { scope, .. } => {
            migrations += 1;
            last_loss[*scope] = 0.0;
        }
        _ => {}
    });
    assert!(
        violations.is_empty(),
        "accumulated loss decreased without a migration: {violations:?}"
    );
    assert!(migrations > 0, "expected at least one accepted migration");
}

/// A mid-run node loss is repaired and the run ends feasible on the
/// surviving nodes, with the repair fully accounted.
#[test]
fn node_loss_mid_run_is_repaired_and_the_run_stays_feasible() {
    let p = pipeline(4);
    let outcome = run_online(&p, &online_config(300, 1, 1, 0));
    let r = &outcome.report;
    assert_eq!(r.node_losses, 1);
    assert_eq!(r.unrecovered_losses, 0);
    assert!(r.repairs >= 1);
    assert!(r.final_feasible, "placement infeasible after repair");
    assert!(r.degraded(), "a node loss must mark the run degraded");
    // The final placement really fits the surviving capacities.
    let loads = outcome.placement.loads(&outcome.problem);
    assert!(loads.iter().filter(|&&l| l > 0).count() <= 3);
}

/// Fault epochs are spread across the run, 1-based, and within range.
#[test]
fn fault_epochs_are_spread_and_in_range() {
    assert_eq!(fault_epochs(1000, 0), Vec::<u64>::new());
    assert_eq!(fault_epochs(1000, 1), vec![500]);
    assert_eq!(fault_epochs(1000, 3), vec![250, 500, 750]);
    // Degenerate short runs still schedule valid epochs.
    let tight = fault_epochs(2, 3);
    assert!(tight.iter().all(|&e| (1..=2).contains(&e)), "{tight:?}");
}
