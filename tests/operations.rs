//! Operational-scenario integration tests: node decommission, budgeted
//! migration, and persistence, all against the full pipeline.

use cca::algo::{
    drain_node, migration_bytes, read_placement, reconcile, write_placement, MigrateOptions,
    Strategy,
};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::search::{AggregationPolicy, Cluster, QueryEngine};
use cca::trace::TraceConfig;

fn pipeline(nodes: usize) -> Pipeline {
    let mut config = PipelineConfig::new(TraceConfig::tiny(), nodes);
    config.seed = 61;
    Pipeline::build(&config)
}

/// Decommissioning a node keeps the system serving with modest extra
/// traffic, and the drained node really is empty.
#[test]
fn node_decommission_end_to_end() {
    let p = pipeline(5);
    let lprr = p.place(&Strategy::lprr(), Some(80)).unwrap();
    let before = p.replay(&lprr.placement).total_bytes;

    let drained = drain_node(&p.problem, &lprr.placement, 2, &MigrateOptions::default())
        .expect("survivors have 2x-average capacity headroom");
    for o in p.problem.objects() {
        assert_ne!(drained.placement.node_of(o), 2, "{o} left on drained node");
    }
    // Replay still works; traffic should not explode (drain keeps
    // correlation clusters together).
    let after = p.replay(&drained.placement).total_bytes;
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap().replay.total_bytes;
    assert!(
        after <= random,
        "drained placement ({after}) should stay below random ({random}); before was {before}"
    );
}

/// Draining and reconciling compose: drain a node, then reconcile back
/// toward the original placement once the node "returns" — with enough
/// budget and non-positive gains enabled, the placement is restored.
#[test]
fn drain_then_restore_round_trip() {
    let p = pipeline(4);
    let original = p.place(&Strategy::Greedy, Some(60)).unwrap().placement;
    let drained = drain_node(&p.problem, &original, 1, &MigrateOptions::default())
        .expect("drainable")
        .placement;
    assert!(migration_bytes(&p.problem, &original, &drained) > 0);

    let restored = reconcile(
        &p.problem,
        &drained,
        &original,
        u64::MAX,
        &MigrateOptions {
            apply_nonpositive_gains: true,
            max_sweeps: 8,
            ..MigrateOptions::default()
        },
    );
    assert_eq!(
        restored.placement, original,
        "ample budget + nonpositive gains must restore the original placement"
    );
}

/// Placements survive a save/load round trip and replay identically.
#[test]
fn persistence_preserves_replay() {
    let p = pipeline(4);
    let report = p.place(&Strategy::lprr(), Some(80)).unwrap();
    let mut buf = Vec::new();
    write_placement(&mut buf, &p.problem, &report.placement).unwrap();
    let loaded = read_placement(buf.as_slice(), &p.problem).unwrap();
    assert_eq!(loaded, report.placement);

    let a = p.replay(&report.placement);
    let b = p.replay(&loaded);
    assert_eq!(a.total_bytes, b.total_bytes);
}

/// A saved query log replays to identical statistics after reloading.
#[test]
fn query_log_round_trip_replays_identically() {
    let p = pipeline(4);
    let text = cca::trace::format_query_log(&p.workload.queries);
    let loaded = cca::trace::read_query_log(text.as_bytes()).unwrap();

    let placement = p.place(&Strategy::Greedy, Some(60)).unwrap().placement;
    let cluster: Cluster = p.cluster_for(&placement);
    let engine = QueryEngine::new(&p.index, &cluster, AggregationPolicy::Intersection);
    assert_eq!(
        engine.replay(&p.workload.queries),
        engine.replay(&loaded)
    );
}
