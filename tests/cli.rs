//! Integration tests driving the `cca` binary end to end.

use std::process::Command;

fn cca() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cca"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = cca().args(args).output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Like [`run`], but returns the numeric exit code (the resilient `place`
/// path uses 0 = ok, 2 = degraded, 3 = infeasible).
fn run_code(args: &[&str]) -> (i32, String, String) {
    let output = cca().args(args).output().expect("binary runs");
    (
        output.status.code().expect("no signal"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage: cca"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("usage: cca"));
}

#[test]
fn bad_option_fails() {
    let (ok, _, stderr) = run(&["workload", "--bogus", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));

    let (ok, _, stderr) = run(&["workload", "--seed"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));

    let (ok, _, stderr) = run(&["workload", "--preset", "gigantic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown preset"));
}

#[test]
fn workload_reports_statistics() {
    let (ok, stdout, _) = run(&["workload", "--preset", "tiny", "--seed", "7"]);
    assert!(ok, "stdout: {stdout}");
    for needle in [
        "documents:",
        "indexed keywords:",
        "mean query length:",
        "problem pairs:",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
}

#[test]
fn evaluate_shows_all_strategies() {
    let (ok, stdout, _) = run(&[
        "evaluate", "--preset", "tiny", "--nodes", "4", "--scope", "50",
    ]);
    assert!(ok, "stdout: {stdout}");
    for needle in ["random-hash", "greedy", "lprr", "100.0%"] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
}

#[test]
fn place_save_then_replay_round_trips() {
    let dir = std::env::temp_dir().join(format!("cca-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("placement.tsv");
    let path_str = path.to_str().expect("utf-8 path");

    let (ok, stdout, stderr) = run(&[
        "place", "--preset", "tiny", "--nodes", "3", "--scope", "40", "--strategy", "greedy",
        "--out", path_str,
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("per-node loads"));
    let saved = std::fs::read_to_string(&path).expect("placement file written");
    assert!(saved.starts_with("# cca-placement v1"));

    let (ok, stdout, stderr) = run(&[
        "replay", "--preset", "tiny", "--nodes", "3", "--placement", path_str,
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("bytes moved:"));
    assert!(stdout.contains("vs random:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resilient_place_with_generous_deadline_succeeds() {
    let (code, stdout, stderr) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "60000",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("degradation ladder"));
    assert!(stdout.contains("selected: lprr"));
    assert!(stdout.contains("per-node loads"));
}

#[test]
fn resilient_place_with_zero_deadline_degrades_to_hash() {
    let (code, stdout, _) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "0",
    ]);
    assert_eq!(code, 2, "stdout: {stdout}");
    assert!(stdout.contains("selected: hash (degraded)"));
    assert!(stdout.contains("deadline exceeded"));
}

/// The determinism contract at the CLI surface: `place` prints the same
/// report (placement summary, cost, loads) for any `--threads` value.
#[test]
fn place_output_is_identical_across_thread_counts() {
    let base = [
        "place", "--preset", "tiny", "--nodes", "3", "--scope", "40", "--strategy", "lprr",
        "--seed", "11",
    ];
    let mut outputs = Vec::new();
    for threads in ["1", "2", "8"] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", threads]);
        let (code, stdout, stderr) = run_code(&args);
        assert!(
            code == 0 || code == 2,
            "threads {threads}: code {code}\nstdout: {stdout}\nstderr: {stderr}"
        );
        outputs.push((code, stdout));
    }
    let (code0, ref out0) = outputs[0];
    for (i, (code, out)) in outputs.iter().enumerate().skip(1) {
        assert_eq!(*code, code0, "exit code changed with thread count");
        assert_eq!(out, out0, "--threads {} changed the report", ["1", "2", "8"][i]);
    }
}

/// The exit-code taxonomy (0 ok / 2 degraded / 3 infeasible) is
/// unaffected by the thread count.
#[test]
fn exit_codes_hold_at_every_thread_count() {
    for threads in ["1", "2", "8"] {
        // Generous deadline: the LPRR rung wins cleanly.
        let (code, stdout, stderr) = run_code(&[
            "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "60000",
            "--threads", threads,
        ]);
        assert_eq!(code, 0, "threads {threads}\nstdout: {stdout}\nstderr: {stderr}");
        assert!(stdout.contains("selected: lprr"));

        // Expired deadline: degraded to hash, code 2, on every worker count.
        let (code, stdout, _) = run_code(&[
            "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "0",
            "--threads", threads,
        ]);
        assert_eq!(code, 2, "threads {threads}\nstdout: {stdout}");
        assert!(stdout.contains("selected: hash (degraded)"));
        assert!(stdout.contains("deadline exceeded"));

        // Starved capacities: no rung can fit the objects, so the audit
        // reports violations and the exit code is 3 — again regardless of
        // the worker count.
        let (code, stdout, _) = run_code(&[
            "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "60000",
            "--capacity-factor", "0.4", "--threads", threads,
        ]);
        assert_eq!(code, 3, "threads {threads}\nstdout: {stdout}");
        assert!(stdout.contains("VIOLATION"), "stdout: {stdout}");
    }
}

#[test]
fn capacity_factor_option_validates() {
    let (code, _, stderr) = run_code(&["place", "--preset", "tiny", "--capacity-factor", "-1"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--capacity-factor must be a positive number"));
}

#[test]
fn threads_option_rejects_zero() {
    let (code, _, stderr) = run_code(&["place", "--preset", "tiny", "--threads", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--threads must be at least 1"), "stderr: {stderr}");
}

#[test]
fn shards_option_rejects_zero() {
    let (code, _, stderr) = run_code(&["place", "--preset", "tiny", "--shards", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--shards must be at least 1"), "stderr: {stderr}");
}

/// The sharded-graph determinism contract at the CLI surface: with a
/// fixed `--shards` count the `place` report is byte-identical for any
/// `--threads` value, and `--shards 1` is byte-identical to running with
/// no sharding at all.
#[test]
fn sharded_place_is_identical_across_thread_counts_and_to_flat() {
    let base = [
        "place", "--preset", "tiny", "--nodes", "3", "--scope", "40", "--strategy", "lprr",
        "--seed", "11",
    ];
    let flat = {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", "1"]);
        run_code(&args)
    };
    assert!(flat.0 == 0 || flat.0 == 3, "flat run: code {}\n{}", flat.0, flat.1);
    // --shards 1 ≡ no flag, to the byte.
    let single = {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", "1", "--shards", "1"]);
        run_code(&args)
    };
    assert_eq!(single.0, flat.0, "--shards 1 changed the exit code");
    assert_eq!(single.1, flat.1, "--shards 1 changed the report");
    // Fixed shard count, swept thread counts: byte-identical reports —
    // and identical to the flat run (dyadic workload weights make every
    // shard reduction exact).
    for shards in ["2", "7"] {
        for threads in ["1", "2", "8"] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads, "--shards", shards]);
            let (code, stdout, stderr) = run_code(&args);
            assert_eq!(
                code, flat.0,
                "shards {shards} threads {threads}: exit code changed\nstderr: {stderr}"
            );
            assert_eq!(
                stdout, flat.1,
                "shards {shards} threads {threads}: report changed"
            );
        }
    }
}

/// The exit-code taxonomy (0 ok / 2 degraded / 3 infeasible) holds
/// under sharded evaluation.
#[test]
fn exit_codes_hold_under_sharding() {
    // Generous deadline: the LPRR rung wins cleanly.
    let (code, stdout, stderr) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "60000",
        "--threads", "2", "--shards", "2",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("selected: lprr"));

    // Expired deadline: degraded to hash, code 2.
    let (code, stdout, _) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "0",
        "--threads", "2", "--shards", "2",
    ]);
    assert_eq!(code, 2, "stdout: {stdout}");
    assert!(stdout.contains("selected: hash (degraded)"));

    // Starved capacities: infeasible everywhere, code 3.
    let (code, stdout, _) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "3", "--deadline-ms", "60000",
        "--capacity-factor", "0.4", "--threads", "2", "--shards", "2",
    ]);
    assert_eq!(code, 3, "stdout: {stdout}");
    assert!(stdout.contains("VIOLATION"), "stdout: {stdout}");
}

/// `probe` accepts `--shards` (candidate scoring runs on the sharded
/// subproblem via scope restriction) and stays deterministic.
#[test]
fn sharded_probe_matches_flat_probe() {
    let base = [
        "probe", "--preset", "tiny", "--nodes", "3", "--scope", "30", "--candidates", "4",
        "--seed", "5", "--threads", "2",
    ];
    let flat = run_code(&base);
    assert!(flat.0 == 0 || flat.0 == 3, "probe: code {}\n{}", flat.0, flat.1);
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "3"]);
    let sharded = run_code(&args);
    assert_eq!(sharded.0, flat.0, "--shards changed the probe exit code");
    assert_eq!(sharded.1, flat.1, "--shards changed the probe report");
}

#[test]
fn resilient_place_validates_rung_names() {
    let (code, _, stderr) = run_code(&[
        "place", "--preset", "tiny", "--min-strategy", "telepathy",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown min-strategy"));

    // A floor better than the start strategy is rejected.
    let (code, _, stderr) = run_code(&[
        "place", "--preset", "tiny", "--strategy", "greedy", "--min-strategy", "lprr",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("better rung"));
}

/// `probe --candidates` taxonomy: the bounds 1..=1024 are enforced at
/// parse time (exit 1, nothing built), valid widths run end to end, and
/// the 0-ok / 3-infeasible audit semantics match `place`.
#[test]
fn probe_candidates_option_validates_and_probes() {
    for bad in ["0", "1025", "-1", "many"] {
        let (code, _, stderr) = run_code(&["probe", "--preset", "tiny", "--candidates", bad]);
        assert_eq!(code, 1, "--candidates {bad} must be a usage error");
        assert!(
            stderr.contains("--candidates"),
            "--candidates {bad}: stderr: {stderr}"
        );
        assert!(
            !stderr.contains("building"),
            "--candidates {bad} must fail before the pipeline is built"
        );
    }

    // Boundary widths both run; generous capacity keeps the audit clean.
    for k in ["1", "3"] {
        let (code, stdout, stderr) = run_code(&[
            "probe", "--preset", "tiny", "--scope", "40", "--capacity-factor", "8",
            "--candidates", k,
        ]);
        assert_eq!(code, 0, "k = {k}\nstdout: {stdout}\nstderr: {stderr}");
        assert!(stdout.contains("probe bytes"), "stdout: {stdout}");
        assert!(stdout.contains("selected:   candidate"), "stdout: {stdout}");
    }

    // Tight capacities: the LP stays feasible but probe does not repair
    // its rounded candidates, so the winner fails the audit — exit 3, the
    // same taxonomy slot `place` uses for infeasible placements. (An
    // infeasible *relaxation* is an ordinary error: exit 1.)
    let (code, stdout, _) = run_code(&[
        "probe", "--preset", "tiny", "--scope", "50", "--candidates", "4",
    ]);
    assert_eq!(code, 3, "stdout: {stdout}");
    assert!(stdout.contains("VIOLATION"), "stdout: {stdout}");
    let (code, _, stderr) = run_code(&[
        "probe", "--preset", "tiny", "--scope", "40", "--capacity-factor", "0.4",
        "--candidates", "2",
    ]);
    assert_eq!(code, 1, "stderr: {stderr}");
}

/// The probed-bytes ranking is deterministic: the same seed prints the
/// same table and selects the same candidate for every thread count.
#[test]
fn probe_report_is_identical_across_thread_counts() {
    let base = [
        "probe", "--preset", "tiny", "--scope", "40", "--capacity-factor", "8",
        "--candidates", "4", "--seed", "11",
    ];
    let mut outputs = Vec::new();
    for threads in ["1", "2", "8"] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", threads]);
        let (code, stdout, stderr) = run_code(&args);
        assert_eq!(code, 0, "threads {threads}\nstdout: {stdout}\nstderr: {stderr}");
        outputs.push(stdout);
    }
    for (i, out) in outputs.iter().enumerate().skip(1) {
        assert_eq!(
            out, &outputs[0],
            "--threads {} changed the probe report",
            ["1", "2", "8"][i]
        );
    }
}

#[test]
fn export_lp_emits_parseable_lp() {
    let (ok, stdout, _) = run(&[
        "export-lp", "--preset", "tiny", "--nodes", "2", "--scope", "6",
    ]);
    assert!(ok);
    assert!(stdout.contains("Minimize"));
    assert!(stdout.contains("Subject To"));
    // The emitted text must round-trip through our own parser.
    let model = cca::lp::parse_lp(&stdout).expect("parseable LP");
    assert!(model.num_vars() > 0);
    assert!(model.num_constraints() > 0);
}

/// `run` exit taxonomy: 0 for a clean drift-tracking run, 2 once chaos
/// drops a node (repaired, but the run is marked degraded).
#[test]
fn online_run_exit_taxonomy_and_report_shape() {
    let (code, stdout, stderr) = run_code(&[
        "run", "--preset", "tiny", "--nodes", "4", "--epochs", "60", "--seed", "11",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.starts_with("# cca-controller-report v1"), "stdout: {stdout}");
    for needle in [
        "epochs\t60",
        "evaluated\t",
        "migrations\t",
        "rejected_not_worthwhile\t",
        "rejected_not_robust\t",
        "final_feasible\ttrue",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }

    let (code, stdout, stderr) = run_code(&[
        "run", "--preset", "tiny", "--nodes", "4", "--epochs", "60", "--seed", "11",
        "--drop-nodes", "1",
    ]);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("node_losses\t1"), "stdout: {stdout}");
    assert!(stdout.contains("unrecovered_losses\t0"), "stdout: {stdout}");
}

/// The controller report is byte-identical across thread and shard
/// counts — the CLI surface of the §12 determinism contract.
#[test]
fn online_run_is_byte_identical_across_threads_and_shards() {
    let base = [
        "run", "--preset", "tiny", "--nodes", "4", "--epochs", "80", "--seed", "7",
        "--drop-nodes", "1",
    ];
    let reference = {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", "1"]);
        run_code(&args)
    };
    assert_eq!(reference.0, 2, "reference run: {}", reference.1);
    for threads in ["2", "8"] {
        for shards in ["1", "2", "7"] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads, "--shards", shards]);
            let (code, stdout, stderr) = run_code(&args);
            assert_eq!(code, reference.0, "threads {threads} shards {shards}: {stderr}");
            assert_eq!(
                stdout, reference.1,
                "threads {threads} shards {shards} changed the report"
            );
        }
    }
}

/// `run --out` persists exactly the bytes printed to stdout, and the file
/// round-trips through the report reader.
#[test]
fn online_run_saves_readable_report() {
    let dir = std::env::temp_dir().join(format!("cca-cli-run-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("report.tsv");
    let path_str = path.to_str().expect("utf-8 path");

    let (code, stdout, stderr) = run_code(&[
        "run", "--preset", "tiny", "--nodes", "4", "--epochs", "40", "--seed", "3",
        "--out", path_str,
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let saved = std::fs::read_to_string(&path).expect("report written");
    assert_eq!(saved, stdout, "--out and stdout disagree");
    let report = cca::algo::read_controller_report(saved.as_bytes()).expect("parseable report");
    assert_eq!(report.epochs, 40);
    assert!(report.counters_consistent());

    std::fs::remove_dir_all(&dir).ok();
}

/// `serve` follows the workspace exit taxonomy: 0 = every query served
/// in budget, 2 = degraded/shed queries present (with the shed counters
/// accounting for them — never a hang or panic), 3 = infeasible placement.
#[test]
fn serve_exit_taxonomy_and_report_shape() {
    let base = ["serve", "--preset", "tiny", "--nodes", "4", "--seed", "11", "--queries", "400"];
    let (code, stdout, stderr) = run_code(&base);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.starts_with("# cca-serving-report v1"), "stdout: {stdout}");
    for needle in [
        "queries\t400",
        "served\t400",
        "shed_admission\t0",
        "shed_overload\t0",
        "shed_deadline\t0",
        "digest\t",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
    assert!(stderr.contains("queries/s"), "stderr: {stderr}");

    // A zero deadline is the tightest budget: every query sheds at
    // admission, all of them accounted, and the exit code says degraded.
    let mut args = base.to_vec();
    args.extend(["--deadline-ms", "0"]);
    let (code, stdout, stderr) = run_code(&args);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("served\t0"), "stdout: {stdout}");
    assert!(stdout.contains("shed_admission\t400"), "stdout: {stdout}");

    // An infeasible placement trumps the serving outcome.
    let mut args = base.to_vec();
    args.extend(["--capacity-factor", "0.4"]);
    let (code, _, stderr) = run_code(&args);
    assert_eq!(code, 3, "stderr: {stderr}");
}

/// A tight-but-nonzero deadline on the default workload sheds the
/// heavy tail while serving the rest — a genuinely mixed report, still
/// exiting 2 with every query accounted.
#[test]
fn serve_tight_deadline_sheds_heavy_tail() {
    let (code, stdout, stderr) = run_code(&[
        "serve", "--preset", "small", "--seed", "11",
        "--queries", "4000", "--deadline-ms", "1",
    ]);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    let field = |key: &str| -> u64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}\t")))
            .unwrap_or_else(|| panic!("missing {key} in {stdout}"))
            .parse()
            .expect("numeric field")
    };
    let (served, degraded, shed) = (field("served"), field("degraded"), field("shed_admission"));
    assert!(served > 0, "some queries must fit the budget: {stdout}");
    assert!(degraded + shed > 0, "the tail must exceed 1ms: {stdout}");
    assert_eq!(
        served + degraded + shed + field("shed_overload") + field("shed_deadline"),
        field("queries"),
        "shed queries must be accounted: {stdout}"
    );
}

/// The serving report is byte-identical across thread, shard, and
/// inflight counts — the CLI surface of the §13 determinism contract.
#[test]
fn serve_report_is_byte_identical_across_threads_shards_inflight() {
    let base = [
        "serve", "--preset", "tiny", "--nodes", "4", "--seed", "7",
        "--queries", "500", "--deadline-ms", "1",
    ];
    let reference = {
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", "1", "--inflight", "1"]);
        run_code(&args)
    };
    assert!(
        reference.1.starts_with("# cca-serving-report v1"),
        "reference run: {}",
        reference.1
    );
    for threads in ["2", "8"] {
        for shards in ["1", "2", "7"] {
            for inflight in ["1", "64"] {
                let mut args: Vec<&str> = base.to_vec();
                args.extend([
                    "--threads", threads, "--shards", shards, "--inflight", inflight,
                ]);
                let (code, stdout, stderr) = run_code(&args);
                assert_eq!(
                    code, reference.0,
                    "threads {threads} shards {shards} inflight {inflight}: {stderr}"
                );
                assert_eq!(
                    stdout, reference.1,
                    "threads {threads} shards {shards} inflight {inflight} changed the report"
                );
            }
        }
    }
}

/// `serve --out` persists exactly the bytes printed to stdout, and the
/// file round-trips through the serving-report reader.
#[test]
fn serve_saves_readable_report() {
    let dir = std::env::temp_dir().join(format!("cca-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("serving.tsv");
    let path_str = path.to_str().expect("utf-8 path");

    let (code, stdout, stderr) = run_code(&[
        "serve", "--preset", "tiny", "--nodes", "4", "--seed", "3",
        "--queries", "300", "--out", path_str,
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let saved = std::fs::read_to_string(&path).expect("report written");
    assert_eq!(saved, stdout, "--out and stdout disagree");
    let report = cca::algo::read_serving_report(saved.as_bytes()).expect("parseable report");
    assert_eq!(report.queries, 300);
    assert!(report.counters_consistent());

    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate counts are rejected at parse time with a uniform message,
/// before any pipeline work starts.
#[test]
fn count_options_reject_zero_uniformly() {
    for (cmd, flag) in [
        ("run", "--epochs"),
        ("run", "--queries-per-epoch"),
        ("run", "--threads"),
        ("run", "--shards"),
        ("run", "--drop-nodes"),
        ("place", "--nodes"),
        ("probe", "--candidates"),
        ("serve", "--queries"),
        ("serve", "--inflight"),
    ] {
        // --drop-nodes 0 is legal (chaos off); everything else must fail.
        let (code, _, stderr) = run_code(&[
            cmd, "--preset", "tiny", "--epochs", "30", flag, "0",
        ]);
        if flag == "--drop-nodes" {
            assert_eq!(code, 0, "{cmd} {flag} 0 should be a clean run: {stderr}");
            continue;
        }
        assert_eq!(code, 1, "{cmd} {flag} 0 must be a usage error");
        assert!(
            stderr.contains(&format!("{flag} must be at least 1")),
            "{cmd} {flag}: stderr: {stderr}"
        );
        // Non-numeric input fails through the same helper.
        let (code, _, stderr) = run_code(&[cmd, "--preset", "tiny", flag, "soon"]);
        assert_eq!(code, 1, "{cmd} {flag} soon must be a usage error");
        assert!(stderr.contains(flag), "{cmd} {flag}: stderr: {stderr}");
    }

    let (code, _, stderr) = run_code(&[
        "run", "--preset", "tiny", "--drift-sigma", "-0.5",
    ]);
    assert_eq!(code, 1);
    assert!(
        stderr.contains("--drift-sigma must be a finite non-negative number"),
        "stderr: {stderr}"
    );
}

#[test]
fn workload_saves_readable_query_log() {
    let dir = std::env::temp_dir().join(format!("cca-cli-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("queries.log");
    let path_str = path.to_str().expect("utf-8 path");

    let (ok, _, stderr) = run(&["workload", "--preset", "tiny", "--out", path_str]);
    assert!(ok, "stderr: {stderr}");
    let file = std::fs::File::open(&path).expect("log written");
    let log = cca::trace::read_query_log(file).expect("parseable log");
    assert!(!log.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

/// The pinned `live` replay scenario: a placement solved for the warm
/// ("January") workload, a regime shift applied before epoch 1, then a
/// stationary replay. The controller must stage a migration, pace it
/// under the per-epoch byte budget, and the post-migration window must
/// ship strictly fewer bytes per query — the tentpole headline, driven
/// end to end through the binary.
const LIVE_REPLAY: [&str; 19] = [
    "live", "--preset", "tiny", "--nodes", "4", "--seed", "42",
    "--epochs", "80", "--queries-per-epoch", "256",
    "--drift-sigma", "0.25", "--drift-epochs", "0",
    "--warm-drift", "24", "--migration-budget", "4096",
];

#[test]
fn live_replay_migrates_under_budget_and_improves() {
    let (code, stdout, stderr) = run_code(&LIVE_REPLAY);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.starts_with("# cca-live-report v1"), "stdout: {stdout}");
    let report = cca::algo::read_live_report(stdout.as_bytes()).expect("parseable report");
    assert!(report.counters_consistent(), "counters: {stdout}");
    assert!(report.migrations >= 1, "the regime shift must trigger a migration: {stdout}");
    assert!(report.within_budget(), "pacing contract: {stdout}");
    assert!(
        report.improved(),
        "post-migration bytes/query must beat pre-migration: {stdout}"
    );
    assert!(stderr.contains("pre-migration ->"), "stderr summary: {stderr}");
}

/// `live` follows the same exit taxonomy as `serve`: 2 when any query
/// was degraded or shed (here: a zero deadline sheds everything at
/// admission, still fully accounted), 3 when the placement is
/// infeasible.
#[test]
fn live_exit_taxonomy() {
    let base = [
        "live", "--preset", "tiny", "--nodes", "4", "--seed", "42",
        "--epochs", "10", "--queries-per-epoch", "64",
    ];
    let mut args = base.to_vec();
    args.extend(["--deadline-ms", "0"]);
    let (code, stdout, stderr) = run_code(&args);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    let report = cca::algo::read_live_report(stdout.as_bytes()).expect("parseable report");
    assert_eq!(report.served, 0, "zero deadline must shed everything");
    assert_eq!(report.shed_admission, report.queries);
    assert!(report.counters_consistent());

    let mut args = base.to_vec();
    args.extend(["--capacity-factor", "0.4"]);
    let (code, _, stderr) = run_code(&args);
    assert_eq!(code, 3, "stderr: {stderr}");
}

/// The live report is byte-identical across thread, shard, and inflight
/// counts — the §14 determinism contract surfaced through the CLI, with
/// migration slices interleaved mid-run.
#[test]
fn live_report_is_byte_identical_across_threads_shards_inflight() {
    let reference = {
        let mut args: Vec<&str> = LIVE_REPLAY.to_vec();
        args.extend(["--threads", "1", "--inflight", "1"]);
        run_code(&args)
    };
    assert!(
        reference.1.starts_with("# cca-live-report v1"),
        "reference run: {}",
        reference.1
    );
    for threads in ["2", "8"] {
        for shards in ["1", "2", "7"] {
            for inflight in ["1", "64"] {
                let mut args: Vec<&str> = LIVE_REPLAY.to_vec();
                args.extend([
                    "--threads", threads, "--shards", shards, "--inflight", inflight,
                ]);
                let (code, stdout, stderr) = run_code(&args);
                assert_eq!(
                    code, reference.0,
                    "threads {threads} shards {shards} inflight {inflight}: {stderr}"
                );
                assert_eq!(
                    stdout, reference.1,
                    "threads {threads} shards {shards} inflight {inflight} changed the report"
                );
            }
        }
    }
}

/// `live --out` persists exactly the bytes printed to stdout, and the
/// file round-trips through the live-report reader.
#[test]
fn live_saves_readable_report() {
    let dir = std::env::temp_dir().join(format!("cca-cli-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("live.tsv");
    let path_str = path.to_str().expect("utf-8 path");

    let mut args: Vec<&str> = LIVE_REPLAY.to_vec();
    args.extend(["--out", path_str]);
    let (code, stdout, stderr) = run_code(&args);
    assert_eq!(code, 0, "stderr: {stderr}");
    let saved = std::fs::read_to_string(&path).expect("report written");
    assert_eq!(saved, stdout, "--out and stdout disagree");
    let report = cca::algo::read_live_report(saved.as_bytes()).expect("parseable report");
    assert_eq!(report.epochs, 80);
    assert!(report.counters_consistent());

    std::fs::remove_dir_all(&dir).ok();
}

/// The live-only flags reject malformed input through the same uniform
/// usage errors as the rest of the surface.
#[test]
fn live_flags_reject_bad_input() {
    let (code, _, stderr) = run_code(&["live", "--preset", "tiny", "--migration-budget", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--migration-budget must be at least 1"), "stderr: {stderr}");

    let (code, _, stderr) = run_code(&["live", "--preset", "tiny", "--drift-epochs", "soon"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--drift-epochs"), "stderr: {stderr}");

    let (code, _, stderr) = run_code(&["live", "--preset", "tiny", "--warm-drift", "soon"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--warm-drift"), "stderr: {stderr}");
}

// ---------------------------------------------------------------------
// Replica flags (`--replicas` / `--domains`, DESIGN.md §15).
// ---------------------------------------------------------------------

/// `--replicas 0` dies at parse time through the shared count layer,
/// with the uniform "must be at least 1" message — on every command
/// that accepts the flag.
#[test]
fn replicas_zero_rejected_at_parse_time() {
    for cmd in ["place", "probe", "serve", "run", "live"] {
        let (code, _, stderr) = run_code(&[cmd, "--preset", "tiny", "--replicas", "0"]);
        assert_eq!(code, 1, "{cmd}: wrong exit code");
        assert!(
            stderr.contains("--replicas must be at least 1"),
            "{cmd} stderr: {stderr}"
        );
    }
}

/// More replicas than leaf domains is unsatisfiable (the spread
/// invariant needs one distinct leaf per copy): typed error, usage exit,
/// before any pipeline work — on every command that accepts the flags.
#[test]
fn replicas_exceeding_domains_rejected_everywhere() {
    for cmd in ["place", "probe", "serve", "run", "live"] {
        let (code, _, stderr) = run_code(&[
            cmd, "--preset", "tiny", "--nodes", "4", "--replicas", "3", "--domains", "2",
        ]);
        assert_eq!(code, 1, "{cmd}: wrong exit code");
        assert!(
            stderr.contains("cannot spread 3 replicas across 2 leaf domains"),
            "{cmd} stderr: {stderr}"
        );
    }
}

/// Malformed `--domains` specs fail with the parse error, uniformly.
#[test]
fn domains_flag_rejects_bad_specs() {
    // Not a spec at all.
    let (code, _, stderr) =
        run_code(&["place", "--preset", "tiny", "--nodes", "4", "--domains", "many"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--domains"), "stderr: {stderr}");

    // More leaf domains than nodes.
    let (code, _, stderr) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "4", "--domains", "5x2", "--replicas", "2",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--domains"), "stderr: {stderr}");

    // Zero domains.
    let (code, _, stderr) =
        run_code(&["serve", "--preset", "tiny", "--nodes", "4", "--domains", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--domains"), "stderr: {stderr}");
}

/// The r=1 equivalence contract at the CLI surface: `--replicas 1
/// --domains flat` is the default, so spelling it out must not change a
/// byte of output anywhere.
#[test]
fn replicas_one_flat_tree_is_byte_identical_to_default() {
    let base = [
        "place", "--preset", "tiny", "--nodes", "3", "--scope", "40",
        "--strategy", "greedy", "--seed", "7",
    ];
    let reference = run_code(&base);
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--replicas", "1", "--domains", "flat"]);
    let explicit = run_code(&args);
    assert_eq!(explicit.0, reference.0, "exit code changed");
    assert_eq!(explicit.1, reference.1, "--replicas 1 --domains flat changed stdout");
}

/// `place --replicas 2` reports the replica spread and persists a
/// v2 placement file that the reader round-trips.
#[test]
fn place_replicated_saves_v2_placement() {
    let dir = std::env::temp_dir().join(format!("cca-cli-replica-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("replicas.tsv");
    let path_str = path.to_str().expect("utf-8 path");

    let (code, stdout, stderr) = run_code(&[
        "place", "--preset", "tiny", "--nodes", "4", "--scope", "40",
        "--strategy", "greedy", "--replicas", "2", "--domains", "2",
        "--out", path_str,
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("replicated x2"), "stdout: {stdout}");
    assert!(stdout.contains("spread valid: true"), "stdout: {stdout}");
    assert!(stdout.contains("copy-inclusive loads"), "stdout: {stdout}");
    let saved = std::fs::read_to_string(&path).expect("placement file written");
    assert!(
        saved.starts_with("# cca-placement v2"),
        "replicated placements must use the v2 format: {}",
        saved.lines().next().unwrap_or("")
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// `serve --replicas 2` runs the replicated read path end to end: the
/// stdout report keeps its shape and counters, the replica summary goes
/// to stderr only.
#[test]
fn serve_replicated_reports_consistently() {
    let (code, stdout, stderr) = run_code(&[
        "serve", "--preset", "tiny", "--nodes", "4", "--seed", "11",
        "--queries", "200", "--replicas", "2", "--domains", "2",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let report = cca::algo::read_serving_report(stdout.as_bytes()).expect("parseable report");
    assert_eq!(report.queries, 200);
    assert!(report.counters_consistent());
    assert!(
        stderr.contains("replicating 2 copies across 2 leaf domains"),
        "stderr: {stderr}"
    );
}
