//! Serving-front battery (DESIGN.md §13): batched admission must be
//! observationally identical to serial per-query execution, byte for
//! byte, across every admission-window size, thread count, and shard
//! count — and every offered query must be accounted exactly once.
//!
//! The reference model is deliberately simple: admission is a pure
//! per-query decision (estimate vs budget), execution is
//! [`QueryEngine::execute`], and grading is `service_ns` vs budget. The
//! executor may batch, reorder, and parallelize however it likes, but
//! its per-query [`Response`]s must equal the reference exactly.

use cca::hashing::md5;
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::search::QueryEngine;
use cca::serve::{serve, service_ns, Response, ResponseStatus, ServeConfig};
use cca::trace::{Query, TraceConfig};
use cca_check::{prop_assert, prop_assert_eq, Checker, Rng, SeedableRng, Shrink, StdRng};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/serving_properties.regressions");

/// The ISSUE's required serving matrix.
const INFLIGHTS: [usize; 3] = [1, 7, 64];
const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 3] = [1, 2, 7];

fn tiny_pipeline(shards: Option<usize>) -> Pipeline {
    let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 4);
    cfg.seed = 9;
    let mut p = Pipeline::build(&cfg);
    if let Some(s) = shards {
        p.problem.set_sharding(s, 2);
    }
    p
}

fn stream(p: &Pipeline, seed: u64, n: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    p.workload.model.sample_log(n, &mut rng).queries
}

fn pages_digest(pages: &[cca::hashing::PageId]) -> [u8; 16] {
    let mut bytes = Vec::with_capacity(pages.len() * 8);
    for p in pages {
        bytes.extend_from_slice(&p.0.to_le_bytes());
    }
    md5::digest(&bytes)
}

/// The serial reference: what the executor must answer for query `i`,
/// derived without any batching machinery. Admission is per-query
/// (estimate vs budget), so the expected response stream is independent
/// of the window size by construction.
fn expected_response(
    engine: &QueryEngine,
    i: usize,
    q: &Query,
    budget_ns: Option<u64>,
) -> Response {
    let est_bytes = engine.model_probe(q);
    let est_ns = service_ns(q.words.len(), est_bytes);
    if let Some(budget) = budget_ns {
        if est_ns > budget {
            return Response {
                index: i,
                status: ResponseStatus::ShedAdmission,
                bytes: est_bytes,
                latency_ns: est_ns,
                pages: 0,
                pages_digest: md5::digest(b""),
            };
        }
    }
    let r = engine.execute(q);
    let latency_ns = service_ns(q.words.len(), r.comm_bytes);
    let status = match budget_ns {
        Some(b) if latency_ns > b => ResponseStatus::Degraded,
        _ => ResponseStatus::Served,
    };
    Response {
        index: i,
        status,
        bytes: r.comm_bytes,
        latency_ns,
        pages: r.pages.len() as u64,
        pages_digest: pages_digest(&r.pages),
    }
}

/// Shrinkable serving scenario: a fresh query stream plus a budget
/// regime (0 = no budget, 1 = zero budget, n ≥ 2 = (n−1) ms).
#[derive(Debug, Clone)]
struct ServeCase {
    stream_seed: u64,
    queries: usize,
    budget_code: u8,
}

impl ServeCase {
    fn deadline_ms(&self) -> Option<u64> {
        match self.budget_code {
            0 => None,
            code => Some(u64::from(code) - 1),
        }
    }
}

impl Shrink for ServeCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for queries in self.queries.shrink() {
            if queries >= 1 {
                out.push(ServeCase {
                    queries,
                    ..self.clone()
                });
            }
        }
        for budget_code in self.budget_code.shrink() {
            out.push(ServeCase {
                budget_code,
                ..self.clone()
            });
        }
        for stream_seed in self.stream_seed.shrink() {
            out.push(ServeCase {
                stream_seed,
                ..self.clone()
            });
        }
        out
    }
}

fn serve_case(rng: &mut StdRng) -> ServeCase {
    ServeCase {
        stream_seed: rng.random_range(0..1_000_000),
        queries: rng.random_range(1usize..=60),
        budget_code: rng.random_range(0u8..=3),
    }
}

/// Batched admission answers every query byte-identically to the serial
/// reference — responses, statuses, page digests and the whole report —
/// for every inflight × threads combination, with the counters
/// partitioning the offered stream exactly.
#[test]
fn batched_admission_matches_serial_execution() {
    let p = tiny_pipeline(None);
    let placement = cca::algo::greedy_placement(&p.problem);
    let cluster = p.cluster_for(&placement);
    Checker::new("batched_admission_matches_serial_execution")
        .cases(48)
        .regressions(REGRESSIONS)
        .run(serve_case, |c| {
            let queries = stream(&p, c.stream_seed, c.queries);
            let budget = c.deadline_ms().map(|ms| ms * 1_000_000);
            let engine = QueryEngine::new(&p.index, &cluster, p.config().aggregation);
            let expected: Vec<Response> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| expected_response(&engine, i, q, budget))
                .collect();
            let mut reference_report = None;
            for inflight in INFLIGHTS {
                for threads in THREADS {
                    let out = serve(
                        &p.index,
                        &cluster,
                        p.config().aggregation,
                        &queries,
                        &ServeConfig {
                            inflight,
                            threads,
                            deadline_ms: c.deadline_ms(),
                            burst: None,
                            overhead_ns: 0,
                        },
                    );
                    prop_assert!(
                        out.report.counters_consistent(),
                        "counters inconsistent at inflight {inflight} threads {threads}"
                    );
                    prop_assert_eq!(
                        out.responses.len(),
                        queries.len(),
                        "dropped responses at inflight {inflight} threads {threads}"
                    );
                    for (got, want) in out.responses.iter().zip(&expected) {
                        prop_assert_eq!(
                            got,
                            want,
                            "response diverged at inflight {inflight} threads {threads}"
                        );
                    }
                    match &reference_report {
                        None => reference_report = Some(out.report),
                        Some(r) => prop_assert_eq!(
                            &out.report,
                            r,
                            "report changed at inflight {inflight} threads {threads}"
                        ),
                    }
                }
            }
            Ok(())
        });
}

/// The persisted report is byte-identical across the full
/// inflight × threads × shards matrix (sharding enters through the
/// placement solve; the dyadic workload guarantees bit-equal greedy
/// placements, and serving must preserve that equality to the report
/// byte).
#[test]
fn serving_report_is_byte_identical_across_the_matrix() {
    let mut reference: Option<String> = None;
    for shards in SHARDS {
        let p = tiny_pipeline(Some(shards));
        let placement = cca::algo::greedy_placement(&p.problem);
        let cluster = p.cluster_for(&placement);
        let queries = stream(&p, 0x5e12_7e00, 600);
        for inflight in INFLIGHTS {
            for threads in THREADS {
                let out = serve(
                    &p.index,
                    &cluster,
                    p.config().aggregation,
                    &queries,
                    &ServeConfig {
                        inflight,
                        threads,
                        deadline_ms: Some(1),
                        burst: None,
                        overhead_ns: 0,
                    },
                );
                let text = cca::algo::format_serving_report(&out.report);
                match &reference {
                    None => reference = Some(text),
                    Some(r) => assert_eq!(
                        &text, r,
                        "report changed at shards {shards} inflight {inflight} threads {threads}"
                    ),
                }
            }
        }
    }
}

/// Overload accounting: offering 10× the bounded queue's capacity in one
/// burst sheds most arrivals but drops none silently — every offered
/// query is answered, and served + shed partition the stream exactly.
#[test]
fn overload_sheds_loudly_never_silently() {
    let p = tiny_pipeline(None);
    let placement = cca::algo::greedy_placement(&p.problem);
    let cluster = p.cluster_for(&placement);
    let config = ServeConfig {
        inflight: 4,
        threads: 2,
        deadline_ms: None,
        burst: Some(10 * ServeConfig {
            inflight: 4,
            ..ServeConfig::default()
        }
        .queue_capacity()),
        overhead_ns: 0,
    };
    let offered = config.burst.unwrap();
    let queries = stream(&p, 77, offered);
    let out = serve(&p.index, &cluster, p.config().aggregation, &queries, &config);

    assert!(out.report.counters_consistent());
    assert_eq!(out.responses.len(), offered, "every offered query answered");
    assert_eq!(out.report.queries, offered as u64);
    assert!(out.report.shed_overload > 0, "10x capacity must overflow");
    assert_eq!(
        out.report.served + out.report.degraded + out.report.shed_overload,
        offered as u64,
        "served + shed must partition the offered stream"
    );
    // No index is answered twice or skipped.
    for (i, r) in out.responses.iter().enumerate() {
        assert_eq!(r.index, i);
    }
    // The executed subset still matches serial execution exactly.
    let engine = QueryEngine::new(&p.index, &cluster, p.config().aggregation);
    for r in out.responses.iter().filter(|r| r.status.executed()) {
        let serial = engine.execute(&queries[r.index]);
        assert_eq!(r.bytes, serial.comm_bytes, "query {}", r.index);
        assert_eq!(r.pages_digest, pages_digest(&serial.pages), "query {}", r.index);
    }
}

/// A trickle burst (smaller than the window) through the open loop sheds
/// only once the queue genuinely fills, and the report stays consistent.
#[test]
fn trickle_burst_accounts_exactly() {
    let p = tiny_pipeline(None);
    let placement = cca::algo::greedy_placement(&p.problem);
    let cluster = p.cluster_for(&placement);
    let queries = stream(&p, 78, 64);
    let out = serve(
        &p.index,
        &cluster,
        p.config().aggregation,
        &queries,
        &ServeConfig {
            inflight: 4,
            threads: 1,
            deadline_ms: None,
            burst: Some(3),
            overhead_ns: 0,
        },
    );
    assert!(out.report.counters_consistent());
    assert_eq!(out.responses.len(), 64);
    assert_eq!(
        out.report.served + out.report.degraded + out.report.shed_overload,
        64
    );
}

/// Golden pin of the full serving report for a fixed seed: counters,
/// quantiles, digest and every histogram bucket. Any change to the
/// virtual-time model, the admission rule, the digest format, or the
/// persisted layout must show up here and be re-pinned deliberately.
#[test]
fn golden_serving_report_round_trips() {
    let p = tiny_pipeline(None);
    let placement = cca::algo::greedy_placement(&p.problem);
    let cluster = p.cluster_for(&placement);
    let queries = stream(&p, 0x5e12_7e00, 400);
    let out = serve(
        &p.index,
        &cluster,
        p.config().aggregation,
        &queries,
        &ServeConfig {
            inflight: 16,
            threads: 2,
            deadline_ms: Some(1),
            burst: None,
            overhead_ns: 0,
        },
    );
    let text = cca::algo::format_serving_report(&out.report);
    let expected = "# cca-serving-report v1\n\
        queries\t400\n\
        served\t400\n\
        degraded\t0\n\
        shed_admission\t0\n\
        shed_overload\t0\n\
        shed_deadline\t0\n\
        executed_bytes\t9288\n\
        estimated_bytes\t0\n\
        p50_ns\t65535\n\
        p95_ns\t262143\n\
        p99_ns\t524287\n\
        digest\tb8eeaf2aa937b0b351101ce7dc36e65c\n\
        bucket\t15\t190\n\
        bucket\t16\t121\n\
        bucket\t17\t63\n\
        bucket\t18\t18\n\
        bucket\t19\t7\n\
        bucket\t20\t1\n";
    assert_eq!(text, expected, "golden serving report drifted:\n{text}");
    // And the pinned bytes round-trip through the persistence layer.
    let parsed = cca::algo::read_serving_report(text.as_bytes()).expect("parseable report");
    assert_eq!(parsed, out.report);
    assert!(parsed.counters_consistent());
}
