//! Live-runtime battery (DESIGN.md §14): whatever the scenario — drift
//! or none, budget large or tiny, deadlines tight or absent — the epoch
//! loop must (a) never ship more migration bytes in one epoch than the
//! configured budget, (b) account every offered query exactly once in
//! the served/degraded/shed counters, per epoch and in aggregate, and
//! (c) produce a report that round-trips bit-exactly through the v1
//! text format. Failures shrink to a minimal scenario and are pinned in
//! `live_properties.regressions`.

use cca::algo::controller::ControllerConfig;
use cca::algo::{format_live_report, read_live_report};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::runtime::{run_live_with, LiveConfig};
use cca::trace::TraceConfig;
use cca_check::{prop_assert, prop_assert_eq, Checker, Rng, Shrink, StdRng};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/live_properties.regressions");

/// Shrinkable live scenario. Codes keep every field an integer so the
/// shrinker walks toward the degenerate corner (1 epoch, 1 query, no
/// drift, no deadline) instead of bisecting floats.
#[derive(Debug, Clone)]
struct LiveCase {
    epochs: u64,
    queries_per_epoch: usize,
    budget: u64,
    /// 0 = no drift, 1 = σ 0.05, 2 = σ 0.25 (regime-shift scale).
    sigma_code: u8,
    warm_drift_steps: u64,
    seed: u64,
    /// 0 = no deadline, 1 = 0 ms (shed everything), 2 = 1 ms.
    deadline_code: u8,
}

impl LiveCase {
    fn sigma(&self) -> f64 {
        match self.sigma_code {
            0 => 0.0,
            1 => 0.05,
            _ => 0.25,
        }
    }

    fn deadline_ms(&self) -> Option<u64> {
        match self.deadline_code {
            0 => None,
            code => Some(u64::from(code) - 1),
        }
    }
}

impl Shrink for LiveCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for epochs in self.epochs.shrink() {
            if epochs >= 1 {
                out.push(LiveCase {
                    epochs,
                    ..self.clone()
                });
            }
        }
        for queries_per_epoch in self.queries_per_epoch.shrink() {
            if queries_per_epoch >= 1 {
                out.push(LiveCase {
                    queries_per_epoch,
                    ..self.clone()
                });
            }
        }
        for budget in self.budget.shrink() {
            if budget >= 1 {
                out.push(LiveCase {
                    budget,
                    ..self.clone()
                });
            }
        }
        for sigma_code in self.sigma_code.shrink() {
            out.push(LiveCase {
                sigma_code,
                ..self.clone()
            });
        }
        for warm_drift_steps in self.warm_drift_steps.shrink() {
            out.push(LiveCase {
                warm_drift_steps,
                ..self.clone()
            });
        }
        for deadline_code in self.deadline_code.shrink() {
            out.push(LiveCase {
                deadline_code,
                ..self.clone()
            });
        }
        for seed in self.seed.shrink() {
            out.push(LiveCase {
                seed,
                ..self.clone()
            });
        }
        out
    }
}

fn live_case(rng: &mut StdRng) -> LiveCase {
    LiveCase {
        epochs: rng.random_range(1u64..=20),
        queries_per_epoch: rng.random_range(1usize..=48),
        // Small budgets force multi-epoch pacing; large ones finish a
        // staged migration in one slice. Both sides of the gate matter.
        budget: rng.random_range(1u64..=8192),
        sigma_code: rng.random_range(0u8..=2),
        warm_drift_steps: rng.random_range(0u64..=16),
        seed: rng.random_range(0u64..1_000_000),
        deadline_code: rng.random_range(0u8..=2),
    }
}

fn tiny_pipeline() -> Pipeline {
    let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 4);
    cfg.seed = 9;
    Pipeline::build(&cfg)
}

/// The live pacing and accounting contract, over randomized scenarios:
/// every epoch ships at most `migration_budget` migration bytes, every
/// offered query lands in exactly one of served / degraded /
/// shed_admission / shed_overload / shed_deadline (per epoch and in the
/// aggregate report), the per-epoch records reconcile exactly with the
/// report's migration totals, and the report survives a text round
/// trip.
#[test]
fn live_pacing_and_accounting_hold_for_every_scenario() {
    let p = tiny_pipeline();
    Checker::new("live_pacing_and_accounting_hold_for_every_scenario")
        .cases(32)
        .regressions(REGRESSIONS)
        .run(live_case, |c| {
            let config = LiveConfig {
                epochs: c.epochs,
                queries_per_epoch: c.queries_per_epoch,
                drift_sigma: c.sigma(),
                drift_epochs: None,
                warm_drift_steps: c.warm_drift_steps,
                seed: c.seed,
                inflight: 8,
                threads: 2,
                deadline_ms: c.deadline_ms(),
                migration_budget: c.budget,
                replicas: 1,
                domains: None,
                controller: ControllerConfig {
                    // A short cadence so even shrunk runs reach the gate.
                    evaluate_every: 4,
                    ..ControllerConfig::default()
                },
            };

            let mut records = Vec::new();
            let outcome = run_live_with(&p, &config, |r| records.push(r.clone()));
            let report = &outcome.report;

            // (a) Pacing: no epoch ships more than the budget.
            for r in &records {
                prop_assert!(
                    r.migrated_bytes <= c.budget,
                    "epoch {} shipped {} bytes over budget {}",
                    r.epoch,
                    r.migrated_bytes,
                    c.budget
                );
            }
            prop_assert!(report.within_budget(), "report budget gate");
            prop_assert_eq!(
                report.migrated_bytes,
                records.iter().map(|r| r.migrated_bytes).sum::<u64>(),
                "per-epoch slices must reconcile with the migration total"
            );
            prop_assert_eq!(
                report.max_epoch_migrated_bytes,
                records.iter().map(|r| r.migrated_bytes).max().unwrap_or(0),
                "max epoch slice"
            );
            prop_assert_eq!(
                report.migration_epochs,
                records.iter().filter(|r| r.migrated_bytes > 0).count() as u64,
                "shipping-epoch count"
            );

            // (b) Accounting: counters partition the offered stream.
            prop_assert_eq!(records.len() as u64, c.epochs, "one record per epoch");
            for r in &records {
                prop_assert_eq!(
                    r.report.queries,
                    c.queries_per_epoch as u64,
                    "epoch {} offered-query count",
                    r.epoch
                );
                prop_assert!(
                    r.report.counters_consistent(),
                    "epoch {} counters inconsistent",
                    r.epoch
                );
            }
            prop_assert_eq!(
                report.queries,
                c.epochs * c.queries_per_epoch as u64,
                "offered stream size"
            );
            prop_assert_eq!(
                report.queries,
                report.served
                    + report.degraded
                    + report.shed_admission
                    + report.shed_overload
                    + report.shed_deadline,
                "counters must partition the offered stream"
            );
            prop_assert!(report.counters_consistent(), "aggregate counters");
            prop_assert_eq!(
                report.served,
                records.iter().map(|r| r.report.served).sum::<u64>(),
                "served must sum per epoch"
            );
            prop_assert_eq!(
                report.executed_bytes,
                records.iter().map(|r| r.report.executed_bytes).sum::<u64>(),
                "executed bytes must sum per epoch"
            );

            // (c) The report survives the v1 text format bit for bit.
            let text = format_live_report(report);
            let parsed = read_live_report(text.as_bytes()).expect("live report parses");
            prop_assert_eq!(&parsed, report, "text round trip changed the report");
            Ok(())
        });
}
