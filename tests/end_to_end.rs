//! End-to-end integration tests: workload → index → CCA problem →
//! placement → trace replay, exercising every public layer together.

use cca::algo::{LprrOptions, Strategy};
use cca::pipeline::{CorrelationMode, Evaluation, Pipeline, PipelineConfig};
use cca::search::{AggregationPolicy, QueryEngine};
use cca::trace::{DriftConfig, TraceConfig};
use cca_rand::rngs::StdRng;
use cca_rand::SeedableRng;

fn pipeline(seed: u64, nodes: usize) -> Pipeline {
    let mut config = PipelineConfig::new(TraceConfig::small(), nodes);
    config.seed = seed;
    Pipeline::build(&config)
}

fn norm(e: &Evaluation, base: &Evaluation) -> f64 {
    e.replay.total_bytes as f64 / base.replay.total_bytes as f64
}

/// The paper's headline ordering holds on replayed bytes:
/// LPRR < greedy < random, with meaningful margins.
#[test]
fn strategy_ordering_on_replayed_traffic() {
    let p = pipeline(2008, 10);
    let scope = 400;
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
    let greedy = p.evaluate(&Strategy::Greedy, Some(scope)).unwrap();
    let lprr = p.evaluate(&Strategy::lprr(), Some(scope)).unwrap();

    assert!(random.replay.total_bytes > 0);
    let g = norm(&greedy, &random);
    let l = norm(&lprr, &random);
    assert!(g < 0.95, "greedy should save something, got {g}");
    assert!(l < g, "lprr ({l}) should beat greedy ({g})");
    assert!(
        l < 0.75,
        "lprr should save at least 25% on this workload, got {l}"
    );
    // More locally-computable queries under correlation-aware placement.
    assert!(lprr.replay.local_fraction() > random.replay.local_fraction());
}

/// Widening the optimization scope only improves LPRR (modulo small
/// rounding noise), and scope zero equals pure hashing.
#[test]
fn scope_monotonicity() {
    let p = pipeline(7, 10);
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
    let zero = p.evaluate(&Strategy::lprr(), Some(0)).unwrap();
    assert_eq!(zero.replay.total_bytes, random.replay.total_bytes);

    let narrow = p.evaluate(&Strategy::lprr(), Some(100)).unwrap();
    let wide = p.evaluate(&Strategy::lprr(), Some(600)).unwrap();
    let (n, w) = (norm(&narrow, &random), norm(&wide, &random));
    assert!(
        w < n + 0.03,
        "wider scope should not be meaningfully worse: narrow {n}, wide {w}"
    );
}

/// Everything is deterministic for fixed seeds: the whole evaluation
/// reproduces byte-for-byte.
#[test]
fn end_to_end_determinism() {
    let a = pipeline(99, 6);
    let b = pipeline(99, 6);
    for strategy in [Strategy::RandomHash, Strategy::Greedy, Strategy::lprr()] {
        let ea = a.evaluate(&strategy, Some(200)).unwrap();
        let eb = b.evaluate(&strategy, Some(200)).unwrap();
        assert_eq!(ea.replay.total_bytes, eb.replay.total_bytes);
        assert_eq!(ea.report.placement, eb.report.placement);
    }
}

/// The model-level objective and the replayed bytes tell the same story:
/// the measured savings are at least half of the model-predicted savings
/// (the model ignores >2-keyword residual traffic, so it overestimates).
#[test]
fn model_predicts_measurement() {
    let p = pipeline(11, 8);
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
    let lprr = p.evaluate(&Strategy::lprr(), Some(400)).unwrap();
    let model_saving = 1.0 - lprr.report.cost / random.report.cost;
    let measured_saving = 1.0 - norm(&lprr, &random);
    assert!(model_saving > 0.0);
    assert!(
        measured_saving > 0.4 * model_saving,
        "model saving {model_saving}, measured {measured_saving}"
    );
}

/// January's placement keeps most of its benefit on a drifted February
/// log — the stability premise of the whole approach.
#[test]
fn placement_survives_month_of_drift() {
    let p = pipeline(42, 10);
    let mut rng = StdRng::seed_from_u64(4242);
    let feb_model = p
        .workload
        .model
        .drifted(DriftConfig::paper_calibrated(), &mut rng);
    let feb_log = feb_model.sample_log(p.workload.queries.len(), &mut rng);

    let random = p.place(&Strategy::RandomHash, None).unwrap();
    let lprr = p.place(&Strategy::lprr(), Some(400)).unwrap();

    let replay = |placement, log| {
        let cluster = p.cluster_for(placement);
        QueryEngine::new(&p.index, &cluster, AggregationPolicy::Intersection).replay(log)
    };
    let jan_saving = 1.0
        - replay(&lprr.placement, &p.workload.queries).total_bytes as f64
            / replay(&random.placement, &p.workload.queries).total_bytes as f64;
    let feb_saving = 1.0
        - replay(&lprr.placement, &feb_log).total_bytes as f64
            / replay(&random.placement, &feb_log).total_bytes as f64;
    assert!(jan_saving > 0.2, "jan saving {jan_saving}");
    assert!(
        feb_saving > 0.75 * jan_saving,
        "feb saving {feb_saving} eroded too much from jan {jan_saving}"
    );
}

/// The two-smallest correlation adjustment (§3.2) beats the plain
/// all-pairs estimate on intersection workloads.
#[test]
fn two_smallest_adjustment_helps() {
    let mut base_cfg = PipelineConfig::new(TraceConfig::small(), 10);
    base_cfg.seed = 3;
    let scope = 400;

    base_cfg.correlation = CorrelationMode::TwoSmallest;
    let p_two = Pipeline::build(&base_cfg);
    base_cfg.correlation = CorrelationMode::AllPairs;
    let p_all = Pipeline::build(&base_cfg);

    let r_two = p_two.evaluate(&Strategy::RandomHash, None).unwrap();
    let r_all = p_all.evaluate(&Strategy::RandomHash, None).unwrap();
    let l_two = p_two.evaluate(&Strategy::lprr(), Some(scope)).unwrap();
    let l_all = p_all.evaluate(&Strategy::lprr(), Some(scope)).unwrap();
    let n_two = norm(&l_two, &r_two);
    let n_all = norm(&l_all, &r_all);
    assert!(
        n_two <= n_all + 0.02,
        "two-smallest {n_two} should not lose to all-pairs {n_all}"
    );
}

/// Union-mode pipeline: largest-rest correlations with union replay
/// still favour correlation-aware placement.
#[test]
fn union_mode_pipeline() {
    let mut config = PipelineConfig::new(TraceConfig::small(), 8);
    config.seed = 31;
    config.correlation = cca::pipeline::CorrelationMode::LargestRest;
    config.aggregation = AggregationPolicy::Union;
    let p = Pipeline::build(&config);
    assert!(!p.problem.pairs().is_empty());
    let random = p.evaluate(&Strategy::RandomHash, None).unwrap();
    let lprr = p.evaluate(&Strategy::lprr(), Some(300)).unwrap();
    assert!(random.replay.total_bytes > 0);
    assert!(
        lprr.replay.total_bytes < random.replay.total_bytes,
        "union-mode lprr {} should beat random {}",
        lprr.replay.total_bytes,
        random.replay.total_bytes
    );
}

/// Tighter capacity slack trades communication for balance.
#[test]
fn slack_trades_cost_for_balance() {
    let p = pipeline(5, 10);
    let tight = LprrOptions {
        capacity_slack: 1.0,
        ..LprrOptions::default()
    };
    let loose = LprrOptions {
        capacity_slack: 1.5,
        ..LprrOptions::default()
    };
    let t = p.evaluate(&Strategy::Lprr(tight), Some(300)).unwrap();
    let l = p.evaluate(&Strategy::Lprr(loose), Some(300)).unwrap();
    // Loose slack can only help (or tie) the communication cost.
    assert!(l.report.cost <= t.report.cost + 1e-9);
}

/// Node-count scaling: random placement's traffic grows with node count
/// (the (n-1)/n effect the paper describes) and LPRR keeps winning.
#[test]
fn node_scaling_effects() {
    let mut p = pipeline(21, 5);
    let r5 = p.evaluate(&Strategy::RandomHash, None).unwrap();
    p.renode(25);
    let r25 = p.evaluate(&Strategy::RandomHash, None).unwrap();
    assert!(
        r25.replay.total_bytes > r5.replay.total_bytes,
        "random traffic should grow with node count"
    );
    let l25 = p.evaluate(&Strategy::lprr(), Some(300)).unwrap();
    assert!(l25.replay.total_bytes < r25.replay.total_bytes);
}
