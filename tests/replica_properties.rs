//! Replica battery (DESIGN.md §15): the replica-aware kernels must be a
//! strict generalization of the single-copy code, and the spread
//! invariant must survive every operation that rewrites a placement.
//!
//! Three contracts, each over randomized cases with shrinking:
//!
//! 1. **r=1 bit-identity** — with one copy and a flat tree,
//!    `eval_cost_replicas` / `eval_replica_move_delta` return the same
//!    bits as `eval_cost` / `eval_move_delta` for every thread count in
//!    {1, 2, 8} and shard count in {unsharded, 1, 2, 7};
//! 2. **spread preservation** — `spread_copies`,
//!    `improve_replicas_in_place` and `repair_replica_spread` all leave
//!    no two copies of an object in one leaf domain (whenever enough
//!    alive domains remain);
//! 3. **domain-kill chaos** — `survive_domain_loss` evacuates every
//!    copy off the dead domain deterministically, and the repaired
//!    placement still serves reads end to end (served > 0, counters
//!    partition the offered stream).
//!
//! Failures shrink to a minimal case and are pinned in
//! `replica_properties.regressions`.

use cca::algo::{
    greedy_placement, improve_replicas_in_place, repair_replica_spread, spread_copies,
    survive_domain_loss, CcaProblem, DomainTree, MigrateOptions, ObjectId, Placement,
    ReplicaPlacement,
};
use cca::pipeline::{Pipeline, PipelineConfig};
use cca::serve::{serve, ServeConfig};
use cca::trace::TraceConfig;
use cca_check::{prop_assert, prop_assert_eq, Checker, Rng, SeedableRng, Shrink, StdRng};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/replica_properties.regressions");

/// The bit-identity matrix from the ISSUE: every thread count crossed
/// with every shard count, including the unsharded CSR path.
const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [Option<usize>; 4] = [None, Some(1), Some(2), Some(7)];

/// Shrinkable random instance: a correlation problem, a placement, and
/// one candidate move. Everything derives from integers so the shrinker
/// walks toward the smallest failing problem.
#[derive(Debug, Clone)]
struct ReplicaCase {
    objects: usize,
    nodes: usize,
    seed: u64,
    /// Candidate move, reduced modulo (objects, nodes) at use.
    move_object: usize,
    move_target: usize,
}

impl Shrink for ReplicaCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for objects in self.objects.shrink() {
            if objects >= 2 {
                out.push(ReplicaCase { objects, ..self.clone() });
            }
        }
        for nodes in self.nodes.shrink() {
            if nodes >= 2 {
                out.push(ReplicaCase { nodes, ..self.clone() });
            }
        }
        for seed in self.seed.shrink() {
            out.push(ReplicaCase { seed, ..self.clone() });
        }
        for move_object in self.move_object.shrink() {
            out.push(ReplicaCase { move_object, ..self.clone() });
        }
        for move_target in self.move_target.shrink() {
            out.push(ReplicaCase { move_target, ..self.clone() });
        }
        out
    }
}

fn replica_case(rng: &mut StdRng) -> ReplicaCase {
    ReplicaCase {
        objects: rng.random_range(2usize..=12),
        nodes: rng.random_range(2usize..=6),
        seed: rng.random_range(0u64..1_000_000),
        move_object: rng.random_range(0usize..64),
        move_target: rng.random_range(0usize..64),
    }
}

/// Deterministic problem from a case: random sizes, a random subset of
/// pairs with varied correlation and weight, generous capacities so
/// every random placement is structurally valid.
fn build_problem(c: &ReplicaCase) -> CcaProblem {
    let mut rng = StdRng::seed_from_u64(c.seed);
    let mut b = CcaProblem::builder();
    let objs: Vec<ObjectId> = (0..c.objects)
        .map(|i| b.add_object(format!("o{i}"), rng.random_range(1u64..=20)))
        .collect();
    for i in 0..c.objects {
        for j in i + 1..c.objects {
            if rng.random_range(0u32..100) < 60 {
                let corr = f64::from(rng.random_range(1u32..=100)) / 100.0;
                let weight = f64::from(rng.random_range(1u32..=10));
                b.add_pair(objs[i], objs[j], corr, weight).unwrap();
            }
        }
    }
    b.uniform_capacities(c.nodes, 20 * c.objects as u64).build().unwrap()
}

fn random_placement(c: &ReplicaCase) -> Placement {
    let mut rng = StdRng::seed_from_u64(c.seed ^ 0x9e37_79b9_7f4a_7c15);
    let assignment: Vec<u32> =
        (0..c.objects).map(|_| rng.random_range(0u32..c.nodes as u32)).collect();
    Placement::new(assignment, c.nodes)
}

/// Contract 1: with one copy per object, the replica kernels are the
/// single-copy kernels bit for bit — cost and move delta — across the
/// full threads × shards matrix. This is the r=1 equivalence guarantee
/// the whole refactor rests on.
#[test]
fn r1_cost_and_delta_are_bit_identical_across_threads_and_shards() {
    Checker::new("r1_cost_and_delta_are_bit_identical_across_threads_and_shards")
        .cases(24)
        .regressions(REGRESSIONS)
        .run(replica_case, |c| {
            let base = build_problem(c);
            let placement = random_placement(c);
            let rp = ReplicaPlacement::from_primary(placement.clone());
            let i = ObjectId((c.move_object % c.objects) as u32);
            let target = c.move_target % c.nodes;
            for shards in SHARDS {
                let mut problem = base.clone();
                if let Some(s) = shards {
                    problem.set_sharding(s, 2);
                }
                for threads in THREADS {
                    let single = problem.eval_cost(&placement, threads);
                    let multi = problem.eval_cost_replicas(&rp, threads);
                    prop_assert_eq!(
                        single.to_bits(),
                        multi.to_bits(),
                        "cost bits diverge at threads={} shards={:?}: {} vs {}",
                        threads,
                        shards,
                        single,
                        multi
                    );
                }
                let single = problem.eval_move_delta(&placement, i, target);
                let multi = problem.eval_replica_move_delta(&rp, i, 0, target);
                prop_assert_eq!(
                    single.to_bits(),
                    multi.to_bits(),
                    "move delta bits diverge at shards={:?}: {} vs {}",
                    shards,
                    single,
                    multi
                );
            }
            Ok(())
        });
}

/// Contract 2: the spread invariant (no two copies of an object in one
/// leaf domain) holds after spreading, after the replica-aware local
/// search, and after repair from a whole-domain kill — and repair never
/// leaves a copy on a dead node.
#[test]
fn spread_invariant_survives_spread_migrate_and_repair() {
    Checker::new("spread_invariant_survives_spread_migrate_and_repair")
        .cases(24)
        .regressions(REGRESSIONS)
        .run(replica_case, |c| {
            let problem = build_problem(c);
            let domains = 2 + c.seed as usize % (c.nodes - 1).max(1);
            let domains = domains.min(c.nodes);
            let tree = DomainTree::contiguous(c.nodes, domains).map_err(|e| e.to_string())?;
            let replicas = 2; // domains >= 2 by construction, so always satisfiable
            let primary = greedy_placement(&problem);
            let slack = replicas as f64;

            let rp = spread_copies(&problem, &tree, primary, replicas, slack)
                .map_err(|e| e.to_string())?;
            prop_assert!(rp.spread_valid(&tree), "spread_copies broke the invariant");

            let polished =
                improve_replicas_in_place(&problem, &tree, &rp, &MigrateOptions::default());
            prop_assert!(
                polished.replica.spread_valid(&tree),
                "local search broke the invariant after {} moves",
                polished.moves
            );

            // Kill one whole leaf domain and repair.
            let dead_domain = c.seed as usize % domains;
            let dead_nodes = tree.nodes_in(dead_domain).to_vec();
            let capacities: Vec<u64> = (0..problem.num_nodes())
                .map(|k| if dead_nodes.contains(&k) { 0 } else { problem.capacity(k) })
                .collect();
            let degraded = problem.with_capacities(capacities);
            let mut repaired = polished.replica.clone();
            let outcome =
                repair_replica_spread(&degraded, &tree, &mut repaired, &dead_nodes, slack);
            for o in problem.objects() {
                for j in 0..repaired.replicas() {
                    prop_assert!(
                        !dead_nodes.contains(&repaired.node_of(o, j)),
                        "copy {} of object {:?} still on dead domain {}",
                        j,
                        o,
                        dead_domain
                    );
                }
            }
            if domains > replicas {
                prop_assert!(
                    outcome.spread_valid,
                    "enough alive domains remain, repair must restore the spread"
                );
            }
            // Accounting: bytes move iff copies move.
            prop_assert_eq!(
                outcome.moves > 0,
                outcome.migrated_bytes > 0,
                "moves and bytes must agree: {} moves, {} bytes",
                outcome.moves,
                outcome.migrated_bytes
            );
            Ok(())
        });
}

// ---------------------------------------------------------------------
// Deterministic domain-kill chaos grid (ISSUE verification clause).
// ---------------------------------------------------------------------

/// Four correlated triangles over six nodes in three leaf domains —
/// small enough to stay fast, structured enough that every domain holds
/// copies before the kill.
fn chaos_fixture() -> (CcaProblem, DomainTree, ReplicaPlacement) {
    let mut b = CcaProblem::builder();
    let mut objs = Vec::new();
    for g in 0..4 {
        for i in 0..3 {
            objs.push(b.add_object(format!("g{g}w{i}"), 10));
        }
    }
    for g in 0..4 {
        for i in 0..3 {
            for j in i + 1..3 {
                b.add_pair(objs[g * 3 + i], objs[g * 3 + j], 0.8, 5.0).unwrap();
            }
        }
    }
    let problem = b.uniform_capacities(6, 120).build().unwrap();
    let tree = DomainTree::contiguous(6, 3).unwrap();
    let primary = greedy_placement(&problem);
    let rp = spread_copies(&problem, &tree, primary, 2, 2.0).unwrap();
    (problem, tree, rp)
}

/// Killing any one of the three domains evacuates every copy, restores
/// the spread invariant (two alive domains suffice for r = 2), reports
/// consistent move/byte accounting, and is byte-identical across runs.
#[test]
fn domain_kill_grid_repairs_deterministically() {
    let (problem, tree, rp) = chaos_fixture();
    assert!(rp.spread_valid(&tree));
    for domain in 0..tree.num_domains() {
        let (degraded, repaired, report) =
            survive_domain_loss(&problem, &tree, &rp, domain, 2.0);
        assert_eq!(report.domain, domain);
        assert_eq!(report.dropped_nodes, tree.nodes_in(domain).to_vec());
        for o in problem.objects() {
            for j in 0..repaired.replicas() {
                assert!(
                    !report.dropped_nodes.contains(&repaired.node_of(o, j)),
                    "copy {j} of {o:?} left on dead domain {domain}"
                );
            }
        }
        assert!(
            report.spread_valid && repaired.spread_valid(&tree),
            "two alive domains must fit two copies (domain {domain})"
        );
        for &n in &report.dropped_nodes {
            assert_eq!(degraded.capacity(n), 0, "dead node {n} kept capacity");
        }
        // Something lived in every domain before the kill, so the repair
        // must have moved copies — and bytes must track moves.
        assert!(report.moves > 0, "domain {domain} kill moved nothing");
        assert!(report.migrated_bytes > 0);

        let (_, again, report_again) = survive_domain_loss(&problem, &tree, &rp, domain, 2.0);
        for o in problem.objects() {
            for j in 0..rp.replicas() {
                assert_eq!(
                    repaired.node_of(o, j),
                    again.node_of(o, j),
                    "nondeterministic repair for {o:?} copy {j}"
                );
            }
        }
        assert_eq!(report, report_again, "nondeterministic domain-loss report");
    }
}

/// End-to-end: kill a domain under a replicated serving cluster and the
/// read path keeps answering — served > 0 and the serving counters
/// partition the offered stream exactly (the ISSUE's chaos-harness
/// verification clause).
#[test]
fn reads_survive_domain_kill_end_to_end() {
    let mut cfg = PipelineConfig::new(TraceConfig::tiny(), 6);
    cfg.seed = 9;
    let p = Pipeline::build(&cfg);
    let tree = DomainTree::contiguous(6, 3).unwrap();
    let primary = greedy_placement(&p.problem);
    let rp = spread_copies(&p.problem, &tree, primary, 2, 2.0).unwrap();
    assert!(rp.spread_valid(&tree));

    let (_, repaired, report) = survive_domain_loss(&p.problem, &tree, &rp, 0, 2.0);
    assert!(report.spread_valid, "repair must re-spread onto domains 1 and 2");
    for o in p.problem.objects() {
        for j in 0..repaired.replicas() {
            assert!(!report.dropped_nodes.contains(&repaired.node_of(o, j)));
        }
    }

    let cluster = p.cluster_for_replicas(&repaired);
    let mut rng = StdRng::seed_from_u64(77);
    let queries = p.workload.model.sample_log(200, &mut rng).queries;
    let out = serve(
        &p.index,
        &cluster,
        p.config().aggregation,
        &queries,
        &ServeConfig { inflight: 8, threads: 2, deadline_ms: None, burst: None, overhead_ns: 0 },
    );
    assert!(out.report.served > 0, "reads must survive the domain kill");
    assert!(out.report.counters_consistent());
    assert_eq!(out.report.queries, 200);
    assert_eq!(
        out.report.served
            + out.report.degraded
            + out.report.shed_admission
            + out.report.shed_overload
            + out.report.shed_deadline,
        200,
        "counters must partition the offered stream"
    );
    assert_eq!(out.responses.len(), 200, "every offered query answered");
}
