//! Tier-2 chaos suite: the degradation ladder under deterministic fault
//! injection. Build with `cargo test --features chaos --test chaos`.
//!
//! Invariants checked for every fault plan in the grid:
//!
//! 1. `solve_resilient_with_faults` returns a *complete* placement — it
//!    never panics and never errors;
//! 2. the placement is capacity-feasible per the independent audit, or
//!    the report explicitly flags the degradation;
//! 3. two runs with the same seed are byte-identical;
//! 4. the report names the injected fault.

#![cfg(feature = "chaos")]

use cca::algo::{
    solve_resilient_with_faults, CcaProblem, FaultPlan, ResilienceOptions, Rung, RungOutcome,
    SolveBudget,
};
use std::time::Duration;

/// Four clusters of three strongly-correlated objects over three nodes:
/// big enough to exercise the simplex, small enough to stay fast.
fn chaos_problem() -> CcaProblem {
    let mut b = CcaProblem::builder();
    let mut objs = Vec::new();
    for g in 0..4 {
        for i in 0..3 {
            objs.push(b.add_object(format!("g{g}w{i}"), 10));
        }
    }
    for g in 0..4 {
        for i in 0..3 {
            for j in i + 1..3 {
                b.add_pair(objs[g * 3 + i], objs[g * 3 + j], 0.8, 5.0).unwrap();
            }
        }
    }
    b.uniform_capacities(3, 80).build().unwrap()
}

fn fault_grid(seed: u64) -> Vec<FaultPlan> {
    vec![
        FaultPlan { seed, ..FaultPlan::default() },
        FaultPlan { seed, exhaust_lp_iterations: true, ..FaultPlan::default() },
        FaultPlan { seed, poison_lp_after: Some(0), ..FaultPlan::default() },
        FaultPlan { seed, poison_lp_after: Some(5), ..FaultPlan::default() },
        FaultPlan { seed, fail_rounding: true, ..FaultPlan::default() },
        FaultPlan { seed, drop_nodes: 1, ..FaultPlan::default() },
        FaultPlan { seed, drop_nodes: 2, ..FaultPlan::default() },
        FaultPlan {
            seed,
            exhaust_lp_iterations: true,
            fail_rounding: true,
            drop_nodes: 1,
            ..FaultPlan::default()
        },
    ]
}

#[test]
fn every_fault_plan_yields_a_complete_audited_placement() {
    let p = chaos_problem();
    let opts = ResilienceOptions::default();
    for seed in [1u64, 7, 42] {
        for plan in fault_grid(seed) {
            let r = solve_resilient_with_faults(&p, &opts, &plan);
            assert_eq!(
                r.placement.num_objects(),
                p.num_objects(),
                "incomplete placement under {plan:?}"
            );
            // Feasible, or explicitly flagged as degraded — never a
            // silently-bad answer.
            assert!(
                r.audit.feasible() || r.report.degraded,
                "unflagged infeasible placement under {plan:?}: {}",
                r.report.summary()
            );
            // The audit is against the effective (possibly node-degraded)
            // problem and its verdict matches the report's violation list.
            assert_eq!(r.audit.feasible(), r.audit.violations.is_empty());
        }
    }
}

#[test]
fn same_seed_same_plan_is_byte_identical() {
    let p = chaos_problem();
    let opts = ResilienceOptions::default();
    for plan in fault_grid(13) {
        let a = solve_resilient_with_faults(&p, &opts, &plan);
        let b = solve_resilient_with_faults(&p, &opts, &plan);
        assert_eq!(
            a.placement.as_slice(),
            b.placement.as_slice(),
            "nondeterministic placement under {plan:?}"
        );
        assert_eq!(a.report.selected, b.report.selected);
        assert_eq!(a.report.degraded, b.report.degraded);
        assert_eq!(a.report.floor_overridden, b.report.floor_overridden);
        assert_eq!(a.report.repaired, b.report.repaired);
        assert_eq!(a.cost, b.cost);
        let outcomes_a: Vec<_> = a.report.attempts.iter().map(|x| x.outcome.clone()).collect();
        let outcomes_b: Vec<_> = b.report.attempts.iter().map(|x| x.outcome.clone()).collect();
        assert_eq!(outcomes_a, outcomes_b);
    }
}

#[test]
fn reports_name_the_injected_fault() {
    let p = chaos_problem();
    let opts = ResilienceOptions::default();
    for (plan, needle) in [
        (
            FaultPlan { seed: 3, exhaust_lp_iterations: true, ..FaultPlan::default() },
            "exhaust-lp-iterations",
        ),
        (
            FaultPlan { seed: 3, poison_lp_after: Some(0), ..FaultPlan::default() },
            "poison-lp@0",
        ),
        (
            FaultPlan { seed: 3, fail_rounding: true, ..FaultPlan::default() },
            "fail-rounding",
        ),
        (
            FaultPlan { seed: 3, drop_nodes: 2, ..FaultPlan::default() },
            "drop-2-nodes",
        ),
    ] {
        let r = solve_resilient_with_faults(&p, &opts, &plan);
        let fault = r.report.injected_fault.clone().expect("fault plan is not a noop");
        assert!(fault.contains(needle), "{fault} missing {needle}");
        assert!(r.report.summary().contains(needle));
    }
}

/// The whole fault grid, re-run on the threaded ladder: every plan still
/// yields a complete audited placement at 2 and 8 worker threads, and —
/// since none of these plans involves a mid-solve deadline — the result
/// is byte-identical to the serial walk.
#[test]
fn fault_grid_is_thread_count_invariant() {
    let p = chaos_problem();
    for plan in fault_grid(21) {
        let serial = solve_resilient_with_faults(&p, &ResilienceOptions::default(), &plan);
        for threads in [2usize, 8] {
            let opts = ResilienceOptions {
                threads,
                ..ResilienceOptions::default()
            };
            let r = solve_resilient_with_faults(&p, &opts, &plan);
            assert_eq!(
                r.placement.num_objects(),
                p.num_objects(),
                "incomplete placement under {plan:?} at {threads} threads"
            );
            assert!(
                r.audit.feasible() || r.report.degraded,
                "unflagged infeasible placement under {plan:?} at {threads} threads"
            );
            assert_eq!(
                r.placement.as_slice(),
                serial.placement.as_slice(),
                "threads = {threads} diverged from serial under {plan:?}"
            );
            assert_eq!(r.report.selected, serial.report.selected);
            assert_eq!(r.report.degraded, serial.report.degraded);
            assert_eq!(r.cost.to_bits(), serial.cost.to_bits());
            let outcomes: Vec<_> = r.report.attempts.iter().map(|x| x.outcome.clone()).collect();
            let serial_outcomes: Vec<_> =
                serial.report.attempts.iter().map(|x| x.outcome.clone()).collect();
            assert_eq!(outcomes, serial_outcomes, "attempt ledger diverged under {plan:?}");
        }
    }
}

/// Deadline exhaustion on the threaded ladder: with an already-expired
/// budget and 8 workers, the gate trips every gated rung, the emergency
/// hash rung still answers, the report flags the deadline, and the whole
/// degraded outcome is seed-deterministic across repeat runs.
#[test]
fn threaded_deadline_exhaustion_degrades_deterministically() {
    let p = chaos_problem();
    for threads in [2usize, 8] {
        let opts = ResilienceOptions {
            threads,
            budget: SolveBudget {
                deadline: Some(Duration::ZERO),
                ..SolveBudget::default()
            },
            ..ResilienceOptions::default()
        };
        let plan = FaultPlan { seed: 17, ..FaultPlan::default() };
        let a = solve_resilient_with_faults(&p, &opts, &plan);
        let b = solve_resilient_with_faults(&p, &opts, &plan);
        assert_eq!(a.placement.num_objects(), p.num_objects());
        assert!(a.report.deadline_exceeded, "expired budget must be flagged");
        assert!(a.report.degraded);
        assert_eq!(a.report.selected, Rung::Hash, "only the hash rung is deadline-exempt");
        assert_eq!(
            a.placement.as_slice(),
            b.placement.as_slice(),
            "deadline degradation must stay seed-deterministic at {threads} threads"
        );
        assert_eq!(a.report.selected, b.report.selected);
        // Every gated rung is audited in the ledger, not silently dropped.
        assert_eq!(a.report.attempts.len(), b.report.attempts.len());
        assert!(a.report.attempts.len() >= 2, "gated rungs must still be recorded");
    }
}

/// NaN-poisoned LP and all-infeasible rounding, threaded: the failure
/// messages and fall-through behaviour match the serial ladder exactly.
#[test]
fn threaded_poison_and_failed_rounding_match_serial() {
    let p = chaos_problem();
    for plan in [
        FaultPlan { seed: 1, poison_lp_after: Some(0), ..FaultPlan::default() },
        FaultPlan { seed: 5, fail_rounding: true, ..FaultPlan::default() },
    ] {
        let serial = solve_resilient_with_faults(&p, &ResilienceOptions::default(), &plan);
        let threaded = solve_resilient_with_faults(
            &p,
            &ResilienceOptions { threads: 8, ..ResilienceOptions::default() },
            &plan,
        );
        assert_eq!(threaded.placement.as_slice(), serial.placement.as_slice());
        assert_eq!(threaded.report.selected, serial.report.selected);
        assert_eq!(threaded.report.degraded, serial.report.degraded);
        let outcomes: Vec<_> =
            threaded.report.attempts.iter().map(|x| x.outcome.clone()).collect();
        let serial_outcomes: Vec<_> =
            serial.report.attempts.iter().map(|x| x.outcome.clone()).collect();
        assert_eq!(outcomes, serial_outcomes, "failure ledger diverged under {plan:?}");
        assert_eq!(threaded.placement.num_objects(), p.num_objects());
        assert!(threaded.audit.feasible() || threaded.report.degraded);
    }
}

#[test]
fn exhausted_lp_iterations_fail_the_lp_rungs_and_fall_through() {
    let p = chaos_problem();
    let plan = FaultPlan { seed: 1, exhaust_lp_iterations: true, ..FaultPlan::default() };
    let r = solve_resilient_with_faults(&p, &ResilienceOptions::default(), &plan);
    // Both LP rungs die on the one-iteration simplex cap; greedy answers.
    for a in &r.report.attempts[..2] {
        match &a.outcome {
            RungOutcome::Failed(msg) => {
                assert!(msg.contains("iteration"), "unexpected failure: {msg}")
            }
            other => panic!("expected LP rung failure, got {other:?}"),
        }
    }
    assert_eq!(r.report.selected, Rung::Greedy);
    assert!(r.report.degraded);
    assert!(r.audit.feasible());
}

#[test]
fn poisoned_objective_trips_the_health_alarm() {
    let p = chaos_problem();
    let plan = FaultPlan { seed: 1, poison_lp_after: Some(0), ..FaultPlan::default() };
    let r = solve_resilient_with_faults(&p, &ResilienceOptions::default(), &plan);
    match &r.report.attempts[0].outcome {
        RungOutcome::Failed(msg) => {
            assert!(msg.contains("non-finite"), "unexpected failure: {msg}")
        }
        other => panic!("expected a numerical failure on the lprr rung, got {other:?}"),
    }
    assert!(r.report.degraded);
    assert!(r.audit.feasible());
    assert_eq!(r.placement.num_objects(), p.num_objects());
}

#[test]
fn failed_rounding_is_repaired_at_the_ladder_level() {
    let p = chaos_problem();
    // Restrict the ladder to the LPRR rung alone so the infeasible
    // rounding candidate cannot be dodged by falling back to greedy.
    let opts = ResilienceOptions {
        start: Rung::Lprr,
        floor: Rung::Lprr,
        ..ResilienceOptions::default()
    };
    let plan = FaultPlan { seed: 5, fail_rounding: true, ..FaultPlan::default() };
    let r = solve_resilient_with_faults(&p, &opts, &plan);
    assert_eq!(r.report.selected, Rung::Lprr);
    // The least-overloaded candidate either already fit the raw
    // capacities or the ladder repaired it; both end audit-clean here.
    assert!(
        r.audit.feasible(),
        "repair failed: {}\n{}",
        r.report.summary(),
        r.audit.report()
    );
}

#[test]
fn node_loss_evicts_the_dead_nodes_and_accounts_migration() {
    let p = chaos_problem();
    let plan = FaultPlan { seed: 11, drop_nodes: 1, ..FaultPlan::default() };
    let r = solve_resilient_with_faults(&p, &ResilienceOptions::default(), &plan);
    let loss = r.report.node_loss.as_ref().expect("node loss recorded");
    assert_eq!(loss.dropped_nodes.len(), 1);
    let dead = loss.dropped_nodes[0];
    assert_eq!(r.effective_problem.capacity(dead), 0);
    assert_eq!(
        r.placement.loads(&r.effective_problem)[dead],
        0,
        "dead node still carries load"
    );
    // Survivors absorbed the load within their capacities.
    assert!(
        r.audit.feasible(),
        "{}\n{}",
        r.report.summary(),
        r.audit.report()
    );
    // Something moved off the dead node, and the byte accounting says so.
    assert!(loss.moves > 0);
    assert!(loss.migrated_bytes >= 10);
}
