//! The Capacity-Constrained Assignment (CCA) problem (paper §2.1).

use crate::graph::{CorrelationGraph, PlacementBatch};
use crate::placement::Placement;
use crate::replica::ReplicaPlacement;
use crate::resources::{Resource, ResourceError};
use crate::shard::ShardedGraph;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a data object (index into the problem's object table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Index form of the identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A correlated object pair with its correlation `r(i,j)` and communication
/// cost `w(i,j)`. The pair contributes `r·w` to the objective when its
/// objects are placed on different nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// Smaller-id endpoint.
    pub a: ObjectId,
    /// Larger-id endpoint.
    pub b: ObjectId,
    /// Correlation `r(i,j)`: probability the objects are requested together
    /// (possibly adjusted per §3.2 for >2-object operations).
    pub correlation: f64,
    /// Communication overhead `w(i,j)` incurred when the pair is requested
    /// across nodes.
    pub comm_cost: f64,
}

impl Pair {
    /// The pair's objective weight `r(i,j) · w(i,j)`.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.correlation * self.comm_cost
    }
}

/// Error produced when assembling an invalid [`CcaProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// A pair references an object id outside the object table.
    UnknownObject(ObjectId),
    /// Two objects share a name. Names feed MD5 hash placement
    /// ([`crate::random_hash_placement`]), so duplicates would silently
    /// collide onto the same bucket and corrupt the baseline.
    DuplicateName(String),
    /// A pair connects an object to itself.
    SelfPair(ObjectId),
    /// A numeric field is negative or non-finite.
    InvalidNumber(String),
    /// The problem has no nodes.
    NoNodes,
    /// An object has size zero (it would be invisible to every capacity
    /// constraint and to hash-based placement weights).
    ZeroSizeObject(ObjectId),
    /// Every node has zero capacity, so nothing can ever be placed.
    /// (Individual zero-capacity nodes stay legal — they model failed or
    /// drained nodes.)
    ZeroCapacity,
    /// A secondary resource's vectors do not match the problem dimensions.
    Resource(ResourceError),
    /// The instance overflows the graph's `u32` CSR indexing: more than
    /// `u32::MAX / 2` pairs (the `2·m` half-edge slots would wrap the
    /// offset accumulator and the `EdgeId` casts) or more than `u32::MAX`
    /// objects. Before this guard the build silently wrapped.
    GraphTooLarge {
        /// Object count of the rejected instance.
        objects: usize,
        /// Pair count of the rejected instance.
        pairs: usize,
    },
    /// A replica spec asks for more copies per object than the domain
    /// tree has leaf domains, so the spread invariant (no two replicas
    /// of an object in the same leaf domain) can never hold.
    ReplicaSpread {
        /// Requested copies per object.
        replicas: usize,
        /// Leaf domains available in the tree.
        domains: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::UnknownObject(o) => write!(f, "pair references unknown object {o}"),
            ProblemError::DuplicateName(name) => {
                write!(f, "duplicate object name {name:?} (hash placement would collide)")
            }
            ProblemError::SelfPair(o) => write!(f, "pair connects {o} to itself"),
            ProblemError::InvalidNumber(msg) => write!(f, "invalid number: {msg}"),
            ProblemError::NoNodes => f.write_str("problem has no nodes"),
            ProblemError::ZeroSizeObject(o) => write!(f, "object {o} has size zero"),
            ProblemError::ZeroCapacity => f.write_str("every node has zero capacity"),
            ProblemError::Resource(e) => write!(f, "invalid resource: {e}"),
            ProblemError::GraphTooLarge { objects, pairs } => write!(
                f,
                "instance too large for u32 CSR indexing: {pairs} pairs over \
                 {objects} objects (limits: {} pairs, {} objects)",
                u32::MAX / 2,
                u32::MAX
            ),
            ProblemError::ReplicaSpread { replicas, domains } => write!(
                f,
                "cannot spread {replicas} replicas across {domains} leaf \
                 domains (need replicas <= domains)"
            ),
        }
    }
}

impl std::error::Error for ProblemError {}

/// An instance of the CCA problem: objects with sizes, nodes with
/// capacities, and correlated pairs (paper Figure 3).
///
/// Build instances with [`CcaProblem::builder`]:
///
/// ```
/// use cca_core::CcaProblem;
///
/// # fn main() -> Result<(), cca_core::ProblemError> {
/// let mut b = CcaProblem::builder();
/// let car = b.add_object("car", 100);
/// let dealer = b.add_object("dealer", 80);
/// let software = b.add_object("software", 120);
/// b.add_pair(car, dealer, 0.3, 90.0)?;
/// b.add_pair(car, software, 0.01, 100.0)?;
/// let problem = b.uniform_capacities(2, 200).build()?;
/// assert_eq!(problem.num_objects(), 3);
/// assert_eq!(problem.num_nodes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CcaProblem {
    names: Vec<String>,
    sizes: Vec<u64>,
    capacities: Vec<u64>,
    pairs: Vec<Pair>,
    resources: Vec<Resource>,
    graph: CorrelationGraph,
    // Opt-in range-sharded view of the same pair list (None by default —
    // the flat CSR bit-contract is untouched unless sharding is enabled).
    // Kept in lock-step with `pairs` by `restrict_to` / `prune_pairs`.
    sharded: Option<ShardedGraph>,
}

impl CcaProblem {
    /// Starts building a problem.
    #[must_use]
    pub fn builder() -> CcaProblemBuilder {
        CcaProblemBuilder::default()
    }

    /// Number of objects `|T|`.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.sizes.len()
    }

    /// Number of nodes `|N|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Size `s(i)` of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn size(&self, i: ObjectId) -> u64 {
        self.sizes[i.index()]
    }

    /// Name of object `i` (used by hash-based placement).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn name(&self, i: ObjectId) -> &str {
        &self.names[i.index()]
    }

    /// Capacity `c(k)` of node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn capacity(&self, k: usize) -> u64 {
        self.capacities[k]
    }

    /// All correlated pairs (the sparse set `E`).
    #[must_use]
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// The CSR adjacency view of the pair list, kept in lock-step with
    /// [`CcaProblem::pairs`]: edge `e` of the graph is `pairs()[e]`. Every
    /// solve layer walks this instead of rescanning the flat list.
    #[must_use]
    pub fn graph(&self) -> &CorrelationGraph {
        &self.graph
    }

    /// Enables the range-sharded graph view: builds a [`ShardedGraph`]
    /// over the current pair list with `shard_count` shards (clamped to
    /// `[1, num_objects]`), constructing shards in parallel on up to
    /// `threads` `cca-par` workers. The sharded view is a pure function of
    /// `(pairs, shard_count)` — the build thread count never changes it.
    ///
    /// Once enabled, the `eval_*` dispatchers route bulk cost queries
    /// through the shards; [`CcaProblem::graph`] and everything built on
    /// it are unaffected. [`CcaProblem::restrict_to`] and
    /// [`CcaProblem::prune_pairs`] rebuild the sharded view over the new
    /// pair list with the same shard count.
    pub fn set_sharding(&mut self, shard_count: usize, threads: usize) {
        self.sharded = Some(ShardedGraph::build(
            self.sizes.len(),
            &self.pairs,
            shard_count,
            threads,
        ));
    }

    /// Drops the sharded view; the `eval_*` dispatchers fall back to the
    /// flat CSR.
    pub fn clear_sharding(&mut self) {
        self.sharded = None;
    }

    /// The range-sharded graph view, if [`CcaProblem::set_sharding`] was
    /// called.
    #[must_use]
    pub fn sharded(&self) -> Option<&ShardedGraph> {
        self.sharded.as_ref()
    }

    /// The CCA objective of `placement`, dispatched to the sharded view
    /// (shard-parallel partials reduced in shard-index order — identical
    /// for every `threads` value) when sharding is enabled, else the flat
    /// serial [`CorrelationGraph::cost`]. With sharding disabled, or with
    /// a single shard, the bits equal the flat serial walk.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the problem.
    #[must_use]
    pub fn eval_cost(&self, placement: &Placement, threads: usize) -> f64 {
        match &self.sharded {
            Some(s) => s.cost(placement, threads),
            None => self.graph.cost(placement),
        }
    }

    /// Batched candidate scoring, dispatched to the sharded view when
    /// sharding is enabled, else the flat serial
    /// [`CorrelationGraph::cost_batch`]. Column `c` is deterministic for
    /// every `threads` value either way; with sharding disabled or a
    /// single shard it is bit-identical to `cost(batch.placement(c))`.
    ///
    /// # Panics
    ///
    /// Panics if the batch covers fewer objects than the problem.
    #[must_use]
    pub fn eval_cost_batch(&self, batch: &PlacementBatch, threads: usize) -> Vec<f64> {
        match &self.sharded {
            Some(s) => s.cost_batch(batch, threads),
            None => self.graph.cost_batch(batch),
        }
    }

    /// [`CorrelationGraph::move_delta`] via the sharded view when enabled
    /// (a shard replicates the flat CSR row of each object it owns, so
    /// the delta is bit-identical for **any** shard count), else the flat
    /// row walk.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn eval_move_delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        match &self.sharded {
            Some(s) => s.move_delta(placement, i, target),
            None => self.graph.move_delta(placement, i, target),
        }
    }

    /// [`CorrelationGraph::move_delta_batch`] via the sharded view when
    /// enabled (bit-identical for any shard count, as for
    /// [`CcaProblem::eval_move_delta`]), else the flat row walk.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn eval_move_delta_batch(
        &self,
        placement: &Placement,
        i: ObjectId,
        targets: &[usize],
    ) -> Vec<f64> {
        match &self.sharded {
            Some(s) => s.move_delta_batch(placement, i, targets),
            None => self.graph.move_delta_batch(placement, i, targets),
        }
    }

    /// Replica-aware cost via the sharded view when enabled
    /// ([`ShardedGraph::cost_replicas`]), else the flat replica fold
    /// ([`CorrelationGraph::cost_replicas`]). With `r = 1` both sides
    /// fast-path to their single-copy walks, so this is bit-identical to
    /// [`CcaProblem::eval_cost`] on the primary column.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the problem.
    #[must_use]
    pub fn eval_cost_replicas(&self, rp: &ReplicaPlacement, threads: usize) -> f64 {
        match &self.sharded {
            Some(s) => s.cost_replicas(rp, threads),
            None => self.graph.cost_replicas(rp),
        }
    }

    /// Replica-aware move delta via the sharded view when enabled
    /// (bit-identical for any shard count), else the flat row walk.
    ///
    /// # Panics
    ///
    /// Panics if `i`, `j`, or `target` is out of range.
    #[must_use]
    pub fn eval_replica_move_delta(
        &self,
        rp: &ReplicaPlacement,
        i: ObjectId,
        j: usize,
        target: usize,
    ) -> f64 {
        match &self.sharded {
            Some(s) => s.replica_move_delta(rp, i, j, target),
            None => self.graph.replica_move_delta(rp, i, j, target),
        }
    }

    /// Secondary capacity constraints (paper 3.3); empty in the base
    /// formulation.
    #[must_use]
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Returns `true` if object `i` (or a whole group with the given
    /// aggregate demands) fits on node `k` given `current` loads, across
    /// storage and every secondary resource. `current[0]` is the storage
    /// load and `current[1 + r]` the load of resource `r`; `extra` is laid
    /// out the same way. Both slices must have length
    /// `1 + resources().len()`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths or `k` are out of range.
    #[must_use]
    pub fn fits_on_node(&self, k: usize, current: &[f64], extra: &[f64], slack: f64) -> bool {
        assert_eq!(current.len(), 1 + self.resources.len());
        assert_eq!(extra.len(), 1 + self.resources.len());
        if current[0] + extra[0] > self.capacities[k] as f64 * slack {
            return false;
        }
        for (r, res) in self.resources.iter().enumerate() {
            if current[1 + r] + extra[1 + r] > res.capacity(k) as f64 * slack {
                return false;
            }
        }
        true
    }

    /// The demand vector of object `i` across storage (entry 0) and every
    /// secondary resource.
    #[must_use]
    pub fn demand_vector(&self, i: ObjectId) -> Vec<f64> {
        let mut v = Vec::with_capacity(1 + self.resources.len());
        v.push(self.sizes[i.index()] as f64);
        for res in &self.resources {
            v.push(res.demand(i.index()) as f64);
        }
        v
    }

    /// Iterator over object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.sizes.len() as u32).map(ObjectId)
    }

    /// Total object size `S = Σ s(i)`.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Total objective weight `Σ r·w` over all pairs — the communication
    /// cost of a placement that splits every pair, and the normalisation
    /// constant for "fraction of cost saved".
    #[must_use]
    pub fn total_pair_weight(&self) -> f64 {
        self.pairs.iter().map(Pair::weight).sum()
    }

    /// Returns `true` if all objects could fit under the node capacities in
    /// aggregate (a necessary feasibility condition).
    #[must_use]
    pub fn aggregate_capacity_suffices(&self) -> bool {
        let cap: u64 = self.capacities.iter().sum();
        self.total_size() <= cap
    }

    /// Restriction of this problem to `keep` (in the given order): returns
    /// the subproblem plus the mapping from new ids to original ids. Pairs
    /// with either endpoint outside `keep` are dropped. Node capacities are
    /// copied unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains duplicates or unknown objects.
    #[must_use]
    pub fn restrict_to(&self, keep: &[ObjectId]) -> (CcaProblem, Vec<ObjectId>) {
        let mut old_to_new: HashMap<ObjectId, ObjectId> = HashMap::with_capacity(keep.len());
        for (new_idx, &old) in keep.iter().enumerate() {
            assert!(old.index() < self.num_objects(), "unknown object {old}");
            let prev = old_to_new.insert(old, ObjectId(new_idx as u32));
            assert!(prev.is_none(), "duplicate object {old} in keep list");
        }
        let names = keep.iter().map(|&o| self.names[o.index()].clone()).collect();
        let sizes = keep.iter().map(|&o| self.sizes[o.index()]).collect();
        let pairs: Vec<Pair> = self
            .pairs
            .iter()
            .filter_map(|p| {
                let a = old_to_new.get(&p.a)?;
                let b = old_to_new.get(&p.b)?;
                Some(Pair {
                    a: *a.min(b),
                    b: *a.max(b),
                    correlation: p.correlation,
                    comm_cost: p.comm_cost,
                })
            })
            .collect();
        // NOTE: the restricted pair list stays in *storage order* of the
        // parent (filtered, endpoints remapped) — it is NOT re-sorted by
        // the new (a, b). Both the cost summation order and the LP column
        // order ride on this, so the graph is rebuilt over the list as-is.
        let graph = CorrelationGraph::build(keep.len(), &pairs);
        // A sharded parent yields a sharded subproblem: same shard count,
        // rebuilt over the restricted pair list (a pure function of it, so
        // no thread pool is needed for the typically small subproblem).
        let sharded = self
            .sharded
            .as_ref()
            .map(|s| ShardedGraph::build(keep.len(), &pairs, s.shard_count(), 1));
        (
            CcaProblem {
                names,
                sizes,
                capacities: self.capacities.clone(),
                pairs,
                resources: self.resources.iter().map(|r| r.restrict(keep)).collect(),
                graph,
                sharded,
            },
            keep.to_vec(),
        )
    }

    /// Returns a copy with node capacities replaced.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty.
    #[must_use]
    pub fn with_capacities(&self, capacities: Vec<u64>) -> CcaProblem {
        assert!(!capacities.is_empty(), "problem needs at least one node");
        assert!(
            self.resources.is_empty() || capacities.len() == self.capacities.len(),
            "cannot change the node count of a problem with secondary resources"
        );
        CcaProblem {
            capacities,
            ..self.clone()
        }
    }

    /// Keeps only the `max_pairs` heaviest pairs by objective weight
    /// (ties by pair id), per the paper's sparse-`E` assumption (§3.1).
    /// Returns the number of pairs dropped.
    pub fn prune_pairs(&mut self, max_pairs: usize) -> usize {
        if self.pairs.len() <= max_pairs {
            return 0;
        }
        self.pairs.sort_unstable_by(|x, y| {
            y.weight()
                .partial_cmp(&x.weight())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((x.a, x.b).cmp(&(y.a, y.b)))
        });
        let dropped = self.pairs.len() - max_pairs;
        self.pairs.truncate(max_pairs);
        // The surviving pairs stay in the weight-sorted order the truncate
        // left them in (NOT re-sorted by (a, b)); rebuild the CSR view over
        // that exact order.
        self.graph = CorrelationGraph::build(self.sizes.len(), &self.pairs);
        if let Some(s) = &self.sharded {
            self.sharded = Some(ShardedGraph::build(
                self.sizes.len(),
                &self.pairs,
                s.shard_count(),
                1,
            ));
        }
        dropped
    }
}

/// Builder for [`CcaProblem`].
#[derive(Debug, Clone, Default)]
pub struct CcaProblemBuilder {
    names: Vec<String>,
    name_set: HashSet<String>,
    sizes: Vec<u64>,
    capacities: Vec<u64>,
    pair_weights: HashMap<(ObjectId, ObjectId), (f64, f64)>,
    resources: Vec<Resource>,
    error: Option<ProblemError>,
}

impl CcaProblemBuilder {
    /// Adds an object of size `size` and returns its id. `name` feeds
    /// hash-based placement and diagnostics.
    ///
    /// Names must be unique: a duplicate would silently collide
    /// hash-placement buckets, so it is recorded as a
    /// [`ProblemError::DuplicateName`] and surfaced by
    /// [`CcaProblemBuilder::build`].
    pub fn add_object(&mut self, name: impl Into<String>, size: u64) -> ObjectId {
        let id = ObjectId(self.sizes.len() as u32);
        let name = name.into();
        if !self.name_set.insert(name.clone()) && self.error.is_none() {
            self.error = Some(ProblemError::DuplicateName(name.clone()));
        }
        self.names.push(name);
        self.sizes.push(size);
        id
    }

    /// Records a correlated pair. Repeated `(a, b)` pairs accumulate their
    /// correlations (keeping the maximum communication cost), matching how
    /// correlations add over disjoint query populations.
    ///
    /// # Errors
    ///
    /// Returns an error for self-pairs, unknown objects, or negative /
    /// non-finite values.
    pub fn add_pair(
        &mut self,
        a: ObjectId,
        b: ObjectId,
        correlation: f64,
        comm_cost: f64,
    ) -> Result<(), ProblemError> {
        if a == b {
            return Err(ProblemError::SelfPair(a));
        }
        for o in [a, b] {
            if o.index() >= self.sizes.len() {
                return Err(ProblemError::UnknownObject(o));
            }
        }
        if !(correlation.is_finite() && correlation >= 0.0) {
            return Err(ProblemError::InvalidNumber(format!(
                "correlation of ({a},{b}) is {correlation}"
            )));
        }
        if !(comm_cost.is_finite() && comm_cost >= 0.0) {
            return Err(ProblemError::InvalidNumber(format!(
                "comm cost of ({a},{b}) is {comm_cost}"
            )));
        }
        let key = (a.min(b), a.max(b));
        let entry = self.pair_weights.entry(key).or_insert((0.0, 0.0));
        entry.0 += correlation;
        entry.1 = entry.1.max(comm_cost);
        Ok(())
    }

    /// Gives the problem `num_nodes` nodes of equal `capacity`.
    pub fn uniform_capacities(&mut self, num_nodes: usize, capacity: u64) -> &mut Self {
        self.capacities = vec![capacity; num_nodes];
        self
    }

    /// Gives the problem explicit per-node capacities.
    pub fn capacities(&mut self, capacities: Vec<u64>) -> &mut Self {
        self.capacities = capacities;
        self
    }

    /// Registers a secondary capacity constraint (paper 3.3), e.g.
    /// network bandwidth or CPU. Vector lengths are validated at
    /// [`CcaProblemBuilder::build`].
    pub fn add_resource(&mut self, resource: Resource) -> &mut Self {
        self.resources.push(resource);
        self
    }

    /// Finalises the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::NoNodes`] if no capacities were set, or any
    /// error recorded during building.
    pub fn build(&mut self) -> Result<CcaProblem, ProblemError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.capacities.is_empty() {
            return Err(ProblemError::NoNodes);
        }
        if let Some(i) = self.sizes.iter().position(|&s| s == 0) {
            return Err(ProblemError::ZeroSizeObject(ObjectId(i as u32)));
        }
        if self.capacities.iter().all(|&c| c == 0) {
            return Err(ProblemError::ZeroCapacity);
        }
        let mut pairs: Vec<Pair> = self
            .pair_weights
            .iter()
            .filter(|&(_, &(r, w))| r > 0.0 && w > 0.0)
            .map(|(&(a, b), &(correlation, comm_cost))| Pair {
                a,
                b,
                correlation,
                comm_cost,
            })
            .collect();
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        for res in &self.resources {
            if let Err(e) = res.validate(self.sizes.len(), self.capacities.len()) {
                return Err(ProblemError::Resource(e));
            }
        }
        let graph = CorrelationGraph::try_build(self.sizes.len(), &pairs)?;
        Ok(CcaProblem {
            names: self.names.clone(),
            sizes: self.sizes.clone(),
            capacities: self.capacities.clone(),
            pairs,
            resources: self.resources.clone(),
            graph,
            sharded: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("alpha", 10);
        let o1 = b.add_object("beta", 20);
        let o2 = b.add_object("gamma", 30);
        b.add_pair(o0, o1, 0.5, 10.0).unwrap();
        b.add_pair(o2, o0, 0.25, 8.0).unwrap();
        b.uniform_capacities(2, 40).build().unwrap()
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.num_objects(), 3);
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.size(ObjectId(1)), 20);
        assert_eq!(p.capacity(0), 40);
        assert_eq!(p.total_size(), 60);
        assert_eq!(p.name(ObjectId(2)), "gamma");
        assert!(p.aggregate_capacity_suffices());
        assert!((p.total_pair_weight() - (5.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn pairs_are_normalised_and_sorted() {
        let p = sample();
        assert_eq!(p.pairs().len(), 2);
        for pair in p.pairs() {
            assert!(pair.a < pair.b);
        }
        assert!(p.pairs().windows(2).all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b)));
    }

    #[test]
    fn duplicate_pairs_accumulate_correlation() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 1);
        let c = b.add_object("b", 1);
        b.add_pair(a, c, 0.1, 5.0).unwrap();
        b.add_pair(c, a, 0.2, 3.0).unwrap();
        let p = b.uniform_capacities(1, 10).build().unwrap();
        assert_eq!(p.pairs().len(), 1);
        assert!((p.pairs()[0].correlation - 0.3).abs() < 1e-12);
        assert!((p.pairs()[0].comm_cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_pairs() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 1);
        assert!(matches!(
            b.add_pair(a, a, 0.1, 1.0),
            Err(ProblemError::SelfPair(_))
        ));
        assert!(matches!(
            b.add_pair(a, ObjectId(9), 0.1, 1.0),
            Err(ProblemError::UnknownObject(_))
        ));
        assert!(matches!(
            b.add_pair(a, a, f64::NAN, 1.0),
            Err(ProblemError::SelfPair(_))
        ));
        let c = b.add_object("c", 1);
        assert!(matches!(
            b.add_pair(a, c, -0.5, 1.0),
            Err(ProblemError::InvalidNumber(_))
        ));
        assert!(matches!(
            b.add_pair(a, c, 0.5, f64::INFINITY),
            Err(ProblemError::InvalidNumber(_))
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("same", 1);
        let c = b.add_object("same", 2);
        assert_ne!(a, c, "ids still advance so pair recording stays sane");
        assert!(matches!(
            b.uniform_capacities(2, 10).build(),
            Err(ProblemError::DuplicateName(name)) if name == "same"
        ));
    }

    #[test]
    fn graph_tracks_pairs_through_restrict_and_prune() {
        let p = sample();
        assert_eq!(p.graph().num_edges(), p.pairs().len());
        let (sub, _) = p.restrict_to(&[ObjectId(2), ObjectId(0)]);
        assert_eq!(sub.graph().num_edges(), sub.pairs().len());
        assert_eq!(sub.graph().num_objects(), 2);
        let mut pruned = sample();
        pruned.prune_pairs(1);
        assert_eq!(pruned.graph().num_edges(), 1);
        let edge = pruned.graph().edge(crate::graph::EdgeId(0));
        assert_eq!((edge.a, edge.b), (pruned.pairs()[0].a, pruned.pairs()[0].b));
    }

    #[test]
    fn build_without_nodes_fails() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        assert!(matches!(b.build(), Err(ProblemError::NoNodes)));
    }

    #[test]
    fn build_rejects_zero_size_objects() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        b.add_object("ghost", 0);
        assert!(matches!(
            b.uniform_capacities(2, 10).build(),
            Err(ProblemError::ZeroSizeObject(ObjectId(1)))
        ));
    }

    #[test]
    fn build_rejects_all_zero_capacities() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        assert!(matches!(
            b.uniform_capacities(3, 0).build(),
            Err(ProblemError::ZeroCapacity)
        ));
        // A single dead node among live ones stays legal: it models a
        // failed node the resilience layer routes around.
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        assert!(b.capacities(vec![0, 10]).build().is_ok());
    }

    #[test]
    fn zero_weight_pairs_are_dropped() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 1);
        let c = b.add_object("c", 1);
        b.add_pair(a, c, 0.0, 5.0).unwrap();
        let p = b.uniform_capacities(1, 10).build().unwrap();
        assert!(p.pairs().is_empty());
    }

    #[test]
    fn restrict_to_remaps_pairs() {
        let p = sample();
        let (sub, mapping) = p.restrict_to(&[ObjectId(2), ObjectId(0)]);
        assert_eq!(sub.num_objects(), 2);
        assert_eq!(mapping, vec![ObjectId(2), ObjectId(0)]);
        assert_eq!(sub.size(ObjectId(0)), 30); // gamma
        assert_eq!(sub.pairs().len(), 1); // only (alpha,gamma) survives
        let pair = sub.pairs()[0];
        assert!((pair.weight() - 2.0).abs() < 1e-12);
        assert_eq!(sub.name(ObjectId(1)), "alpha");
    }

    #[test]
    fn prune_pairs_keeps_heaviest() {
        let mut p = sample();
        let dropped = p.prune_pairs(1);
        assert_eq!(dropped, 1);
        assert_eq!(p.pairs().len(), 1);
        assert!((p.pairs()[0].weight() - 5.0).abs() < 1e-12);
        assert_eq!(p.prune_pairs(5), 0);
    }

    #[test]
    fn eval_dispatch_matches_flat_graph_bits() {
        let mut p = sample();
        let pl = Placement::new(vec![0, 1, 0], 2);
        let flat_cost = p.graph().cost(&pl);
        // Disabled: eval_* are the flat walks.
        assert_eq!(p.eval_cost(&pl, 4).to_bits(), flat_cost.to_bits());
        assert!(p.sharded().is_none());
        // Enabled: same bits on this dyadic-weight instance, for any
        // shard count and thread count.
        for shards in [1, 2, 3] {
            p.set_sharding(shards, 2);
            assert_eq!(p.sharded().unwrap().shard_count(), shards);
            assert_eq!(p.eval_cost(&pl, 1).to_bits(), flat_cost.to_bits());
            assert_eq!(p.eval_cost(&pl, 4).to_bits(), flat_cost.to_bits());
            let batch = PlacementBatch::from_placements(std::slice::from_ref(&pl));
            assert_eq!(
                p.eval_cost_batch(&batch, 2)[0].to_bits(),
                p.graph().cost_batch(&batch)[0].to_bits()
            );
            for i in 0..3 {
                let i = ObjectId(i);
                for target in 0..2 {
                    assert_eq!(
                        p.eval_move_delta(&pl, i, target).to_bits(),
                        p.graph().move_delta(&pl, i, target).to_bits()
                    );
                }
                assert_eq!(
                    p.eval_move_delta_batch(&pl, i, &[0, 1]),
                    p.graph().move_delta_batch(&pl, i, &[0, 1])
                );
            }
        }
        p.clear_sharding();
        assert!(p.sharded().is_none());
    }

    #[test]
    fn sharding_propagates_through_restrict_and_prune() {
        let mut p = sample();
        p.set_sharding(2, 1);
        let (sub, _) = p.restrict_to(&[ObjectId(2), ObjectId(0)]);
        let sub_sharded = sub.sharded().expect("restrict_to must keep sharding");
        assert_eq!(sub_sharded.shard_count(), 2);
        assert_eq!(sub_sharded.num_objects(), 2);
        assert_eq!(sub_sharded.num_edges(), sub.pairs().len());
        let pl = Placement::new(vec![0, 1], 2);
        assert_eq!(
            sub.eval_cost(&pl, 2).to_bits(),
            sub.graph().cost(&pl).to_bits()
        );
        p.prune_pairs(1);
        let pruned_sharded = p.sharded().expect("prune_pairs must keep sharding");
        assert_eq!(pruned_sharded.shard_count(), 2);
        assert_eq!(pruned_sharded.num_edges(), 1);
        // An unsharded problem stays unsharded through both paths.
        let q = sample();
        assert!(q.restrict_to(&[ObjectId(0)]).0.sharded().is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate object")]
    fn restrict_rejects_duplicates() {
        let p = sample();
        let _ = p.restrict_to(&[ObjectId(0), ObjectId(0)]);
    }
}
