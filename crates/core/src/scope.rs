//! Important-object partial optimization (paper §3.1, §4.2).
//!
//! "By limiting the scope of placement optimization on a small number of
//! important objects (dominant in access frequency and/or object size) and
//! using random placement for others, we may trade communication overhead
//! savings for less offline computation."

use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use cca_hash::hash_placement;

/// The paper's §4.2 importance ranking over a CCA problem's objects:
///
/// 1. rank pairs by communication cost `r(i,j)·w(i,j)`, descending;
/// 2. take objects in order of first appearance in that pair ranking;
/// 3. objects involved in no pair rank last, ordered by size (descending)
///    then id — large never-paired objects matter for the capacity side of
///    the optimization even though they carry no communication.
#[must_use]
pub fn importance_ranking(problem: &CcaProblem) -> Vec<ObjectId> {
    // The (descending weight, ties (a, b)) pair order is precomputed on
    // the graph at build; the unique (a, b) tie-break makes it a total
    // order, so it equals the per-call sort this replaces.
    let graph = problem.graph();
    let mut seen = vec![false; problem.num_objects()];
    let mut ranking = Vec::with_capacity(problem.num_objects());
    for &e in graph.edges_by_weight() {
        let edge = graph.edge(e);
        for o in [edge.a, edge.b] {
            if !seen[o.index()] {
                seen[o.index()] = true;
                ranking.push(o);
            }
        }
    }
    let mut rest: Vec<ObjectId> = problem.objects().filter(|o| !seen[o.index()]).collect();
    rest.sort_unstable_by_key(|&o| (std::cmp::Reverse(problem.size(o)), o));
    ranking.extend(rest);
    ranking
}

/// Builds the subproblem for the `scope` objects.
///
/// When `deduct_hashed_load` is set, each node's capacity is reduced by the
/// expected load the hash-placed out-of-scope objects will add
/// (`out-of-scope total ÷ nodes`), so the optimizer leaves room for them;
/// capacities never go below zero.
///
/// # Panics
///
/// Panics if `scope` contains duplicates or unknown objects.
#[must_use]
pub fn scope_subproblem(
    problem: &CcaProblem,
    scope: &[ObjectId],
    deduct_hashed_load: bool,
) -> CcaProblem {
    let (mut sub, _) = problem.restrict_to(scope);
    if deduct_hashed_load {
        let scope_total: u64 = scope.iter().map(|&o| problem.size(o)).sum();
        let out_total = problem.total_size() - scope_total;
        let per_node = out_total / problem.num_nodes() as u64;
        let capacities = (0..problem.num_nodes())
            .map(|k| problem.capacity(k).saturating_sub(per_node))
            .collect();
        sub = sub.with_capacities(capacities);
    }
    sub
}

/// Composes a full placement from a subproblem placement over `scope` plus
/// hash placement for everything else (paper §4.1: "The remaining keyword
/// indices will be placed using random hashing").
///
/// # Panics
///
/// Panics if the dimensions disagree.
#[must_use]
pub fn compose_with_hashed_rest(
    problem: &CcaProblem,
    scope: &[ObjectId],
    sub_placement: &Placement,
) -> Placement {
    assert_eq!(
        sub_placement.num_objects(),
        scope.len(),
        "subproblem placement must cover exactly the scope"
    );
    assert_eq!(
        sub_placement.num_nodes(),
        problem.num_nodes(),
        "node counts disagree"
    );
    let n = problem.num_nodes();
    let mut assignment: Vec<u32> = problem
        .objects()
        .map(|o| hash_placement(problem.name(o), n) as u32)
        .collect();
    for (sub_idx, &orig) in scope.iter().enumerate() {
        assignment[orig.index()] = sub_placement.node_of(ObjectId(sub_idx as u32)) as u32;
    }
    Placement::new(assignment, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..6)
            .map(|i| b.add_object(format!("w{i}"), 10 * (i as u64 + 1)))
            .collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap(); // weight 9  (rank 1)
        b.add_pair(o[2], o[3], 0.5, 10.0).unwrap(); // weight 5  (rank 2)
        b.add_pair(o[1], o[2], 0.1, 10.0).unwrap(); // weight 1  (rank 3)
        // objects 4, 5 never paired; sizes 50, 60.
        b.uniform_capacities(2, 300).build().unwrap()
    }

    #[test]
    fn ranking_follows_pair_weights_then_size() {
        let p = problem();
        let r = importance_ranking(&p);
        assert_eq!(
            r,
            vec![
                ObjectId(0),
                ObjectId(1),
                ObjectId(2),
                ObjectId(3),
                ObjectId(5), // size 60 before size 50
                ObjectId(4),
            ]
        );
    }

    #[test]
    fn subproblem_keeps_in_scope_pairs_only() {
        let p = problem();
        let scope = [ObjectId(0), ObjectId(1), ObjectId(2)];
        let sub = scope_subproblem(&p, &scope, false);
        assert_eq!(sub.num_objects(), 3);
        // Pairs (0,1) and (1,2) survive; (2,3) is dropped.
        assert_eq!(sub.pairs().len(), 2);
        assert_eq!(sub.capacity(0), 300);
    }

    #[test]
    fn deducting_hashed_load_shrinks_capacity() {
        let p = problem();
        let scope = [ObjectId(0), ObjectId(1), ObjectId(2)];
        // Out of scope: sizes 40 + 50 + 60 = 150 over 2 nodes -> 75 each.
        let sub = scope_subproblem(&p, &scope, true);
        assert_eq!(sub.capacity(0), 300 - 75);
        assert_eq!(sub.capacity(1), 300 - 75);
    }

    #[test]
    fn capacity_deduction_saturates_at_zero() {
        let p = problem().with_capacities(vec![10, 10]);
        let scope = [ObjectId(0)];
        let sub = scope_subproblem(&p, &scope, true);
        assert_eq!(sub.capacity(0), 0);
    }

    #[test]
    fn composition_respects_scope_and_hashes_rest() {
        let p = problem();
        let scope = [ObjectId(0), ObjectId(1)];
        let sub = Placement::new(vec![1, 1], 2);
        let full = compose_with_hashed_rest(&p, &scope, &sub);
        assert_eq!(full.node_of(ObjectId(0)), 1);
        assert_eq!(full.node_of(ObjectId(1)), 1);
        // Out-of-scope objects get their hash node.
        for i in 2..6 {
            let expected = hash_placement(p.name(ObjectId(i)), 2);
            assert_eq!(full.node_of(ObjectId(i)), expected);
        }
    }

    #[test]
    fn full_scope_composition_is_pure_subplacement() {
        let p = problem();
        let scope: Vec<ObjectId> = p.objects().collect();
        let sub = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let full = compose_with_hashed_rest(&p, &scope, &sub);
        assert_eq!(full, sub);
    }
}
