//! Fractional placements — solutions of the LP relaxation.

use crate::problem::{CcaProblem, ObjectId};

/// A fractional object placement: `x[i][k]` is the fraction of object `i`
/// placed at node `k` (paper §2.2 — "an object can be split into arbitrary
/// parts and placed at different nodes").
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalPlacement {
    x: Vec<f64>,
    num_objects: usize,
    num_nodes: usize,
}

impl FractionalPlacement {
    /// Wraps a row-major `num_objects x num_nodes` matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match or any entry is non-finite.
    #[must_use]
    pub fn new(x: Vec<f64>, num_objects: usize, num_nodes: usize) -> Self {
        assert_eq!(x.len(), num_objects * num_nodes, "dimension mismatch");
        assert!(x.iter().all(|v| v.is_finite()), "non-finite entry");
        FractionalPlacement {
            x,
            num_objects,
            num_nodes,
        }
    }

    /// An integral placement viewed fractionally (used for seeding cuts and
    /// in tests).
    #[must_use]
    pub fn from_integral(assignment: &[u32], num_nodes: usize) -> Self {
        let mut x = vec![0.0; assignment.len() * num_nodes];
        for (i, &k) in assignment.iter().enumerate() {
            x[i * num_nodes + k as usize] = 1.0;
        }
        FractionalPlacement {
            x,
            num_objects: assignment.len(),
            num_nodes,
        }
    }

    /// Number of objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Fraction `x_{i,k}` of object `i` at node `k`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn fraction(&self, i: ObjectId, k: usize) -> f64 {
        assert!(k < self.num_nodes, "node out of range");
        self.x[i.index() * self.num_nodes + k]
    }

    /// Row of fractions for object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: ObjectId) -> &[f64] {
        let s = i.index() * self.num_nodes;
        &self.x[s..s + self.num_nodes]
    }

    /// The split indicator `z_{i,j} = ½ Σ_k |x_{i,k} − x_{j,k}|` of the
    /// paper's constraint (8): 0 when the fractional rows coincide, 1 when
    /// they have disjoint support.
    #[must_use]
    pub fn split_indicator(&self, i: ObjectId, j: ObjectId) -> f64 {
        let (ri, rj) = (self.row(i), self.row(j));
        0.5 * ri
            .iter()
            .zip(rj)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// The LP objective value `Σ_e r·w·z_e` this fractional placement
    /// attains on `problem` — also the **expected** communication cost of
    /// rounding it with Algorithm 2.1 (paper Theorem 2).
    #[must_use]
    pub fn expected_cost(&self, problem: &CcaProblem) -> f64 {
        problem
            .graph()
            .edges()
            .map(|e| e.weight * self.split_indicator(e.a, e.b))
            .sum()
    }

    /// Expected per-node loads `Σ_i x_{i,k}·s(i)` (paper Theorem 3 bounds
    /// these by the capacities).
    #[must_use]
    pub fn expected_loads(&self, problem: &CcaProblem) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_nodes];
        for i in problem.objects() {
            let s = problem.size(i) as f64;
            for (k, load) in loads.iter_mut().enumerate() {
                *load += s * self.fraction(i, k);
            }
        }
        loads
    }

    /// Checks the structural LP constraints: entries in `[0, 1]` and rows
    /// summing to 1, within `tol`.
    #[must_use]
    pub fn is_stochastic(&self, tol: f64) -> bool {
        if !self.x.iter().all(|&v| (-tol..=1.0 + tol).contains(&v)) {
            return false;
        }
        (0..self.num_objects).all(|i| {
            let s: f64 = self.row(ObjectId(i as u32)).iter().sum();
            (s - 1.0).abs() <= tol * self.num_nodes as f64
        })
    }

    /// Clamps entries into `[0, 1]` and renormalises each row to sum to 1
    /// (cleans up solver roundoff before rounding).
    ///
    /// # Panics
    ///
    /// Panics if a row sums to zero after clamping (cannot be renormalised).
    pub fn normalise(&mut self) {
        for v in &mut self.x {
            *v = v.clamp(0.0, 1.0);
        }
        for i in 0..self.num_objects {
            let s = i * self.num_nodes;
            let row = &mut self.x[s..s + self.num_nodes];
            let sum: f64 = row.iter().sum();
            assert!(sum > 0.0, "object {i} has an all-zero fractional row");
            for v in row {
                *v /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CcaProblem;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 4.0).unwrap();
        b.uniform_capacities(2, 20).build().unwrap()
    }

    #[test]
    fn split_indicator_extremes() {
        // Identical rows -> 0; disjoint rows -> 1.
        let same = FractionalPlacement::new(vec![0.5, 0.5, 0.5, 0.5], 2, 2);
        assert_eq!(same.split_indicator(ObjectId(0), ObjectId(1)), 0.0);
        let disjoint = FractionalPlacement::new(vec![1.0, 0.0, 0.0, 1.0], 2, 2);
        assert_eq!(disjoint.split_indicator(ObjectId(0), ObjectId(1)), 1.0);
        let half = FractionalPlacement::new(vec![1.0, 0.0, 0.5, 0.5], 2, 2);
        assert!((half.split_indicator(ObjectId(0), ObjectId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expected_cost_uses_pair_weights() {
        let p = problem();
        let f = FractionalPlacement::new(vec![1.0, 0.0, 0.5, 0.5], 2, 2);
        // weight 4, z = 0.5 -> expected 2.
        assert!((f.expected_cost(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expected_loads() {
        let p = problem();
        let f = FractionalPlacement::new(vec![1.0, 0.0, 0.5, 0.5], 2, 2);
        let loads = f.expected_loads(&p);
        assert!((loads[0] - 15.0).abs() < 1e-12);
        assert!((loads[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_check_and_normalise() {
        let mut f = FractionalPlacement::new(vec![1.2, -0.1, 0.3, 0.3], 2, 2);
        assert!(!f.is_stochastic(1e-9));
        f.normalise();
        assert!(f.is_stochastic(1e-9));
        assert!((f.fraction(ObjectId(0), 0) - 1.0).abs() < 1e-12);
        assert!((f.fraction(ObjectId(1), 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_integral_is_zero_one() {
        let f = FractionalPlacement::from_integral(&[1, 0, 1], 2);
        assert_eq!(f.fraction(ObjectId(0), 1), 1.0);
        assert_eq!(f.fraction(ObjectId(0), 0), 0.0);
        assert!(f.is_stochastic(0.0));
        assert_eq!(f.split_indicator(ObjectId(0), ObjectId(2)), 0.0);
        assert_eq!(f.split_indicator(ObjectId(0), ObjectId(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = FractionalPlacement::new(vec![1.0; 3], 2, 2);
    }
}
