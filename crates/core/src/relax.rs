//! LP relaxation of the CCA problem via delayed cut generation.
//!
//! The literal Figure-4 relaxation carries `|E|·|N|` auxiliary `y`
//! variables and `2·|E|·|N|` rows. This module solves the **same** LP with
//! an equivalent epigraph formulation that stays small:
//!
//! * variables: `x_{i,k}` plus one `z_e` per correlated pair, with
//!   objective `Σ_e r·w·z_e`;
//! * static rows: assignment (`Σ_k x_{i,k} = 1`) and capacity
//!   (`Σ_i s_i·x_{i,k} <= c_k`);
//! * generated rows: for a sign pattern `σ ∈ {−1,0,+1}^N`,
//!   `z_e >= ½ Σ_k σ_k (x_{i,k} − x_{j,k})`.
//!
//! Because `max_σ ½ Σ_k σ_k (x_{i,k} − x_{j,k}) = ½ Σ_k |x_{i,k} − x_{j,k}|
//! = z^Fig4_e`, separation is exact: given a candidate solution, the most
//! violated pattern is `σ_k = sign(x_{i,k} − x_{j,k})`. Iterating
//! solve-separate-add converges to the Figure-4 optimum in finitely many
//! rounds (there are finitely many sign patterns), and the tests verify the
//! two formulations agree numerically.

use crate::fractional::FractionalPlacement;
use crate::graph::EdgeId;
use crate::placement::Placement;
use crate::problem::CcaProblem;
use cca_lp::{Col, LpError, Model, Relation, SolverOptions};
use std::collections::HashSet;

/// How the fractional solution handed to Algorithm 2.1 is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RelaxMethod {
    /// Capacity-bounded clustering + first-fit-decreasing packing (see
    /// [`construct_clustered_vertex`]). Not LP-*optimal* — the LP optimum
    /// is a degenerate 0 (see [`construct_optimal_vertex`]) — but the
    /// fractional solution whose Algorithm-2.1 rounding actually yields
    /// the balanced, low-communication placements the paper reports. The
    /// default.
    #[default]
    ClusteredVertex,
    /// Construct an exactly LP-optimal vertex combinatorially (see
    /// [`construct_optimal_vertex`]). Demonstrates the relaxation's
    /// degeneracy; rounding it co-locates whole correlation components.
    CombinatorialVertex,
    /// Solve by simplex with delayed cut generation. Exercises the full LP
    /// machinery; used for cross-validation and small instances.
    CuttingPlane,
}

/// Why [`solve_relaxation`] stopped (see [`RelaxOutcome::stop`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// Separation found no violated cut: the Figure-4 optimum was reached.
    Converged,
    /// [`RelaxOptions::max_rounds`] solve/separate rounds were exhausted.
    RoundLimit,
    /// The LP iteration budget ([`RelaxOptions::max_total_lp_iterations`]
    /// or the per-solve [`SolverOptions::max_iterations`]) ran out; the
    /// outcome holds the best fractional solution found so far.
    IterationCap,
    /// The wall-clock deadline ([`SolverOptions::deadline`]) passed; the
    /// outcome holds the best fractional solution found so far.
    Deadline,
    /// The simplex raised a numerical-health alarm (non-finite values or a
    /// stalled objective) after at least one clean round; the outcome holds
    /// the last healthy fractional solution.
    NumericalAlarm,
}

impl StopReason {
    /// Short machine-readable label (used in degradation reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::RoundLimit => "round-limit",
            StopReason::IterationCap => "iteration-cap",
            StopReason::Deadline => "deadline",
            StopReason::NumericalAlarm => "numerical-alarm",
        }
    }
}

/// Options for [`solve_relaxation`].
#[derive(Debug, Clone)]
pub struct RelaxOptions {
    /// Solution method.
    pub method: RelaxMethod,
    /// Maximum solve/separate rounds before giving up (the outcome then has
    /// `converged = false` and its objective is a lower bound).
    pub max_rounds: usize,
    /// Budget on simplex iterations summed across all cut-generation
    /// rounds; once exhausted the solve stops with the best solution so
    /// far ([`StopReason::IterationCap`]). `0` means no budget.
    pub max_total_lp_iterations: u64,
    /// A cut must be violated by more than this to be added.
    pub tolerance: f64,
    /// At most this many cuts are added per round (most violated first).
    pub max_cuts_per_round: usize,
    /// Entries of `|x_{i,k} − x_{j,k}|` below this are given `σ_k = 0`,
    /// keeping cut rows sparse.
    pub sign_epsilon: f64,
    /// Options forwarded to the sparse simplex.
    pub solver: SolverOptions,
    /// Use the dense reference simplex instead (tiny instances / tests).
    pub use_dense_solver: bool,
}

impl Default for RelaxOptions {
    fn default() -> Self {
        RelaxOptions {
            method: RelaxMethod::default(),
            max_rounds: 60,
            max_total_lp_iterations: 0,
            tolerance: 1e-6,
            max_cuts_per_round: 8192,
            sign_epsilon: 1e-9,
            solver: SolverOptions::default(),
            use_dense_solver: false,
        }
    }
}

/// Result of [`solve_relaxation`].
#[derive(Debug, Clone)]
pub struct RelaxOutcome {
    /// The optimal fractional placement (normalised).
    pub fractional: FractionalPlacement,
    /// LP objective — the minimum **expected** communication cost
    /// achievable by any (randomised) placement, and a lower bound on every
    /// integral placement's cost.
    pub objective: f64,
    /// Solve/separate rounds performed.
    pub rounds: usize,
    /// Total cuts in the final LP.
    pub cuts: usize,
    /// Whether separation found no violated cut (i.e. the Figure-4 optimum
    /// was reached). Equivalent to `stop == StopReason::Converged`.
    pub converged: bool,
    /// Total simplex iterations across rounds.
    pub lp_iterations: u64,
    /// Why the solve stopped (budget accounting for the resilience layer).
    pub stop: StopReason,
}

/// One generated cut: pair `e` with sparse sign pattern over nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Cut {
    pair: usize,
    /// `(node, positive?)` entries; `positive` means `σ_k = +1`.
    signs: Vec<(u32, bool)>,
}

/// Solves the CCA LP relaxation for `problem`.
///
/// `seed` optionally provides an integral placement (e.g. the greedy
/// heuristic's) whose tight cuts are added up front, which typically
/// removes 1–2 rounds of separation.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the capacities cannot host the objects even
/// fractionally; other solver errors propagate.
pub fn solve_relaxation(
    problem: &CcaProblem,
    seed: Option<&Placement>,
    options: &RelaxOptions,
) -> Result<RelaxOutcome, LpError> {
    match options.method {
        RelaxMethod::ClusteredVertex => construct_clustered_vertex(problem),
        RelaxMethod::CombinatorialVertex => construct_optimal_vertex(problem),
        RelaxMethod::CuttingPlane => solve_by_cutting_planes(problem, seed, options),
    }
}

/// Builds the fractional solution rounded by the production LPRR path:
/// objects are agglomerated into clusters no larger than the smallest node
/// ([`crate::cluster::capacity_bounded_clusters`]), and the clusters are
/// packed onto nodes first-fit-decreasing. Clusters that fit get integral
/// rows (deterministic under rounding); clusters stranded by fragmentation
/// are spread fractionally.
///
/// The returned [`RelaxOutcome::objective`] is this solution's expected
/// rounding cost (Theorem 2 applies to *any* fractional solution, not just
/// an optimal one). It upper-bounds the degenerate LP optimum of 0 and is
/// typically a small fraction of the total pair weight.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the total object size exceeds the total
/// capacity.
pub fn construct_clustered_vertex(problem: &CcaProblem) -> Result<RelaxOutcome, LpError> {
    let t = problem.num_objects();
    let n = problem.num_nodes();
    let total_cap: u64 = (0..n).map(|k| problem.capacity(k)).sum();
    if problem.total_size() > total_cap {
        return Err(LpError::Infeasible);
    }
    // Secondary resources must also fit in aggregate.
    for res in problem.resources() {
        if res.total_demand() > res.total_capacity() {
            return Err(LpError::Infeasible);
        }
    }
    let max_bytes = (0..n).map(|k| problem.capacity(k)).min().expect("n > 0");
    let clusters = crate::cluster::capacity_bounded_clusters(problem, max_bytes);

    // First-fit-decreasing over remaining multi-dimensional capacity
    // (dimension 0 is storage, then one per secondary resource).
    let dims = 1 + problem.resources().len();
    let cluster_demand = |m: &[crate::problem::ObjectId]| -> Vec<f64> {
        let mut d = vec![0.0f64; dims];
        for &o in m {
            d[0] += problem.size(o) as f64;
            for (r, res) in problem.resources().iter().enumerate() {
                d[1 + r] += res.demand(o.index()) as f64;
            }
        }
        d
    };
    let mut sized: Vec<(Vec<f64>, &Vec<crate::problem::ObjectId>)> = clusters
        .iter()
        .map(|m| (cluster_demand(m), m))
        .collect();
    sized.sort_unstable_by(|(da, ma), (db, mb)| {
        db[0]
            .partial_cmp(&da[0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ma[0].cmp(&mb[0]))
    });

    let mut rem: Vec<Vec<f64>> = (0..n)
        .map(|k| {
            let mut v = vec![problem.capacity(k) as f64];
            for res in problem.resources() {
                v.push(res.capacity(k) as f64);
            }
            v
        })
        .collect();
    let fits = |rem_k: &[f64], demand: &[f64]| {
        rem_k.iter().zip(demand).all(|(&r, &d)| r + 1e-9 >= d)
    };
    let mut x = vec![0.0f64; t * n];
    for (demand, m) in sized {
        let mut row = vec![0.0f64; n];
        // Best-fit on storage among nodes that fit in every dimension.
        let fit = (0..n)
            .filter(|&k| fits(&rem[k], &demand))
            .min_by(|&a, &b| rem[a][0].partial_cmp(&rem[b][0]).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(k) = fit {
            row[k] = 1.0;
            for (dst, d) in rem[k].iter_mut().zip(&demand) {
                *dst -= d;
            }
        } else if demand.iter().all(|&d| d == 0.0) {
            row[0] = 1.0;
        } else {
            // Fragmented: spread fractionally, at each step choosing the
            // node that admits the largest feasible fraction across every
            // dimension (not just storage — a storage-rich node may have
            // no bandwidth left).
            let feasible_take = |rem_k: &[f64], remaining: f64| {
                let mut take = remaining;
                for (dim, &d) in demand.iter().enumerate() {
                    if d > 0.0 {
                        take = take.min((rem_k[dim] / d).max(0.0));
                    }
                }
                take
            };
            let mut assigned = 0.0f64;
            while assigned < 1.0 - 1e-12 {
                let remaining = 1.0 - assigned;
                let k = (0..n)
                    .max_by(|&a, &b| {
                        feasible_take(&rem[a], remaining)
                            .partial_cmp(&feasible_take(&rem[b], remaining))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                let take = feasible_take(&rem[k], remaining);
                if take <= 1e-15 {
                    return Err(LpError::Numerical(
                        "fractional packing stalled despite sufficient aggregate capacity"
                            .into(),
                    ));
                }
                for (dim, &d) in demand.iter().enumerate() {
                    rem[k][dim] -= take * d;
                }
                row[k] += take;
                assigned += take;
            }
        }
        for &o in m {
            x[o.index() * n..(o.index() + 1) * n].copy_from_slice(&row);
        }
    }

    let mut fractional = FractionalPlacement::new(x, t, n);
    fractional.normalise();
    let objective = fractional.expected_cost(problem);
    Ok(RelaxOutcome {
        fractional,
        objective,
        rounds: 0,
        cuts: 0,
        converged: true,
        lp_iterations: 0,
        stop: StopReason::Converged,
    })
}

/// Constructs an **exactly optimal** solution of the Figure-4 LP relaxation
/// without running a simplex, exploiting its degeneracy:
///
/// * The objective `Σ_e r·w·z_e` is non-negative, and `z_e = 0` for every
///   pair is achievable by giving all objects of each correlation
///   component the same fractional row. Such rows exist within the
///   capacity constraints if and only if the aggregate capacity covers the
///   total object size — which is also the LP's feasibility condition. So
///   the LP optimum is **0 for every feasible instance** (an unbounded
///   integrality gap; see DESIGN.md §"Reproduction findings").
/// * Among the many optimal solutions, this routine picks a *useful
///   vertex*: components are packed onto nodes first-fit-decreasing, so
///   most components get a fully integral row (and round deterministically
///   onto one node), and only components that do not fit anywhere are
///   fractionally spread.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the total object size exceeds the total
/// capacity.
pub fn construct_optimal_vertex(problem: &CcaProblem) -> Result<RelaxOutcome, LpError> {
    if !problem.resources().is_empty() {
        // With secondary capacity constraints the shared-row argument no
        // longer guarantees a 0 optimum; use the cutting-plane method for
        // an exact relaxation of such problems.
        return Err(LpError::InvalidModel(
            "the degenerate optimal-vertex construction requires a problem without              secondary resources; use RelaxMethod::CuttingPlane"
                .into(),
        ));
    }
    let t = problem.num_objects();
    let n = problem.num_nodes();
    let total_cap: u64 = (0..n).map(|k| problem.capacity(k)).sum();
    if problem.total_size() > total_cap {
        return Err(LpError::Infeasible);
    }

    // Connected components of the pair graph (union-find).
    let mut parent: Vec<usize> = (0..t).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for edge in problem.graph().edges() {
        let (ra, rb) = (
            find(&mut parent, edge.a.index()),
            find(&mut parent, edge.b.index()),
        );
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut members: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..t {
        let r = find(&mut parent, i);
        members.entry(r).or_default().push(i);
    }
    let mut components: Vec<(u64, Vec<usize>)> = members
        .into_values()
        .map(|m| {
            let size: u64 = m
                .iter()
                .map(|&i| problem.size(crate::problem::ObjectId(i as u32)))
                .sum();
            (size, m)
        })
        .collect();
    // Largest first; ties by smallest member id for determinism.
    components.sort_unstable_by_key(|(size, m)| {
        (std::cmp::Reverse(*size), m.iter().copied().min().unwrap_or(0))
    });

    // First-fit-decreasing fractional packing.
    let mut rem: Vec<f64> = (0..n).map(|k| problem.capacity(k) as f64).collect();
    let mut x = vec![0.0f64; t * n];
    for (size, m) in components {
        let mut row = vec![0.0f64; n];
        if size == 0 {
            // Weightless component: park it on the emptiest node.
            let k = (0..n)
                .max_by(|&a, &b| rem[a].partial_cmp(&rem[b]).unwrap_or(std::cmp::Ordering::Equal))
                .expect("n > 0");
            row[k] = 1.0;
        } else {
            let mut assigned = 0.0f64;
            // Whole-component fit first (keeps rows integral), then spread.
            if let Some(k) = (0..n).find(|&k| rem[k] >= size as f64) {
                row[k] = 1.0;
                rem[k] -= size as f64;
                assigned = 1.0;
            }
            while assigned < 1.0 - 1e-12 {
                let k = (0..n)
                    .max_by(|&a, &b| {
                        rem[a].partial_cmp(&rem[b]).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                let take = ((rem[k] / size as f64).max(0.0)).min(1.0 - assigned);
                debug_assert!(take > 0.0, "aggregate capacity was checked above");
                if take <= 0.0 {
                    return Err(LpError::Numerical(
                        "fractional packing stalled despite sufficient aggregate capacity".into(),
                    ));
                }
                row[k] += take;
                rem[k] -= take * size as f64;
                assigned += take;
            }
        }
        for &i in &m {
            x[i * n..(i + 1) * n].copy_from_slice(&row);
        }
    }

    let mut fractional = FractionalPlacement::new(x, t, n);
    fractional.normalise();
    let objective = fractional.expected_cost(problem);
    debug_assert!(objective.abs() < 1e-9, "vertex must be optimal (0)");
    Ok(RelaxOutcome {
        fractional,
        objective,
        rounds: 0,
        cuts: 0,
        converged: true,
        lp_iterations: 0,
        stop: StopReason::Converged,
    })
}

fn solve_by_cutting_planes(
    problem: &CcaProblem,
    seed: Option<&Placement>,
    options: &RelaxOptions,
) -> Result<RelaxOutcome, LpError> {
    let t = problem.num_objects();
    let n = problem.num_nodes();

    let mut cuts: Vec<Cut> = Vec::new();
    let mut cut_set: HashSet<Cut> = HashSet::new();

    // Seed cuts from an integral placement: σ_k = +1 on i's node, −1 on
    // j's node (exactly the tight pattern at that placement).
    if let Some(p) = seed {
        if p.num_objects() != t {
            return Err(LpError::InvalidModel(format!(
                "seed placement has wrong object count: expected {t}, got {}",
                p.num_objects()
            )));
        }
        if p.num_nodes() != n {
            return Err(LpError::InvalidModel(format!(
                "seed placement has wrong node count: expected {n}, got {}",
                p.num_nodes()
            )));
        }
        for edge in problem.graph().edges() {
            let (ka, kb) = (p.node_of(edge.a), p.node_of(edge.b));
            if ka != kb {
                let mut signs = vec![(ka as u32, true), (kb as u32, false)];
                signs.sort_unstable();
                let cut = Cut { pair: edge.id.index(), signs };
                if cut_set.insert(cut.clone()) {
                    cuts.push(cut);
                }
            }
        }
    }

    let mut rounds = 0;
    let mut lp_iterations = 0u64;
    let mut stop = StopReason::RoundLimit;
    let mut best: Option<(FractionalPlacement, f64)> = None;

    while rounds < options.max_rounds.max(1) {
        // Budget checks between rounds: once a usable solution exists,
        // exhausting the wall clock or the iteration budget degrades to
        // best-so-far instead of erroring.
        if best.is_some() {
            if options
                .solver
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                stop = StopReason::Deadline;
                break;
            }
            if options.max_total_lp_iterations > 0
                && lp_iterations >= options.max_total_lp_iterations
            {
                stop = StopReason::IterationCap;
                break;
            }
        }
        rounds += 1;

        // Assemble the LP.
        let mut model = Model::minimize();
        let mut x_vars: Vec<Col> = Vec::with_capacity(t * n);
        for i in problem.objects() {
            for k in 0..n {
                x_vars.push(model.add_var(format!("x_{}_{k}", i.0), 0.0));
            }
        }
        let x = |i: usize, k: usize| x_vars[i * n + k];
        // One z column per graph edge, in [`EdgeId`] order — the stable
        // edge-order contract keeps simplex column order (and therefore
        // pivot sequences) identical to the historic pair enumeration.
        let z_vars: Vec<Col> = problem
            .graph()
            .edges()
            .map(|edge| model.add_var(format!("z_{}", edge.id.index()), edge.weight))
            .collect();

        for i in 0..t {
            model.add_constraint_with(
                format!("assign_{i}"),
                Relation::Eq,
                1.0,
                (0..n).map(|k| (x(i, k), 1.0)),
            );
        }
        for k in 0..n {
            model.add_constraint_with(
                format!("cap_{k}"),
                Relation::Le,
                problem.capacity(k) as f64,
                (0..t).map(|i| (x(i, k), problem.size(crate::problem::ObjectId(i as u32)) as f64)),
            );
        }
        // Secondary resource capacities (paper 3.3), one row per
        // (resource, node), exactly "in a way similar to (9)".
        for (r, res) in problem.resources().iter().enumerate() {
            for k in 0..n {
                model.add_constraint_with(
                    format!("res{r}_cap_{k}"),
                    Relation::Le,
                    res.capacity(k) as f64,
                    (0..t).map(|i| (x(i, k), res.demand(i) as f64)),
                );
            }
        }
        for (c, cut) in cuts.iter().enumerate() {
            let edge = problem.graph().edge(EdgeId(cut.pair as u32));
            let (ia, ib) = (edge.a.index(), edge.b.index());
            // z_e − ½ Σ σ_k x_{i,k} + ½ Σ σ_k x_{j,k} >= 0.
            let mut coeffs: Vec<(Col, f64)> = Vec::with_capacity(1 + 2 * cut.signs.len());
            coeffs.push((z_vars[cut.pair], 1.0));
            for &(k, positive) in &cut.signs {
                let s = if positive { 1.0 } else { -1.0 };
                coeffs.push((x(ia, k as usize), -0.5 * s));
                coeffs.push((x(ib, k as usize), 0.5 * s));
            }
            model.add_constraint_with(format!("cut_{c}"), Relation::Ge, 0.0, coeffs);
        }

        let solved = if options.use_dense_solver {
            model.solve_dense()
        } else {
            let mut solver_opts = options.solver.clone();
            if options.max_total_lp_iterations > 0 {
                let remaining = options.max_total_lp_iterations - lp_iterations;
                solver_opts.max_iterations = if solver_opts.max_iterations == 0 {
                    remaining
                } else {
                    solver_opts.max_iterations.min(remaining)
                };
            }
            model.solve(&solver_opts)
        };
        let sol = match solved {
            Ok(sol) => sol,
            // A budget or health failure mid-run degrades to the best
            // solution found by earlier rounds; with no earlier round the
            // error propagates.
            Err(LpError::IterationLimit { iterations }) if best.is_some() => {
                lp_iterations += iterations;
                stop = StopReason::IterationCap;
                break;
            }
            Err(LpError::DeadlineExceeded { iterations, .. }) if best.is_some() => {
                lp_iterations += iterations;
                stop = StopReason::Deadline;
                break;
            }
            Err(LpError::Numerical(_) | LpError::Stalled { .. }) if best.is_some() => {
                stop = StopReason::NumericalAlarm;
                break;
            }
            Err(e) => return Err(e),
        };
        lp_iterations += sol.iterations;

        let raw_x: Vec<f64> = x_vars.iter().map(|&c| sol.value(c)).collect();
        let mut frac = FractionalPlacement::new(raw_x, t, n);
        frac.normalise();

        // Separation: most violated sign pattern per pair.
        let mut violated: Vec<(f64, Cut)> = Vec::new();
        for edge in problem.graph().edges() {
            let e = edge.id.index();
            let z_val = sol.value(z_vars[e]);
            let true_z = frac.split_indicator(edge.a, edge.b);
            if true_z - z_val > options.tolerance {
                let (ra, rb) = (frac.row(edge.a), frac.row(edge.b));
                let mut signs: Vec<(u32, bool)> = Vec::new();
                for k in 0..n {
                    let diff = ra[k] - rb[k];
                    if diff > options.sign_epsilon {
                        signs.push((k as u32, true));
                    } else if diff < -options.sign_epsilon {
                        signs.push((k as u32, false));
                    }
                }
                if signs.is_empty() {
                    continue;
                }
                let cut = Cut { pair: e, signs };
                if !cut_set.contains(&cut) {
                    violated.push((true_z - z_val, cut));
                }
            }
        }

        if violated.is_empty() {
            stop = StopReason::Converged;
            let objective = frac.expected_cost(problem);
            best = Some((frac, objective));
            break;
        }

        violated.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (_, cut) in violated.into_iter().take(options.max_cuts_per_round) {
            cut_set.insert(cut.clone());
            cuts.push(cut);
        }

        let objective = frac.expected_cost(problem);
        best = Some((frac, objective));
    }

    let (fractional, objective) = best.expect("at least one round ran");
    Ok(RelaxOutcome {
        fractional,
        objective,
        rounds,
        cuts: cuts.len(),
        converged: stop == StopReason::Converged,
        lp_iterations,
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure4::Figure4Lp;
    use crate::problem::{CcaProblem, ObjectId};
    use cca_rand::rngs::StdRng;
    use cca_rand::{Rng, SeedableRng};

    fn cp() -> RelaxOptions {
        RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            ..RelaxOptions::default()
        }
    }

    fn tiny_problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 5);
        let c = b.add_object("b", 5);
        b.add_pair(a, c, 1.0, 10.0).unwrap();
        b.uniform_capacities(2, 10).build().unwrap()
    }

    #[test]
    fn colocatable_pair_costs_zero() {
        let p = tiny_problem();
        let out = solve_relaxation(&p, None, &cp()).unwrap();
        assert!(out.converged);
        assert!(out.objective.abs() < 1e-6, "objective {}", out.objective);
        assert!(out.fractional.is_stochastic(1e-6));
    }

    /// Tight-capacity pair: the relaxation exploits identical fractional
    /// rows (x = ½,½ for both objects) so its optimum is 0 — the capacity
    /// integrality gap discussed in figure4's tests. The cutting-plane
    /// formulation must find the same value as the literal Figure-4 LP.
    #[test]
    fn tight_capacity_pair_relaxes_to_zero() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 0.5, 6.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let out = solve_relaxation(&p, None, &cp()).unwrap();
        assert!(out.converged);
        assert!(out.objective.abs() < 1e-6, "objective {}", out.objective);
        // Expected loads stay within capacity (Theorem 3's premise).
        for (k, load) in out.fractional.expected_loads(&p).iter().enumerate() {
            assert!(*load <= p.capacity(k) as f64 + 1e-6);
        }
    }

    /// The cutting-plane solver reaches the degenerate optimum (0) on an
    /// instance whose integral optimum is 10 — mirroring figure4's
    /// `relaxation_is_degenerate_with_unbounded_gap`.
    #[test]
    fn degenerate_optimum_matches_figure4() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap();
        b.add_pair(o[1], o[2], 1.0, 3.0).unwrap();
        b.add_pair(o[0], o[2], 1.0, 2.0).unwrap();
        let p = b.uniform_capacities(3, 10).build().unwrap();
        let out = solve_relaxation(&p, None, &cp()).unwrap();
        assert!(out.converged);
        assert!(out.objective.abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn infeasible_is_reported() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 5).build().unwrap();
        assert!(matches!(
            solve_relaxation(&p, None, &cp()),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn iteration_budget_degrades_to_best_so_far() {
        // The 3-clique needs more than one solve/separate round, so a
        // budget just below the unconstrained total must stop mid-run with
        // the best solution so far instead of erroring.
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap();
        b.add_pair(o[1], o[2], 1.0, 3.0).unwrap();
        b.add_pair(o[0], o[2], 1.0, 2.0).unwrap();
        let p = b.uniform_capacities(3, 10).build().unwrap();
        let full = solve_relaxation(&p, None, &cp()).unwrap();
        assert_eq!(full.stop, StopReason::Converged);
        assert!(full.rounds > 1, "need a multi-round instance");
        assert!(full.lp_iterations > 1);
        let out = solve_relaxation(
            &p,
            None,
            &RelaxOptions {
                max_total_lp_iterations: full.lp_iterations - 1,
                ..cp()
            },
        )
        .unwrap();
        assert_eq!(out.stop, StopReason::IterationCap);
        assert!(!out.converged);
        assert!(out.lp_iterations <= full.lp_iterations);
        assert!(out.fractional.is_stochastic(1e-6));
    }

    #[test]
    fn expired_deadline_with_no_progress_propagates() {
        let p = tiny_problem();
        let mut o = cp();
        o.solver.deadline = Some(std::time::Instant::now());
        assert!(matches!(
            solve_relaxation(&p, None, &o),
            Err(LpError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn no_pairs_is_trivially_zero() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 5);
        b.add_object("b", 7);
        let p = b.uniform_capacities(2, 12).build().unwrap();
        let out = solve_relaxation(&p, None, &cp()).unwrap();
        assert!(out.converged);
        assert_eq!(out.objective, 0.0);
    }

    /// The cutting-plane optimum must equal the literal Figure-4 optimum on
    /// randomly generated small instances.
    #[test]
    fn agrees_with_figure4_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..20 {
            let t = 3 + rng.random_range(0..5);
            let n = 2 + rng.random_range(0..3);
            let mut b = CcaProblem::builder();
            let objs: Vec<_> = (0..t)
                .map(|i| b.add_object(format!("o{i}"), 1 + rng.random_range(0..6)))
                .collect();
            for i in 0..t {
                for j in i + 1..t {
                    if rng.random::<f64>() < 0.5 {
                        b.add_pair(
                            objs[i],
                            objs[j],
                            rng.random::<f64>(),
                            1.0 + rng.random::<f64>() * 5.0,
                        )
                        .unwrap();
                    }
                }
            }
            let total: u64 = objs.iter().map(|&o| 1 + o.0 as u64).sum::<u64>().max(8);
            let cap = (total / n as u64) + 4;
            let p = b.uniform_capacities(n, cap).build().unwrap();

            let fig4 = Figure4Lp::build(&p).solve(&Default::default());
            let cp = solve_relaxation(&p, None, &cp());
            match (fig4, cp) {
                (Ok((_, obj4)), Ok(out)) => {
                    assert!(out.converged, "trial {trial} did not converge");
                    assert!(
                        (obj4 - out.objective).abs() < 1e-5 * (1.0 + obj4.abs()),
                        "trial {trial}: figure4 {obj4} vs cutting-plane {}",
                        out.objective
                    );
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (f, c) => panic!("trial {trial}: figure4 {f:?} vs cutting-plane {c:?}"),
            }
        }
    }

    /// Seeding with a placement must not change the optimum.
    #[test]
    fn seeding_preserves_optimum() {
        let mut b = CcaProblem::builder();
        let objs: Vec<_> = (0..5).map(|i| b.add_object(format!("o{i}"), 2)).collect();
        b.add_pair(objs[0], objs[1], 1.0, 4.0).unwrap();
        b.add_pair(objs[1], objs[2], 1.0, 3.0).unwrap();
        b.add_pair(objs[2], objs[3], 1.0, 2.0).unwrap();
        b.add_pair(objs[3], objs[4], 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 6).build().unwrap();
        let plain = solve_relaxation(&p, None, &cp()).unwrap();
        let seed = Placement::new(vec![0, 0, 0, 1, 1], 2);
        let seeded = solve_relaxation(&p, Some(&seed), &cp()).unwrap();
        assert!(plain.converged && seeded.converged);
        assert!(
            (plain.objective - seeded.objective).abs() < 1e-6,
            "plain {} vs seeded {}",
            plain.objective,
            seeded.objective
        );
    }

    /// The LP objective is a lower bound on any integral placement's cost.
    #[test]
    fn objective_lower_bounds_integral_cost() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = CcaProblem::builder();
        let objs: Vec<_> = (0..6).map(|i| b.add_object(format!("o{i}"), 3)).collect();
        for i in 0..6 {
            for j in i + 1..6 {
                b.add_pair(objs[i], objs[j], rng.random::<f64>(), 2.0).unwrap();
            }
        }
        let p = b.uniform_capacities(3, 9).build().unwrap();
        let out = solve_relaxation(&p, None, &cp()).unwrap();
        // Check against 50 random feasible integral placements.
        for _ in 0..50 {
            let assignment: Vec<u32> = (0..6).map(|_| rng.random_range(0..3)).collect();
            let pl = Placement::new(assignment, 3);
            if pl.within_capacity(&p, 1.0) {
                assert!(
                    pl.communication_cost(&p) >= out.objective - 1e-6,
                    "integral {} below LP bound {}",
                    pl.communication_cost(&p),
                    out.objective
                );
            }
        }
        let _ = ObjectId(0);
    }

    #[test]
    fn dense_solver_path_works() {
        let p = tiny_problem();
        let out = solve_relaxation(
            &p,
            None,
            &RelaxOptions {
                use_dense_solver: true,
                method: RelaxMethod::CuttingPlane,
                ..RelaxOptions::default()
            },
        )
        .unwrap();
        assert!(out.converged);
        assert!(out.objective.abs() < 1e-6);
    }

    /// The combinatorial vertex construction attains the same optimum as
    /// the cutting-plane simplex (always 0 when feasible) and packs whole
    /// components integrally when they fit.
    #[test]
    fn vertex_construction_matches_cutting_plane() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..15 {
            let t = 2 + rng.random_range(0..6);
            let n = 2 + rng.random_range(0..3);
            let mut b = CcaProblem::builder();
            let objs: Vec<_> = (0..t)
                .map(|i| b.add_object(format!("o{i}"), 1 + rng.random_range(0..5)))
                .collect();
            for i in 0..t {
                for j in i + 1..t {
                    if rng.random::<f64>() < 0.4 {
                        b.add_pair(objs[i], objs[j], rng.random::<f64>(), 2.0).unwrap();
                    }
                }
            }
            let total: u64 = objs.iter().map(|&o| 1 + o.0 as u64).sum::<u64>().max(6);
            let cap = total / n as u64 + 3;
            let p = b.uniform_capacities(n, cap).build().unwrap();
            let vx = construct_optimal_vertex(&p);
            let cp_out = solve_relaxation(&p, None, &cp());
            match (vx, cp_out) {
                (Ok(v), Ok(c)) => {
                    assert!(c.converged, "trial {trial}");
                    assert!(
                        (v.objective - c.objective).abs() < 1e-6,
                        "trial {trial}: vertex {} vs cutting-plane {}",
                        v.objective,
                        c.objective
                    );
                    assert!(v.fractional.is_stochastic(1e-9));
                    // Expected loads respect capacity.
                    for (k, load) in v.fractional.expected_loads(&p).iter().enumerate() {
                        assert!(*load <= p.capacity(k) as f64 + 1e-6, "trial {trial} node {k}");
                    }
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (v, c) => panic!("trial {trial}: vertex {v:?} vs cutting-plane {c:?}"),
            }
        }
    }

    #[test]
    fn vertex_packs_fitting_components_integrally() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 5.0).unwrap();
        b.add_pair(o[2], o[3], 0.9, 5.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let out = construct_optimal_vertex(&p).unwrap();
        // Both pairs fit on a node each: rows must be integral and equal
        // within pairs.
        for pair in [(o[0], o[1]), (o[2], o[3])] {
            assert!(out.fractional.split_indicator(pair.0, pair.1) < 1e-12);
            for k in 0..2 {
                let v = out.fractional.fraction(pair.0, k);
                assert!(v == 0.0 || v == 1.0, "expected integral row, got {v}");
            }
        }
    }

    #[test]
    fn vertex_spreads_oversized_component() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap();
        b.add_pair(o[1], o[2], 1.0, 5.0).unwrap();
        // One component of size 30; nodes hold 20 each.
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let out = construct_optimal_vertex(&p).unwrap();
        assert!(out.objective.abs() < 1e-9);
        // The component's shared row must be genuinely fractional.
        let row = out.fractional.row(o[0]);
        assert!(row.iter().all(|&v| v < 1.0));
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (k, load) in out.fractional.expected_loads(&p).iter().enumerate() {
            assert!(*load <= p.capacity(k) as f64 + 1e-6, "node {k} load {load}");
        }
    }

    #[test]
    fn vertex_infeasible_when_aggregate_capacity_short() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 10);
        b.add_object("b", 10);
        let p = b.uniform_capacities(2, 5).build().unwrap();
        assert!(matches!(
            construct_optimal_vertex(&p),
            Err(LpError::Infeasible)
        ));
    }
}
