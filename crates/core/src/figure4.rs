//! The literal linear program of the paper's Figure 4.
//!
//! Variables `x_{i,k}`, `y_{i,j,k}` and `z_{i,j}` with constraints (4–9),
//! relaxed to `x >= 0`. This is the formulation the paper fed to LPsolve.
//! It is faithful but large — `O(|E|·|N|)` auxiliary variables — so the
//! production path uses the equivalent cutting-plane formulation in
//! [`crate::relax`]; this module exists for fidelity and as a cross-check
//! oracle (the two must agree on the optimum, and the tests verify they do).

use crate::fractional::FractionalPlacement;
use crate::problem::CcaProblem;
use cca_lp::{Col, LpError, Model, Relation, SolverOptions};

/// The Figure-4 LP together with handles to its `x` variables.
#[derive(Debug, Clone)]
pub struct Figure4Lp {
    /// The assembled model (minimisation).
    pub model: Model,
    /// `x_vars[i * num_nodes + k]` is the LP column of `x_{i,k}`.
    pub x_vars: Vec<Col>,
    num_objects: usize,
    num_nodes: usize,
}

impl Figure4Lp {
    /// Builds the relaxed Figure-4 LP for `problem`.
    ///
    /// Constraint (9) is included in its direct form
    /// `Σ_i x_{i,k}·s(i) <= c(k)`; constraint (8) is substituted into the
    /// objective (`z_{i,j}` replaced by `½ Σ_k y_{i,j,k}`), which is an
    /// exact reformulation.
    #[must_use]
    pub fn build(problem: &CcaProblem) -> Self {
        let t = problem.num_objects();
        let n = problem.num_nodes();
        let mut model = Model::minimize();

        // x variables.
        let mut x_vars = Vec::with_capacity(t * n);
        for i in problem.objects() {
            for k in 0..n {
                x_vars.push(model.add_var(format!("x_{}_{k}", i.0), 0.0));
            }
        }
        let x = |i: usize, k: usize| x_vars[i * n + k];

        // y variables with objective weight r·w/2 (z substituted out),
        // one block per graph edge in [`EdgeId`] order so the column
        // layout matches the pair list.
        for edge in problem.graph().edges() {
            let e = edge.id.index();
            let half_weight = edge.weight / 2.0;
            for k in 0..n {
                let y = model.add_var(format!("y_{e}_{k}"), half_weight);
                // (6): y >= x_i - x_j  <=>  y - x_i + x_j >= 0
                model.add_constraint_with(
                    format!("c6_{e}_{k}"),
                    Relation::Ge,
                    0.0,
                    [
                        (y, 1.0),
                        (x(edge.a.index(), k), -1.0),
                        (x(edge.b.index(), k), 1.0),
                    ],
                );
                // (7): y >= x_j - x_i
                model.add_constraint_with(
                    format!("c7_{e}_{k}"),
                    Relation::Ge,
                    0.0,
                    [
                        (y, 1.0),
                        (x(edge.a.index(), k), 1.0),
                        (x(edge.b.index(), k), -1.0),
                    ],
                );
            }
        }

        // (5): each object fully placed.
        for i in problem.objects() {
            model.add_constraint_with(
                format!("assign_{}", i.0),
                Relation::Eq,
                1.0,
                (0..n).map(|k| (x(i.index(), k), 1.0)),
            );
        }

        // (9): per-node capacity.
        for k in 0..n {
            model.add_constraint_with(
                format!("cap_{k}"),
                Relation::Le,
                problem.capacity(k) as f64,
                problem.objects().map(|i| (x(i.index(), k), problem.size(i) as f64)),
            );
        }

        // Secondary resource capacities (paper 3.3).
        for (r, res) in problem.resources().iter().enumerate() {
            for k in 0..n {
                model.add_constraint_with(
                    format!("res{r}_cap_{k}"),
                    Relation::Le,
                    res.capacity(k) as f64,
                    problem.objects().map(|i| (x(i.index(), k), res.demand(i.index()) as f64)),
                );
            }
        }

        Figure4Lp {
            model,
            x_vars,
            num_objects: t,
            num_nodes: n,
        }
    }

    /// Solves the LP and extracts the fractional placement and optimal
    /// objective.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; [`LpError::Infeasible`] means the capacity
    /// constraints cannot host all objects even fractionally.
    pub fn solve(&self, options: &SolverOptions) -> Result<(FractionalPlacement, f64), LpError> {
        let sol = self.model.solve(options)?;
        let x: Vec<f64> = self.x_vars.iter().map(|&c| sol.value(c)).collect();
        let mut frac = FractionalPlacement::new(x, self.num_objects, self.num_nodes);
        frac.normalise();
        Ok((frac, sol.objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CcaProblem;

    /// Two perfectly correlated objects, two nodes each fitting both:
    /// the LP can co-locate them, so the optimum is 0.
    #[test]
    fn colocatable_pair_costs_zero() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 5);
        let c = b.add_object("b", 5);
        b.add_pair(a, c, 1.0, 10.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let lp = Figure4Lp::build(&p);
        let (frac, obj) = lp.solve(&Default::default()).unwrap();
        assert!(obj.abs() < 1e-7, "objective {obj}");
        assert!(frac.split_indicator(a, c) < 1e-6);
        assert!(frac.is_stochastic(1e-6));
    }

    /// The relaxation's integrality gap on capacity: two objects that
    /// cannot integrally share a node can still share **identical
    /// fractional rows** (x = ½,½ each), because constraint (9) only
    /// bounds the expected load. The LP optimum is therefore 0 even though
    /// every integral placement pays the full pair weight — exactly why
    /// Theorem 3 is an expectation statement.
    #[test]
    fn capacity_integrality_gap_is_visible() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 0.5, 6.0).unwrap(); // weight 3
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let lp = Figure4Lp::build(&p);
        let (frac, obj) = lp.solve(&Default::default()).unwrap();
        assert!(obj.abs() < 1e-6, "LP objective {obj}, expected 0");
        assert!(frac.split_indicator(a, c) < 1e-6);
        // Expected loads respect capacity (Theorem 3's guarantee)...
        for (k, load) in frac.expected_loads(&p).iter().enumerate() {
            assert!(*load <= p.capacity(k) as f64 + 1e-6);
        }
        // ...but the integral optimum must split and pay 3.
        let (_, exact_cost) =
            crate::exact::exact_placement(&p, &crate::exact::ExactOptions::default()).unwrap();
        assert!((exact_cost - 3.0).abs() < 1e-9);
    }

    /// The degeneracy in full generality: for ANY feasible instance the
    /// uniform identical rows `x_{i,k} = c(k)/Σc` are feasible and zero
    /// every `z`, so the Figure-4 LP relaxation's optimum is always 0 —
    /// here against an integral optimum of 10 (three size-10 objects on
    /// three capacity-10 nodes must pairwise split). The integrality gap is
    /// unbounded; this is the central reproduction finding recorded in
    /// DESIGN.md and the reason the LPRR pipeline includes capacity repair.
    #[test]
    fn relaxation_is_degenerate_with_unbounded_gap() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap(); // weight 5
        b.add_pair(o[1], o[2], 1.0, 3.0).unwrap(); // weight 3
        b.add_pair(o[0], o[2], 1.0, 2.0).unwrap(); // weight 2
        let p = b.uniform_capacities(3, 10).build().unwrap();
        let lp = Figure4Lp::build(&p);
        let (_, obj) = lp.solve(&Default::default()).unwrap();
        assert!(obj.abs() < 1e-6, "LP optimum should be 0, got {obj}");
        let (_, exact) =
            crate::exact::exact_placement(&p, &crate::exact::ExactOptions::default()).unwrap();
        assert!((exact - 10.0).abs() < 1e-9, "all pairs split: {exact}");
    }

    /// Infeasible capacities are reported.
    #[test]
    fn infeasible_capacity() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 5).build().unwrap();
        let lp = Figure4Lp::build(&p);
        assert!(matches!(
            lp.solve(&Default::default()),
            Err(LpError::Infeasible)
        ));
    }

    /// Dense and sparse solvers agree on the Figure-4 LP.
    #[test]
    fn dense_sparse_agree() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 2 + i as u64)).collect();
        b.add_pair(o[0], o[1], 0.9, 4.0).unwrap();
        b.add_pair(o[1], o[2], 0.5, 2.0).unwrap();
        b.add_pair(o[2], o[3], 0.8, 3.0).unwrap();
        b.add_pair(o[0], o[3], 0.2, 1.0).unwrap();
        let p = b.uniform_capacities(3, 8).build().unwrap();
        let lp = Figure4Lp::build(&p);
        let dense = lp.model.solve_dense().unwrap();
        let (_, sparse_obj) = lp.solve(&Default::default()).unwrap();
        assert!(
            (dense.objective - sparse_obj).abs() < 1e-6,
            "dense {} vs sparse {}",
            dense.objective,
            sparse_obj
        );
    }
}
