//! Integral placements `f : T -> N` and their evaluation.

use crate::problem::{CcaProblem, ObjectId};

/// An integral object placement: every object is assigned to exactly one
/// node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    assignment: Vec<u32>,
    num_nodes: usize,
}

impl Placement {
    /// Wraps an assignment vector (`assignment[object] = node`).
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= num_nodes` or `num_nodes == 0`.
    #[must_use]
    pub fn new(assignment: Vec<u32>, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "placement needs at least one node");
        assert!(
            assignment.iter().all(|&n| (n as usize) < num_nodes),
            "assignment references a node out of range"
        );
        Placement {
            assignment,
            num_nodes,
        }
    }

    /// Number of placed objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.assignment.len()
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Node of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_of(&self, i: ObjectId) -> usize {
        self.assignment[i.index()] as usize
    }

    /// Reassigns object `i` to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `node` is out of range.
    pub fn assign(&mut self, i: ObjectId, node: usize) {
        assert!(node < self.num_nodes, "node {node} out of range");
        self.assignment[i.index()] = node as u32;
    }

    /// The raw assignment vector (`[object] = node`).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.assignment
    }

    /// Per-node total object size under `problem`.
    ///
    /// # Panics
    ///
    /// Panics if the placement and problem disagree on object count.
    #[must_use]
    pub fn loads(&self, problem: &CcaProblem) -> Vec<u64> {
        assert_eq!(
            self.num_objects(),
            problem.num_objects(),
            "placement and problem disagree on object count"
        );
        let mut loads = vec![0u64; self.num_nodes];
        for i in problem.objects() {
            loads[self.node_of(i)] += problem.size(i);
        }
        loads
    }

    /// Total communication cost `Σ_{f(i)≠f(j)} r(i,j)·w(i,j)` — the CCA
    /// objective (paper Eq. 1). A single CSR edge walk in [`EdgeId`]
    /// (pair-storage) order, bit-identical to the historic pair-list scan.
    ///
    /// [`EdgeId`]: crate::graph::EdgeId
    #[must_use]
    pub fn communication_cost(&self, problem: &CcaProblem) -> f64 {
        problem.graph().cost(self)
    }

    /// Returns `true` if every node's load is within its capacity, scaled
    /// by `slack` (use `slack = 1.0` for strict adherence; the paper
    /// suggests conservative capacities so slight overshoot is tolerable).
    #[must_use]
    pub fn within_capacity(&self, problem: &CcaProblem, slack: f64) -> bool {
        self.loads(problem)
            .iter()
            .enumerate()
            .all(|(k, &load)| load as f64 <= problem.capacity(k) as f64 * slack)
    }

    /// Per-node load of secondary resource `r` (paper 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the dimensions disagree.
    #[must_use]
    pub fn resource_loads(&self, problem: &CcaProblem, r: usize) -> Vec<u64> {
        let resource = &problem.resources()[r];
        let mut loads = vec![0u64; self.num_nodes];
        for i in problem.objects() {
            loads[self.node_of(i)] += resource.demand(i.index());
        }
        loads
    }

    /// Like [`Placement::within_capacity`] but also checks every secondary
    /// resource registered on the problem.
    #[must_use]
    pub fn within_all_capacities(&self, problem: &CcaProblem, slack: f64) -> bool {
        if !self.within_capacity(problem, slack) {
            return false;
        }
        for (r, resource) in problem.resources().iter().enumerate() {
            let loads = self.resource_loads(problem, r);
            if loads
                .iter()
                .enumerate()
                .any(|(k, &load)| load as f64 > resource.capacity(k) as f64 * slack)
            {
                return false;
            }
        }
        true
    }

    /// Largest per-node overshoot beyond capacity, in bytes (0 when
    /// feasible).
    #[must_use]
    pub fn max_capacity_violation(&self, problem: &CcaProblem) -> u64 {
        self.loads(problem)
            .iter()
            .enumerate()
            .map(|(k, &load)| load.saturating_sub(problem.capacity(k)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CcaProblem;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 20);
        let o2 = b.add_object("c", 30);
        b.add_pair(o0, o1, 0.5, 10.0).unwrap(); // weight 5
        b.add_pair(o1, o2, 0.1, 10.0).unwrap(); // weight 1
        b.uniform_capacities(2, 40).build().unwrap()
    }

    #[test]
    fn cost_counts_only_split_pairs() {
        let p = problem();
        // All together: zero cost.
        let all = Placement::new(vec![0, 0, 0], 2);
        assert_eq!(all.communication_cost(&p), 0.0);
        // Split (a,b): cost 5.
        let split_ab = Placement::new(vec![0, 1, 1], 2);
        assert!((split_ab.communication_cost(&p) - 5.0).abs() < 1e-12);
        // Split both pairs: cost 6.
        let split_all = Placement::new(vec![0, 1, 0], 2);
        assert!((split_all.communication_cost(&p) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn loads_and_capacity() {
        let p = problem();
        let pl = Placement::new(vec![0, 0, 1], 2);
        assert_eq!(pl.loads(&p), vec![30, 30]);
        assert!(pl.within_capacity(&p, 1.0));
        assert_eq!(pl.max_capacity_violation(&p), 0);

        let overloaded = Placement::new(vec![0, 0, 0], 2);
        assert_eq!(overloaded.loads(&p), vec![60, 0]);
        assert!(!overloaded.within_capacity(&p, 1.0));
        assert!(overloaded.within_capacity(&p, 1.5));
        assert_eq!(overloaded.max_capacity_violation(&p), 20);
    }

    #[test]
    fn assign_moves_objects() {
        let p = problem();
        let mut pl = Placement::new(vec![0, 0, 0], 2);
        pl.assign(ObjectId(2), 1);
        assert_eq!(pl.node_of(ObjectId(2)), 1);
        assert_eq!(pl.loads(&p), vec![30, 30]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_assignment_rejected() {
        let _ = Placement::new(vec![0, 3], 2);
    }
}
