//! Placement auditing: independent verification and cost diagnostics.
//!
//! The solver reports a cost; an operator deciding whether to *install* a
//! placement wants the full picture — per-node loads against every
//! capacity dimension, where the residual communication comes from, and
//! which co-location decisions matter most. [`audit_placement`] recomputes
//! all of it from first principles, independent of the code paths that
//! produced the placement.

use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};

/// A capacity violation found by the audit.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityViolation {
    /// Node index.
    pub node: usize,
    /// Dimension: 0 = storage, `1 + r` = secondary resource `r`.
    pub dimension: usize,
    /// Name of the dimension (`"storage"` or the resource name).
    pub dimension_name: String,
    /// Load on the node in that dimension.
    pub load: u64,
    /// The node's capacity in that dimension.
    pub capacity: u64,
}

/// One split pair contributing residual communication.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPair {
    /// First object.
    pub a: ObjectId,
    /// Second object.
    pub b: ObjectId,
    /// Name of the first object.
    pub a_name: String,
    /// Name of the second object.
    pub b_name: String,
    /// The pair's weight `r·w`.
    pub weight: f64,
}

/// Full audit of a placement against its problem.
#[derive(Debug, Clone)]
pub struct PlacementAudit {
    /// Recomputed communication cost (`Σ_{split} r·w`).
    pub communication_cost: f64,
    /// Total pair weight (the all-split worst case).
    pub total_pair_weight: f64,
    /// Pairs kept local / total pairs.
    pub pairs_colocated: usize,
    /// Total number of pairs.
    pub pairs_total: usize,
    /// Storage load per node.
    pub loads: Vec<u64>,
    /// Max-over-mean storage imbalance (0 for an empty problem).
    pub imbalance: f64,
    /// All capacity violations, across storage and secondary resources.
    pub violations: Vec<CapacityViolation>,
    /// The split pairs with the largest weights, descending (up to the
    /// `top` limit given to [`audit_placement`]).
    pub heaviest_splits: Vec<SplitPair>,
    /// Objects per node.
    pub objects_per_node: Vec<usize>,
}

impl PlacementAudit {
    /// Fraction of the total pair weight kept local (1.0 when nothing is
    /// split; 1.0 for a problem with no pairs).
    #[must_use]
    pub fn locality(&self) -> f64 {
        if self.total_pair_weight <= 0.0 {
            1.0
        } else {
            1.0 - self.communication_cost / self.total_pair_weight
        }
    }

    /// Returns `true` if no capacity dimension is violated.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the audit as a human-readable multi-line report.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "communication cost: {:.2} of {:.2} ({:.1}% kept local)",
            self.communication_cost,
            self.total_pair_weight,
            100.0 * self.locality()
        );
        let _ = writeln!(
            out,
            "pairs co-located:   {} / {}",
            self.pairs_colocated, self.pairs_total
        );
        let _ = writeln!(out, "storage imbalance:  {:.2}x mean", self.imbalance);
        if self.violations.is_empty() {
            let _ = writeln!(out, "capacity:           all dimensions within limits");
        } else {
            for v in &self.violations {
                let _ = writeln!(
                    out,
                    "VIOLATION: node {} {} load {} > capacity {}",
                    v.node, v.dimension_name, v.load, v.capacity
                );
            }
        }
        if !self.heaviest_splits.is_empty() {
            let _ = writeln!(out, "heaviest split pairs:");
            for s in &self.heaviest_splits {
                let _ = writeln!(
                    out,
                    "  {} <-> {}  weight {:.3}",
                    s.a_name, s.b_name, s.weight
                );
            }
        }
        out
    }
}

/// Audits `placement` against `problem`, reporting at most `top` heaviest
/// split pairs.
///
/// ```
/// use cca_core::{audit_placement, place, CcaProblem, Strategy};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CcaProblem::builder();
/// let a = b.add_object("a", 5);
/// let c = b.add_object("b", 5);
/// b.add_pair(a, c, 0.8, 4.0)?;
/// let problem = b.uniform_capacities(2, 10).build()?;
/// let report = place(&problem, &Strategy::lprr())?;
/// let audit = audit_placement(&problem, &report.placement, 5);
/// assert!(audit.feasible());
/// assert_eq!(audit.communication_cost, report.cost);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if the placement and problem disagree on object count.
#[must_use]
pub fn audit_placement(
    problem: &CcaProblem,
    placement: &Placement,
    top: usize,
) -> PlacementAudit {
    assert_eq!(placement.num_objects(), problem.num_objects());
    let n = placement.num_nodes();

    let loads = placement.loads(problem);
    let mean = if n == 0 {
        0.0
    } else {
        loads.iter().sum::<u64>() as f64 / n as f64
    };
    let imbalance = if mean > 0.0 {
        *loads.iter().max().expect("n > 0") as f64 / mean
    } else {
        0.0
    };

    let mut violations = Vec::new();
    for (k, &load) in loads.iter().enumerate() {
        if load > problem.capacity(k) {
            violations.push(CapacityViolation {
                node: k,
                dimension: 0,
                dimension_name: "storage".into(),
                load,
                capacity: problem.capacity(k),
            });
        }
    }
    for (r, res) in problem.resources().iter().enumerate() {
        for (k, &load) in placement.resource_loads(problem, r).iter().enumerate() {
            if load > res.capacity(k) {
                violations.push(CapacityViolation {
                    node: k,
                    dimension: 1 + r,
                    dimension_name: res.name().to_string(),
                    load,
                    capacity: res.capacity(k),
                });
            }
        }
    }

    // One CSR edge walk in EdgeId order (the historic pair-scan order, so
    // the accumulated cost is bit-identical); the heaviest-split list then
    // reuses the precomputed weight ordering instead of re-sorting — for
    // edges with equal weight the (a, b) tie-break makes both total
    // orders, so the selection matches the historic sort exactly.
    let graph = problem.graph();
    let mut communication_cost = 0.0;
    let mut colocated = 0usize;
    let mut split = vec![false; graph.num_edges()];
    for edge in graph.edges() {
        if placement.node_of(edge.a) == placement.node_of(edge.b) {
            colocated += 1;
        } else {
            communication_cost += edge.weight;
            split[edge.id.index()] = true;
        }
    }
    let splits: Vec<SplitPair> = graph
        .edges_by_weight()
        .iter()
        .filter(|e| split[e.index()])
        .take(top)
        .map(|&e| {
            let edge = graph.edge(e);
            SplitPair {
                a: edge.a,
                b: edge.b,
                a_name: problem.name(edge.a).to_string(),
                b_name: problem.name(edge.b).to_string(),
                weight: edge.weight,
            }
        })
        .collect();

    let mut objects_per_node = vec![0usize; n];
    for o in problem.objects() {
        objects_per_node[placement.node_of(o)] += 1;
    }

    PlacementAudit {
        communication_cost,
        total_pair_weight: problem.total_pair_weight(),
        pairs_colocated: colocated,
        pairs_total: problem.pairs().len(),
        loads,
        imbalance,
        violations,
        heaviest_splits: splits,
        objects_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Resource;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap(); // weight 9
        b.add_pair(o[2], o[3], 0.5, 10.0).unwrap(); // weight 5
        b.add_pair(o[0], o[2], 0.1, 10.0).unwrap(); // weight 1
        b.uniform_capacities(2, 25).build().unwrap()
    }

    #[test]
    fn audit_matches_placement_methods() {
        let p = problem();
        let pl = Placement::new(vec![0, 0, 1, 1], 2);
        let audit = audit_placement(&p, &pl, 10);
        assert_eq!(audit.communication_cost, pl.communication_cost(&p));
        assert_eq!(audit.loads, pl.loads(&p));
        assert_eq!(audit.pairs_total, 3);
        assert_eq!(audit.pairs_colocated, 2);
        assert!(audit.feasible());
        assert!((audit.locality() - (1.0 - 1.0 / 15.0)).abs() < 1e-12);
        assert_eq!(audit.objects_per_node, vec![2, 2]);
        // Only the weak cross pair is split.
        assert_eq!(audit.heaviest_splits.len(), 1);
        assert!((audit.heaviest_splits[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn audit_flags_storage_violation() {
        let p = problem();
        let pl = Placement::new(vec![0, 0, 0, 1], 2);
        let audit = audit_placement(&p, &pl, 10);
        assert!(!audit.feasible());
        assert_eq!(audit.violations.len(), 1);
        assert_eq!(audit.violations[0].node, 0);
        assert_eq!(audit.violations[0].dimension_name, "storage");
        assert_eq!(audit.violations[0].load, 30);
        assert!(audit.report().contains("VIOLATION"));
    }

    #[test]
    fn audit_flags_resource_violation() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 1);
        let c = b.add_object("b", 1);
        b.add_pair(a, c, 0.5, 1.0).unwrap();
        b.uniform_capacities(2, 100);
        b.add_resource(Resource::new("bandwidth", vec![8, 8], vec![10, 10]));
        let p = b.build().unwrap();
        let pl = Placement::new(vec![0, 0], 2);
        let audit = audit_placement(&p, &pl, 10);
        assert!(!audit.feasible());
        assert_eq!(audit.violations[0].dimension_name, "bandwidth");
        assert_eq!(audit.violations[0].dimension, 1);
    }

    #[test]
    fn top_limit_truncates_split_list() {
        let p = problem();
        let pl = Placement::new(vec![0, 1, 0, 1], 2); // splits all three pairs
        let audit = audit_placement(&p, &pl, 2);
        assert_eq!(audit.heaviest_splits.len(), 2);
        assert!(audit.heaviest_splits[0].weight >= audit.heaviest_splits[1].weight);
        assert!((audit.heaviest_splits[0].weight - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_problem_audits_clean() {
        let p = CcaProblem::builder().uniform_capacities(2, 10).build().unwrap();
        let pl = Placement::new(vec![], 2);
        let audit = audit_placement(&p, &pl, 5);
        assert!(audit.feasible());
        assert_eq!(audit.locality(), 1.0);
        assert_eq!(audit.imbalance, 0.0);
        assert!(!audit.report().is_empty());
    }
}
