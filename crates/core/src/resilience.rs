//! Deadline-aware resilient solving: budgets, a degradation ladder, and
//! deterministic fault injection.
//!
//! The paper's LPRR pipeline is the *best* strategy, not the *only* one —
//! and production placement decisions have deadlines. This module wraps
//! the strategies of [`crate::solver`] in a **degradation ladder**: try
//! LPRR, fall back to partial LPRR over the most important objects, then
//! to greedy, then to hash placement, auditing and (if needed) repairing
//! the best candidate found. [`solve_resilient`] therefore *always*
//! returns a placement — never a panic, never an empty hand — together
//! with a [`DegradationReport`] describing every rung attempted, why each
//! stopped, and whether the result is degraded or infeasible.
//!
//! Budgets ([`SolveBudget`]) bound the wall-clock time, total simplex
//! iterations, and rounding repetitions of the expensive rungs; past the
//! deadline only the O(t) hash rung still runs, so the ladder's response
//! time is bounded by the cheapest strategy.
//!
//! [`FaultPlan`] injects *deterministic* faults for testing: LP iteration
//! exhaustion, a poisoned (non-finite) simplex objective, all-infeasible
//! rounding, and post-solve node loss. Faults are realised through the
//! real code paths (iteration caps, the solver's chaos hook, zero rounding
//! slack, zeroed capacities) so the chaos suite exercises exactly the
//! machinery production would. The LP-poisoning hook only exists when the
//! workspace is built with the `chaos` feature; the other faults are plain
//! option settings and work in every build.

use std::time::{Duration, Instant};

use crate::audit::{audit_placement, PlacementAudit};
use crate::error::CcaError;
use crate::graph::PlacementBatch;
use crate::greedy::greedy_placement;
use crate::migrate::{
    improve_in_place, improve_replicas_in_place, migration_bytes, replica_migration_bytes,
    MigrateOptions,
};
use crate::placement::Placement;
use crate::problem::CcaProblem;
use crate::problem::ProblemError;
use crate::random::random_hash_placement;
use crate::relax::RelaxMethod;
use crate::repair::{repair_capacity, repair_replica_spread};
use crate::replica::{spread_copies, validate_replica_spec, DomainTree, ReplicaPlacement};
use crate::solver::{place, place_partial_with, LprrOptions, Strategy};
use cca_par::{par_map_indexed, DeadlineGate};
use cca_rand::rngs::StdRng;
use cca_rand::{Rng, SeedableRng};

/// Resource budget for one resilient solve.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Wall-clock budget measured from the start of the solve. Past it,
    /// in-flight LP work aborts with its best solution so far and only the
    /// hash rung is still attempted. `None` means unlimited.
    pub deadline: Option<Duration>,
    /// Cap on simplex iterations summed over all cut-generation rounds
    /// (forwarded to [`crate::RelaxOptions::max_total_lp_iterations`]).
    /// `0` means unlimited.
    pub max_lp_iterations: u64,
    /// Cap on rounding repetitions (overrides
    /// [`LprrOptions::repetitions`] when non-zero).
    pub max_rounding_repetitions: usize,
}

/// One rung of the degradation ladder, best first. The `Ord` order is the
/// ladder order: a *later* rung is a *worse* (but cheaper and more
/// reliable) strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Full LPRR (the paper's contribution).
    Lprr,
    /// LPRR on the most important objects only, hash for the rest
    /// (paper §3.1).
    PartialLprr,
    /// Greedy correlation-aware heuristic.
    Greedy,
    /// Correlation-oblivious hash placement — O(t), cannot fail.
    Hash,
}

/// All rungs in ladder order.
pub const LADDER: [Rung; 4] = [Rung::Lprr, Rung::PartialLprr, Rung::Greedy, Rung::Hash];

impl Rung {
    /// Short machine-friendly name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rung::Lprr => "lprr",
            Rung::PartialLprr => "partial-lprr",
            Rung::Greedy => "greedy",
            Rung::Hash => "hash",
        }
    }

    /// Parses a rung name as accepted by the `cca` CLI.
    #[must_use]
    pub fn parse(s: &str) -> Option<Rung> {
        match s {
            "lprr" => Some(Rung::Lprr),
            "partial-lprr" | "partial" => Some(Rung::PartialLprr),
            "greedy" => Some(Rung::Greedy),
            "hash" | "random" => Some(Rung::Hash),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How one rung attempt ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RungOutcome {
    /// Produced a placement within every capacity.
    Feasible,
    /// Produced a placement, but it violates at least one capacity.
    Infeasible,
    /// The strategy returned an error (message attached).
    Failed(String),
    /// The rung was not attempted (reason attached), e.g. because the
    /// deadline had already passed or a better rung succeeded first.
    Skipped(String),
}

impl RungOutcome {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RungOutcome::Feasible => "feasible",
            RungOutcome::Infeasible => "infeasible",
            RungOutcome::Failed(_) => "failed",
            RungOutcome::Skipped(_) => "skipped",
        }
    }
}

/// Record of one ladder rung.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    /// Which rung.
    pub rung: Rung,
    /// How it ended.
    pub outcome: RungOutcome,
    /// Wall-clock time spent on it.
    pub elapsed: Duration,
    /// Communication cost of its placement, when one was produced.
    pub cost: Option<f64>,
}

/// Re-placement summary after losing nodes (see [`survive_node_loss`]).
#[derive(Debug, Clone)]
pub struct NodeLossReport {
    /// Indices of the nodes whose capacity dropped to zero, ascending.
    pub dropped_nodes: Vec<usize>,
    /// Bytes moved relative to the pre-loss placement.
    pub migrated_bytes: u64,
    /// Objects moved relative to the pre-loss placement.
    pub moves: usize,
}

/// Structured account of a resilient solve: every rung attempted, what
/// was selected, and every way the result deviates from the ideal.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Every rung, in ladder order, with its outcome.
    pub attempts: Vec<RungAttempt>,
    /// The rung whose placement was returned.
    pub selected: Rung,
    /// True when the result is worse than asked for: a lower rung than
    /// the requested start was selected, the floor had to be overridden,
    /// or the final placement is still infeasible.
    pub degraded: bool,
    /// True when no rung within `[start, floor]` produced a placement and
    /// the emergency hash rung ran outside the requested window.
    pub floor_overridden: bool,
    /// True when the wall-clock budget expired during the solve.
    pub deadline_exceeded: bool,
    /// True when the ladder-level repair pass had to move objects to
    /// restore capacity feasibility.
    pub repaired: bool,
    /// Human-readable description of the injected fault plan, when one
    /// was active (see [`FaultPlan::describe`]).
    pub injected_fault: Option<String>,
    /// Present when node loss was injected or simulated.
    pub node_loss: Option<NodeLossReport>,
    /// Total wall-clock time of the resilient solve.
    pub total_elapsed: Duration,
}

impl DegradationReport {
    /// Renders the report as a short human-readable block.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "degradation ladder ({} ms total):",
            self.total_elapsed.as_millis()
        );
        for a in &self.attempts {
            let detail = match &a.outcome {
                RungOutcome::Feasible | RungOutcome::Infeasible => match a.cost {
                    // `+ 0.0` normalises a negative zero.
                    Some(c) => format!("cost {:.2}, {} ms", c + 0.0, a.elapsed.as_millis()),
                    None => format!("{} ms", a.elapsed.as_millis()),
                },
                RungOutcome::Failed(m) | RungOutcome::Skipped(m) => m.clone(),
            };
            let _ = writeln!(out, "  {:<12} {:<10} {detail}", a.rung.name(), a.outcome.label());
        }
        let _ = writeln!(
            out,
            "selected: {}{}{}{}",
            self.selected,
            if self.degraded { " (degraded)" } else { "" },
            if self.floor_overridden { " (floor overridden)" } else { "" },
            if self.repaired { " (repaired)" } else { "" },
        );
        if self.deadline_exceeded {
            let _ = writeln!(out, "deadline exceeded during solve");
        }
        if let Some(f) = &self.injected_fault {
            let _ = writeln!(out, "injected fault: {f}");
        }
        if let Some(n) = &self.node_loss {
            let _ = writeln!(
                out,
                "node loss: dropped {:?}, re-placed {} objects ({} bytes)",
                n.dropped_nodes, n.moves, n.migrated_bytes
            );
        }
        out
    }
}

/// Deterministic fault plan for chaos testing. All faults are realised
/// through real configuration paths, so they compose and stay
/// reproducible per seed. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed: perturbs the rounding RNG and picks the dropped nodes.
    pub seed: u64,
    /// Force the LP rungs onto the cutting-plane method with a one-
    /// iteration simplex cap, exhausting the iteration budget immediately.
    pub exhaust_lp_iterations: bool,
    /// Poison the simplex basic solution with NaN from the given
    /// iteration on. Forces the cutting-plane method. **Requires the
    /// `chaos` feature** — without it the hook is inert and the LP solves
    /// normally.
    pub poison_lp_after: Option<u64>,
    /// Run rounding with zero capacity slack and no in-rung repair, so
    /// every repetition is capacity-infeasible and the ladder has to
    /// select a least-overloaded candidate and repair it itself.
    pub fail_rounding: bool,
    /// After the solve, zero the capacity of this many seeded-randomly
    /// chosen nodes (at most `n - 1`) and re-place their objects.
    pub drop_nodes: usize,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        !self.exhaust_lp_iterations
            && self.poison_lp_after.is_none()
            && !self.fail_rounding
            && self.drop_nodes == 0
    }

    /// One-line description naming every injected fault.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.exhaust_lp_iterations {
            parts.push("exhaust-lp-iterations".to_string());
        }
        if let Some(n) = self.poison_lp_after {
            parts.push(format!("poison-lp@{n}"));
        }
        if self.fail_rounding {
            parts.push("fail-rounding".to_string());
        }
        if self.drop_nodes > 0 {
            parts.push(format!("drop-{}-nodes", self.drop_nodes));
        }
        if parts.is_empty() {
            parts.push("noop".to_string());
        }
        format!("{} (seed {})", parts.join(" + "), self.seed)
    }
}

/// Options for [`solve_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// LPRR configuration used by the LP rungs.
    pub lprr: LprrOptions,
    /// Budgets applied across the whole ladder.
    pub budget: SolveBudget,
    /// Best rung to try (rungs above it are skipped).
    pub start: Rung,
    /// Worst rung permitted (quality floor). If nothing in
    /// `[start, floor]` yields a placement, the hash rung runs anyway and
    /// the report flags `floor_overridden`.
    pub floor: Rung,
    /// Scope size for the partial-LPRR rung; `None` means a quarter of
    /// the objects (at least one).
    pub partial_scope: Option<usize>,
    /// How many heaviest split pairs the final audit keeps.
    pub audit_top: usize,
    /// Worker threads for the solve. With `threads > 1` the ladder rungs
    /// in the permitted window are *attempted* concurrently (each rung is
    /// independent) and the rounding repetitions inside the LP rungs fan
    /// out too; the selection still walks the attempts in ladder order, so
    /// the chosen placement is identical to the serial walk whenever the
    /// deadline does not fire mid-solve.
    pub threads: usize,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            lprr: LprrOptions::default(),
            budget: SolveBudget::default(),
            start: Rung::Lprr,
            floor: Rung::Hash,
            partial_scope: None,
            audit_top: 5,
            threads: 1,
        }
    }
}

/// A placement that survived the degradation ladder, with its full audit
/// and degradation report.
#[derive(Debug, Clone)]
pub struct ResilientPlacement {
    /// The placement, complete over all objects.
    pub placement: Placement,
    /// Its communication cost on the effective problem.
    pub cost: f64,
    /// Independent audit against the effective problem.
    pub audit: PlacementAudit,
    /// What happened on the way here.
    pub report: DegradationReport,
    /// The problem the placement was finally audited against: the input
    /// problem, or the capacity-degraded one after node loss.
    pub effective_problem: CcaProblem,
}

/// Solves `problem` through the degradation ladder. Never panics on a
/// well-formed problem and always returns a placement: infeasibility and
/// budget exhaustion degrade the result (and are flagged in the report)
/// instead of erroring.
#[must_use]
pub fn solve_resilient(problem: &CcaProblem, options: &ResilienceOptions) -> ResilientPlacement {
    solve_resilient_with_faults(problem, options, &FaultPlan::default())
}

/// [`solve_resilient`] under a deterministic [`FaultPlan`]. With the
/// default (no-op) plan this is exactly [`solve_resilient`].
#[must_use]
pub fn solve_resilient_with_faults(
    problem: &CcaProblem,
    options: &ResilienceOptions,
    faults: &FaultPlan,
) -> ResilientPlacement {
    let start_time = Instant::now();
    let deadline = options.budget.deadline.map(|d| start_time + d);

    // Materialise the budget and the fault plan as LPRR configuration.
    let mut lprr = options.lprr.clone();
    lprr.relax.solver.deadline = deadline;
    if options.budget.max_lp_iterations > 0 {
        lprr.relax.max_total_lp_iterations = options.budget.max_lp_iterations;
    }
    if options.budget.max_rounding_repetitions > 0 {
        lprr.repetitions = options.budget.max_rounding_repetitions;
    }
    lprr.rng_seed = lprr.rng_seed.wrapping_add(faults.seed);
    lprr.threads = options.threads.max(lprr.threads);
    if faults.exhaust_lp_iterations {
        lprr.relax.method = RelaxMethod::CuttingPlane;
        lprr.relax.solver.max_iterations = 1;
    }
    if faults.poison_lp_after.is_some() {
        lprr.relax.method = RelaxMethod::CuttingPlane;
        lprr.relax.solver.chaos_poison_after = faults.poison_lp_after;
    }
    if faults.fail_rounding {
        lprr.capacity_slack = 0.0;
        lprr.repair = false;
    }

    let floor = options.floor.max(options.start);
    let slack = options.lprr.capacity_slack.max(1.0);
    let scope = options
        .partial_scope
        .unwrap_or_else(|| (problem.num_objects() / 4).max(1));

    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut deadline_exceeded = false;
    // Best candidate so far: feasible beats infeasible, then lower cost.
    let mut best: Option<(Rung, Placement, f64, bool)> = None;

    let window: Vec<Rung> = LADDER
        .into_iter()
        .filter(|&r| r >= options.start && r <= floor)
        .collect();

    // With threads > 1, attempt every rung in the window concurrently
    // (each rung is an independent computation); serially, compute each
    // attempt lazily at its turn. Either way the results are consumed in
    // ladder order below, so the selection logic — and, deadline timing
    // aside, the selected placement — does not depend on the thread count.
    let computed: Vec<(bool, Option<Attempt>)> = if options.threads > 1 {
        let gate = DeadlineGate::new(deadline);
        par_map_indexed(options.threads, window.len(), |i| {
            let expired = gate.expired();
            // Hash is O(t) and guarantees an answer; everything else is
            // skipped once the budget is gone.
            if expired && window[i] != Rung::Hash {
                return (true, None);
            }
            (expired, Some(attempt_rung(problem, window[i], &lprr, scope)))
        })
    } else {
        Vec::new()
    };

    // With threads > 1 every eager attempt's placement is ranked by ONE
    // batched CSR walk instead of a full edge scan per rung; column j is
    // bit-identical to the per-candidate `communication_cost` walk, so the
    // ladder selection below is unchanged.
    let mut rung_costs: Vec<Option<f64>> = vec![None; window.len()];
    if options.threads > 1 {
        let mut batch = PlacementBatch::new(problem.num_objects(), problem.num_nodes());
        let mut slots: Vec<Option<usize>> = vec![None; window.len()];
        for (i, (_, attempt)) in computed.iter().enumerate() {
            if let Some(Attempt { result: Ok(p), .. }) = attempt {
                slots[i] = Some(batch.width());
                batch.push(p);
            }
        }
        if !batch.is_empty() {
            let costs = problem.eval_cost_batch(&batch, options.threads);
            for (i, slot) in slots.into_iter().enumerate() {
                if let Some(j) = slot {
                    rung_costs[i] = Some(costs[j]);
                }
            }
        }
    }

    for (i, &rung) in window.iter().enumerate() {
        let serial_slot;
        if let Some((_, _, _, true)) = best {
            attempts.push(RungAttempt {
                rung,
                outcome: RungOutcome::Skipped("better rung already feasible".into()),
                elapsed: Duration::ZERO,
                cost: None,
            });
            continue;
        }
        let attempt = if options.threads > 1 {
            let (expired, attempt) = &computed[i];
            if *expired {
                deadline_exceeded = true;
            }
            match attempt {
                None => {
                    attempts.push(RungAttempt {
                        rung,
                        outcome: RungOutcome::Skipped("deadline exceeded".into()),
                        elapsed: Duration::ZERO,
                        cost: None,
                    });
                    continue;
                }
                Some(a) => a,
            }
        } else {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    deadline_exceeded = true;
                    if rung != Rung::Hash {
                        attempts.push(RungAttempt {
                            rung,
                            outcome: RungOutcome::Skipped("deadline exceeded".into()),
                            elapsed: Duration::ZERO,
                            cost: None,
                        });
                        continue;
                    }
                }
            }
            serial_slot = attempt_rung(problem, rung, &lprr, scope);
            &serial_slot
        };
        if let Ok(p) = &attempt.result {
            // Parallel rungs were scored by the batch walk above; lazy
            // serial attempts pay their own single-candidate walk.
            let cost = rung_costs[i].unwrap_or_else(|| p.communication_cost(problem));
            let feasible = p.within_all_capacities(problem, 1.0);
            let replace = match &best {
                None => true,
                Some((_, _, bc, bf)) => (feasible, -cost) > (*bf, -*bc),
            };
            if replace {
                best = Some((rung, p.clone(), cost, feasible));
            }
            attempts.push(RungAttempt {
                rung,
                outcome: if feasible {
                    RungOutcome::Feasible
                } else {
                    RungOutcome::Infeasible
                },
                elapsed: attempt.elapsed,
                cost: Some(cost),
            });
        } else if let Err(e) = &attempt.result {
            attempts.push(RungAttempt {
                rung,
                outcome: RungOutcome::Failed(e.to_string()),
                elapsed: attempt.elapsed,
                cost: None,
            });
        }
    }

    // Emergency: nothing in the permitted window produced a placement.
    // Hash placement cannot fail, so run it outside the window rather
    // than return empty-handed.
    let mut floor_overridden = false;
    let (selected, mut placement, _, feasible) = match best {
        Some(b) => b,
        None => {
            floor_overridden = true;
            let t = Instant::now();
            let p = random_hash_placement(problem);
            // Batch-of-1 ≡ `cost` (DESIGN §10), so the emergency candidate
            // goes through the same batched ranking path as the rungs.
            let cost = problem
                .eval_cost_batch(&PlacementBatch::from_placements(std::slice::from_ref(&p)), 1)[0];
            let feasible = p.within_all_capacities(problem, 1.0);
            attempts.push(RungAttempt {
                rung: Rung::Hash,
                outcome: if feasible {
                    RungOutcome::Feasible
                } else {
                    RungOutcome::Infeasible
                },
                elapsed: t.elapsed(),
                cost: Some(cost),
            });
            (Rung::Hash, p, cost, feasible)
        }
    };

    // Ladder-level repair: the selected candidate is the best we found,
    // but it may still violate capacities (e.g. under fail_rounding).
    let mut repaired = false;
    if !feasible {
        let outcome = repair_capacity(problem, &mut placement, slack);
        repaired = outcome.moves > 0;
    }

    // Deterministic node loss: zero the chosen capacities and re-place.
    let mut node_loss = None;
    let mut effective_problem = problem.clone();
    if faults.drop_nodes > 0 && problem.num_nodes() > 1 {
        let dead = pick_dead_nodes(problem.num_nodes(), faults.drop_nodes, faults.seed);
        let (degraded, replaced, loss) = survive_node_loss(problem, &placement, &dead, slack);
        effective_problem = degraded;
        placement = replaced;
        node_loss = Some(loss);
    }

    if let Some(d) = deadline {
        if Instant::now() >= d {
            deadline_exceeded = true;
        }
    }

    let audit = audit_placement(&effective_problem, &placement, options.audit_top);
    let cost = audit.communication_cost;
    let degraded = floor_overridden || !audit.feasible() || selected != options.start;
    let report = DegradationReport {
        attempts,
        selected,
        degraded,
        floor_overridden,
        deadline_exceeded,
        repaired,
        injected_fault: (!faults.is_noop()).then(|| faults.describe()),
        node_loss,
        total_elapsed: start_time.elapsed(),
    };
    ResilientPlacement {
        placement,
        cost,
        audit,
        report,
        effective_problem,
    }
}

struct Attempt {
    result: Result<Placement, CcaError>,
    elapsed: Duration,
}

fn attempt_rung(problem: &CcaProblem, rung: Rung, lprr: &LprrOptions, scope: usize) -> Attempt {
    let t = Instant::now();
    let result = match rung {
        Rung::Lprr => place(problem, &Strategy::Lprr(lprr.clone())).map(|r| r.placement),
        Rung::PartialLprr => {
            place_partial_with(problem, scope, &Strategy::Lprr(lprr.clone()), false)
                .map(|r| r.placement)
        }
        Rung::Greedy => Ok(greedy_placement(problem)),
        Rung::Hash => Ok(random_hash_placement(problem)),
    };
    Attempt {
        result,
        elapsed: t.elapsed(),
    }
}

/// Picks `k` distinct dead nodes (at most `n - 1`, so at least one node
/// survives) by a seeded partial Fisher–Yates shuffle. Deterministic per
/// `(n, k, seed)`.
fn pick_dead_nodes(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n.saturating_sub(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        nodes.swap(i, j);
    }
    let mut dead: Vec<usize> = nodes[..k].to_vec();
    dead.sort_unstable();
    dead
}

/// Simulates losing `dead_nodes`: their storage capacity drops to zero in
/// a copy of `problem`, the placement is repaired off them (and polished
/// with capacity-respecting migration), and the data movement is
/// accounted. Returns the degraded problem, the re-placed placement, and
/// the loss report.
///
/// Secondary-resource capacities are *not* zeroed — [`CcaProblem`] keeps
/// them per-resource, and a storage capacity of zero already evicts every
/// object from the node; the repair pass then respects the survivors'
/// resource limits.
#[must_use]
pub fn survive_node_loss(
    problem: &CcaProblem,
    placement: &Placement,
    dead_nodes: &[usize],
    capacity_slack: f64,
) -> (CcaProblem, Placement, NodeLossReport) {
    let slack = capacity_slack.max(1.0);
    let capacities: Vec<u64> = (0..problem.num_nodes())
        .map(|k| {
            if dead_nodes.contains(&k) {
                0
            } else {
                problem.capacity(k)
            }
        })
        .collect();
    let degraded = problem.with_capacities(capacities);
    let mut replaced = placement.clone();
    let _ = repair_capacity(&degraded, &mut replaced, slack);
    let polished = improve_in_place(
        &degraded,
        &replaced,
        &MigrateOptions {
            capacity_slack: slack,
            ..MigrateOptions::default()
        },
    );
    let replaced = polished.placement;
    let report = NodeLossReport {
        dropped_nodes: {
            let mut d: Vec<usize> = dead_nodes.to_vec();
            d.sort_unstable();
            d.dedup();
            d
        },
        migrated_bytes: migration_bytes(problem, placement, &replaced),
        moves: problem
            .objects()
            .filter(|&o| placement.node_of(o) != replaced.node_of(o))
            .count(),
    };
    (degraded, replaced, report)
}

/// What happened when a whole failure domain died
/// ([`survive_domain_loss`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainLossReport {
    /// The killed leaf domain.
    pub domain: usize,
    /// Its member nodes (every one dropped), ascending.
    pub dropped_nodes: Vec<usize>,
    /// Bytes moved relative to the pre-loss replica placement, summed
    /// over every re-placed copy.
    pub migrated_bytes: u64,
    /// Copies moved relative to the pre-loss replica placement.
    pub moves: usize,
    /// Whether the repaired placement satisfies the spread invariant
    /// (`false` only when fewer alive leaf domains remain than replicas).
    pub spread_valid: bool,
}

/// The domain-level generalization of [`survive_node_loss`]: kills every
/// node of leaf `domain` (capacity → 0), re-spreads the orphaned copies
/// onto alive domains ([`repair_replica_spread`]), then polishes with
/// the replica-aware local search under the degraded capacities.
///
/// Under the flat tree a domain is a single node, so this is node loss
/// with the per-copy repair rule; the read path keeps serving throughout
/// because every object retains `r − 1` live copies until repair lands.
///
/// # Panics
///
/// Panics if `domain` is out of range or the tree and placement disagree
/// on node count.
#[must_use]
pub fn survive_domain_loss(
    problem: &CcaProblem,
    tree: &DomainTree,
    rp: &ReplicaPlacement,
    domain: usize,
    capacity_slack: f64,
) -> (CcaProblem, ReplicaPlacement, DomainLossReport) {
    let slack = capacity_slack.max(1.0);
    let dead_nodes: Vec<usize> = tree.nodes_in(domain).to_vec();
    let capacities: Vec<u64> = (0..problem.num_nodes())
        .map(|k| {
            if dead_nodes.contains(&k) {
                0
            } else {
                problem.capacity(k)
            }
        })
        .collect();
    let degraded = problem.with_capacities(capacities);
    let mut repaired = rp.clone();
    let _ = repair_replica_spread(&degraded, tree, &mut repaired, &dead_nodes, slack);
    let polished = improve_replicas_in_place(
        &degraded,
        tree,
        &repaired,
        &MigrateOptions {
            capacity_slack: slack,
            ..MigrateOptions::default()
        },
    );
    let repaired = polished.replica;
    let moves = problem
        .objects()
        .map(|o| {
            (0..rp.replicas())
                .filter(|&j| rp.node_of(o, j) != repaired.node_of(o, j))
                .count()
        })
        .sum();
    let report = DomainLossReport {
        domain,
        dropped_nodes: dead_nodes,
        migrated_bytes: replica_migration_bytes(problem, rp, &repaired),
        moves,
        spread_valid: repaired.spread_valid(tree),
    };
    (degraded, repaired, report)
}

/// A resilient solve generalized to `r` copies per object.
#[derive(Debug, Clone)]
pub struct ResilientReplicaPlacement {
    /// The replica placement (column 0 is the ladder's single-copy
    /// answer, bit-for-bit).
    pub replica: ReplicaPlacement,
    /// Replica-aware communication cost on the effective problem
    /// (min-over-replica-choices; equals `base.cost` when `r = 1`).
    pub cost: f64,
    /// The single-copy ladder outcome the primary column came from.
    pub base: ResilientPlacement,
    /// Whether the copies satisfy the spread invariant.
    pub spread_valid: bool,
}

/// Replica-aware [`solve_resilient_with_faults`]: runs the existing
/// degradation ladder unchanged for the primary column, then spreads
/// `replicas − 1` extra copies across the leaf domains of `tree` by the
/// deterministic copy rule of [`crate::replica`] (the greedy/hash rungs'
/// copies land round-robin across domains via the load ranking), and
/// polishes the copies with the spread-preserving local search.
///
/// With `replicas = 1` the ladder's placement is wrapped untouched and
/// its cost/audit are returned as-is — the r=1 equivalence guarantee.
///
/// # Errors
///
/// [`validate_replica_spec`] failures (`replicas == 0`, or more replicas
/// than leaf domains).
pub fn solve_resilient_replicated(
    problem: &CcaProblem,
    options: &ResilienceOptions,
    faults: &FaultPlan,
    tree: &DomainTree,
    replicas: usize,
) -> Result<ResilientReplicaPlacement, ProblemError> {
    validate_replica_spec(replicas, tree)?;
    let base = solve_resilient_with_faults(problem, options, faults);
    if replicas == 1 {
        let replica = ReplicaPlacement::from_primary(base.placement.clone());
        let cost = base.cost;
        return Ok(ResilientReplicaPlacement {
            replica,
            cost,
            base,
            spread_valid: true,
        });
    }
    let effective = &base.effective_problem;
    // r copies store r× the bytes: scale the per-node storage budget so
    // the spread rule can keep preferring fitting nodes.
    let slack = replicas as f64;
    let spread = spread_copies(effective, tree, base.placement.clone(), replicas, slack)?;
    let polished = improve_replicas_in_place(
        effective,
        tree,
        &spread,
        &MigrateOptions {
            capacity_slack: slack,
            ..MigrateOptions::default()
        },
    );
    let spread_valid = polished.replica.spread_valid(tree);
    Ok(ResilientReplicaPlacement {
        cost: polished.comm_cost,
        replica: polished.replica,
        base,
        spread_valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(groups: usize, per_group: usize, nodes: usize) -> CcaProblem {
        let mut b = CcaProblem::builder();
        let mut objs = Vec::new();
        for g in 0..groups {
            for i in 0..per_group {
                objs.push(b.add_object(format!("g{g}w{i}"), 10));
            }
        }
        for g in 0..groups {
            for i in 0..per_group {
                for j in i + 1..per_group {
                    b.add_pair(objs[g * per_group + i], objs[g * per_group + j], 0.8, 5.0)
                        .unwrap();
                }
            }
        }
        let total = (groups * per_group * 10) as u64;
        let cap = 2 * total / nodes as u64;
        b.uniform_capacities(nodes, cap).build().unwrap()
    }

    #[test]
    fn healthy_solve_selects_the_start_rung() {
        let p = clustered(4, 3, 3);
        let r = solve_resilient(&p, &ResilienceOptions::default());
        assert_eq!(r.report.selected, Rung::Lprr);
        assert!(!r.report.degraded);
        assert!(!r.report.floor_overridden);
        assert!(r.audit.feasible());
        assert_eq!(r.placement.num_objects(), p.num_objects());
        // Rungs below the selected one are recorded as skipped.
        assert_eq!(r.report.attempts.len(), 4);
        assert!(matches!(
            r.report.attempts[1].outcome,
            RungOutcome::Skipped(_)
        ));
        assert!(r.report.injected_fault.is_none());
        assert!(r.report.summary().contains("selected: lprr"));
    }

    #[test]
    fn start_and_floor_window_restricts_the_ladder() {
        let p = clustered(3, 3, 2);
        let opts = ResilienceOptions {
            start: Rung::Greedy,
            floor: Rung::Greedy,
            ..ResilienceOptions::default()
        };
        let r = solve_resilient(&p, &opts);
        assert_eq!(r.report.selected, Rung::Greedy);
        assert_eq!(r.report.attempts.len(), 1);
        assert!(!r.report.degraded);
    }

    #[test]
    fn zero_deadline_degrades_to_hash() {
        let p = clustered(4, 3, 3);
        let opts = ResilienceOptions {
            budget: SolveBudget {
                deadline: Some(Duration::ZERO),
                ..SolveBudget::default()
            },
            ..ResilienceOptions::default()
        };
        let r = solve_resilient(&p, &opts);
        assert_eq!(r.report.selected, Rung::Hash);
        assert!(r.report.deadline_exceeded);
        assert!(r.report.degraded);
        // The expensive rungs were skipped, not attempted.
        for a in &r.report.attempts[..3] {
            assert!(matches!(a.outcome, RungOutcome::Skipped(_)), "{a:?}");
        }
        assert_eq!(r.placement.num_objects(), p.num_objects());
    }

    #[test]
    fn infeasible_problem_returns_flagged_not_error() {
        // Total size 20 exceeds total capacity 10: no feasible placement
        // exists, but the ladder still answers with flagged violations.
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 5).build().unwrap();
        let r = solve_resilient(&p, &ResilienceOptions::default());
        assert_eq!(r.placement.num_objects(), 2);
        assert!(!r.audit.feasible());
        assert!(r.report.degraded);
        // LPRR failed (infeasible LP) and the report says so.
        assert!(matches!(
            r.report.attempts[0].outcome,
            RungOutcome::Failed(_)
        ));
    }

    #[test]
    fn resilient_solves_are_deterministic() {
        let p = clustered(4, 3, 3);
        let opts = ResilienceOptions::default();
        let a = solve_resilient(&p, &opts);
        let b = solve_resilient(&p, &opts);
        assert_eq!(a.placement.as_slice(), b.placement.as_slice());
        assert_eq!(a.report.selected, b.report.selected);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn parallel_rungs_select_the_same_placement() {
        let p = clustered(4, 3, 3);
        let serial = solve_resilient(&p, &ResilienceOptions::default());
        for threads in [2, 8] {
            let opts = ResilienceOptions {
                threads,
                ..ResilienceOptions::default()
            };
            let par = solve_resilient(&p, &opts);
            assert_eq!(
                par.placement.as_slice(),
                serial.placement.as_slice(),
                "threads = {threads}"
            );
            assert_eq!(par.report.selected, serial.report.selected);
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
            // Attempt ledger keeps the serial shape: later rungs are
            // recorded as skipped once a better rung is feasible.
            assert_eq!(par.report.attempts.len(), serial.report.attempts.len());
            for (a, b) in par.report.attempts.iter().zip(&serial.report.attempts) {
                assert_eq!(a.rung, b.rung);
                assert_eq!(a.outcome.label(), b.outcome.label());
            }
        }
    }

    #[test]
    fn node_loss_replaces_onto_survivors() {
        let p = clustered(4, 3, 4);
        let r = solve_resilient(&p, &ResilienceOptions::default());
        let (degraded, replaced, loss) =
            survive_node_loss(&p, &r.placement, &[1], 1.05);
        assert_eq!(degraded.capacity(1), 0);
        assert_eq!(replaced.num_objects(), p.num_objects());
        assert!(replaced.loads(&degraded)[1] == 0, "dead node still loaded");
        assert_eq!(loss.dropped_nodes, vec![1]);
        // Anything that was on node 1 moved; bytes account for the moves.
        assert!(loss.moves > 0 || r.placement.loads(&p)[1] == 0);
        assert_eq!(
            loss.migrated_bytes,
            migration_bytes(&p, &r.placement, &replaced)
        );
    }

    #[test]
    fn dead_node_picks_are_deterministic_and_bounded() {
        let a = pick_dead_nodes(8, 3, 42);
        let b = pick_dead_nodes(8, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Never kills the whole cluster.
        assert_eq!(pick_dead_nodes(4, 99, 7).len(), 3);
        assert!(pick_dead_nodes(1, 1, 7).is_empty());
    }

    #[test]
    fn fault_plan_descriptions_name_every_fault() {
        assert!(FaultPlan::default().is_noop());
        assert_eq!(FaultPlan::default().describe(), "noop (seed 0)");
        let f = FaultPlan {
            seed: 9,
            exhaust_lp_iterations: true,
            poison_lp_after: Some(5),
            fail_rounding: true,
            drop_nodes: 2,
        };
        assert!(!f.is_noop());
        let d = f.describe();
        for part in [
            "exhaust-lp-iterations",
            "poison-lp@5",
            "fail-rounding",
            "drop-2-nodes",
            "seed 9",
        ] {
            assert!(d.contains(part), "{d} missing {part}");
        }
    }

    #[test]
    fn rung_order_and_parsing() {
        assert!(Rung::Lprr < Rung::PartialLprr);
        assert!(Rung::PartialLprr < Rung::Greedy);
        assert!(Rung::Greedy < Rung::Hash);
        for r in LADDER {
            assert_eq!(Rung::parse(r.name()), Some(r));
        }
        assert_eq!(Rung::parse("partial"), Some(Rung::PartialLprr));
        assert_eq!(Rung::parse("random"), Some(Rung::Hash));
        assert_eq!(Rung::parse("bogus"), None);
    }
}
