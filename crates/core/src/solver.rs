//! High-level placement API tying the strategies together.

use crate::error::PlaceError;
use crate::greedy::greedy_placement;
use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use crate::random::random_hash_placement;
use crate::relax::{solve_relaxation, RelaxOptions};
use crate::rounding::round_best_of_within;
use crate::scope::{compose_with_hashed_rest, importance_ranking, scope_subproblem};

/// Options for the LPRR (linear programming with randomized rounding)
/// strategy.
#[derive(Debug, Clone)]
pub struct LprrOptions {
    /// Options for the LP relaxation.
    pub relax: RelaxOptions,
    /// How many rounding repetitions to run (best is kept). The paper
    /// repeats "several times"; 16 is a solid default.
    pub repetitions: usize,
    /// Capacity slack accepted when selecting the best rounding (1.0 =
    /// strict; the paper's conservative-capacity discussion motivates a
    /// little slack such as 1.05).
    pub capacity_slack: f64,
    /// Seed the cut generation with the greedy placement's tight cuts.
    pub seed_with_greedy: bool,
    /// Run the greedy capacity-repair pass on the selected rounding (see
    /// [`crate::repair`]): Theorem 3 only bounds expected loads, so a
    /// particular rounding can overshoot.
    pub repair: bool,
    /// RNG seed for the rounding (placements are deterministic per seed).
    pub rng_seed: u64,
    /// Worker threads for the rounding repetitions. Results are
    /// byte-identical for every value (repetition `i` draws from substream
    /// `i` of `rng_seed` and ties break by repetition index); `1` runs
    /// inline with no pool.
    pub threads: usize,
}

impl Default for LprrOptions {
    fn default() -> Self {
        LprrOptions {
            relax: RelaxOptions::default(),
            repetitions: 16,
            capacity_slack: 1.05,
            seed_with_greedy: true,
            repair: true,
            rng_seed: 0x5eed,
            threads: 1,
        }
    }
}

/// A placement strategy, mirroring the paper's three evaluated schemes
/// (§4.1).
#[derive(Debug, Clone, Default)]
pub enum Strategy {
    /// Random MD5-hash placement (correlation-oblivious baseline).
    #[default]
    RandomHash,
    /// Greedy correlation-aware heuristic.
    Greedy,
    /// Linear programming with randomized rounding (the paper's
    /// contribution).
    Lprr(LprrOptions),
}

impl Strategy {
    /// The paper's LPRR with default options.
    #[must_use]
    pub fn lprr() -> Self {
        Strategy::Lprr(LprrOptions::default())
    }

    /// The paper's LPRR with rounding repetitions spread over `threads`
    /// workers (same placements as [`Strategy::lprr`] — the thread count
    /// never changes the result).
    #[must_use]
    pub fn lprr_threads(threads: usize) -> Self {
        Strategy::Lprr(LprrOptions {
            threads,
            ..LprrOptions::default()
        })
    }

    /// Short human-readable name (matches the paper's figure legends).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::RandomHash => "random-hash",
            Strategy::Greedy => "greedy",
            Strategy::Lprr(_) => "lprr",
        }
    }
}

/// A placement together with its quality metrics.
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// The computed placement.
    pub placement: Placement,
    /// Communication cost `Σ_{split pairs} r·w` on the given problem.
    pub cost: f64,
    /// LP optimum (only for LPRR): the minimum expected cost any
    /// randomized placement can achieve, hence a lower bound on `cost`'s
    /// expectation.
    pub lp_lower_bound: Option<f64>,
    /// Whether the LP cut generation converged (always `true` for the
    /// other strategies).
    pub lp_converged: bool,
    /// Strategy that produced the placement.
    pub strategy: &'static str,
}

/// Computes a placement for `problem` with the chosen strategy.
///
/// # Errors
///
/// LPRR propagates LP failures (notably infeasibility when the capacities
/// cannot host all objects); the baselines are infallible.
pub fn place(problem: &CcaProblem, strategy: &Strategy) -> Result<PlacementReport, PlaceError> {
    match strategy {
        Strategy::RandomHash => {
            let placement = random_hash_placement(problem);
            Ok(report(problem, placement, None, true, "random-hash"))
        }
        Strategy::Greedy => {
            let placement = greedy_placement(problem);
            Ok(report(problem, placement, None, true, "greedy"))
        }
        Strategy::Lprr(opts) => {
            let seed_placement = opts.seed_with_greedy.then(|| greedy_placement(problem));
            let outcome = solve_relaxation(problem, seed_placement.as_ref(), &opts.relax)?;
            let rounded = round_best_of_within(
                &outcome.fractional,
                problem,
                opts.repetitions,
                opts.capacity_slack,
                opts.relax.solver.deadline,
                opts.rng_seed,
                opts.threads,
            )?;
            let mut placement = rounded.placement;
            if opts.repair && !rounded.within_capacity {
                let _ = crate::repair::repair_capacity(problem, &mut placement, opts.capacity_slack);
            }
            Ok(report(
                problem,
                placement,
                Some(outcome.objective),
                outcome.converged,
                "lprr",
            ))
        }
    }
}

/// Important-object partial optimization (paper §3.1): applies `strategy`
/// to the `scope_size` most important objects and hash-places the rest.
///
/// The subproblem keeps the full per-node capacities, exactly as the
/// paper's LP did ("our constraint is set at two times the average
/// per-node index size"); hash-placed out-of-scope objects add their load
/// on top, so realised loads can exceed the nominal capacity by the
/// (well-balanced) hashed share. Use [`place_partial_with`] to instead
/// deduct the expected hashed load from the subproblem's capacities.
///
/// # Errors
///
/// Propagates LP failures from the scoped subproblem.
pub fn place_partial(
    problem: &CcaProblem,
    scope_size: usize,
    strategy: &Strategy,
) -> Result<PlacementReport, PlaceError> {
    place_partial_with(problem, scope_size, strategy, false)
}

/// [`place_partial`] with control over capacity accounting: when
/// `deduct_hashed_load` is set, the subproblem's per-node capacities are
/// reduced by the expected load of the hash-placed out-of-scope objects.
///
/// # Errors
///
/// Propagates LP failures from the scoped subproblem.
pub fn place_partial_with(
    problem: &CcaProblem,
    scope_size: usize,
    strategy: &Strategy,
    deduct_hashed_load: bool,
) -> Result<PlacementReport, PlaceError> {
    let ranking = importance_ranking(problem);
    let scope: Vec<ObjectId> = ranking.into_iter().take(scope_size).collect();
    let sub = scope_subproblem(problem, &scope, deduct_hashed_load);
    let sub_report = place(&sub, strategy)?;
    let placement = compose_with_hashed_rest(problem, &scope, &sub_report.placement);
    Ok(report(
        problem,
        placement,
        sub_report.lp_lower_bound,
        sub_report.lp_converged,
        sub_report.strategy,
    ))
}

fn report(
    problem: &CcaProblem,
    placement: Placement,
    lp_lower_bound: Option<f64>,
    lp_converged: bool,
    strategy: &'static str,
) -> PlacementReport {
    let cost = placement.communication_cost(problem);
    PlacementReport {
        placement,
        cost,
        lp_lower_bound,
        lp_converged,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clustered problem where correlation-aware placement should beat
    /// random hashing decisively.
    fn clustered_problem(groups: usize, per_group: usize, nodes: usize) -> CcaProblem {
        let mut b = CcaProblem::builder();
        let mut objs = Vec::new();
        for g in 0..groups {
            for i in 0..per_group {
                objs.push(b.add_object(format!("g{g}w{i}"), 10));
            }
        }
        for g in 0..groups {
            for i in 0..per_group {
                for j in i + 1..per_group {
                    b.add_pair(objs[g * per_group + i], objs[g * per_group + j], 0.8, 5.0)
                        .unwrap();
                }
            }
            // Weak cross-group correlation.
            if g + 1 < groups {
                b.add_pair(objs[g * per_group], objs[(g + 1) * per_group], 0.01, 5.0)
                    .unwrap();
            }
        }
        let total = (groups * per_group * 10) as u64;
        let cap = 2 * total / nodes as u64;
        b.uniform_capacities(nodes, cap).build().unwrap()
    }

    #[test]
    fn all_strategies_produce_complete_placements() {
        let p = clustered_problem(4, 3, 3);
        for strategy in [Strategy::RandomHash, Strategy::Greedy, Strategy::lprr()] {
            let r = place(&p, &strategy).unwrap();
            assert_eq!(r.placement.num_objects(), p.num_objects());
            assert_eq!(r.strategy, strategy.name());
            assert!(r.cost >= 0.0);
        }
    }

    #[test]
    fn lprr_beats_random_on_clustered_problem() {
        let p = clustered_problem(6, 3, 3);
        let random = place(&p, &Strategy::RandomHash).unwrap();
        let lprr = place(&p, &Strategy::lprr()).unwrap();
        assert!(
            lprr.cost < random.cost,
            "lprr {} should beat random {}",
            lprr.cost,
            random.cost
        );
        // LP bound sandwich: bound <= lprr cost (statistically it is the
        // expectation, and best-of-16 should be at or below one draw).
        let bound = lprr.lp_lower_bound.unwrap();
        assert!(lprr.lp_converged);
        assert!(bound <= lprr.cost + 1e-9);
    }

    #[test]
    fn lprr_respects_capacity_slack() {
        let p = clustered_problem(4, 3, 3);
        let lprr = place(&p, &Strategy::lprr()).unwrap();
        assert!(
            lprr.placement.within_capacity(&p, 1.05 + 1e-9),
            "loads {:?} vs capacity {}",
            lprr.placement.loads(&p),
            p.capacity(0)
        );
    }

    #[test]
    fn lprr_is_deterministic_per_seed() {
        let p = clustered_problem(3, 3, 2);
        let a = place(&p, &Strategy::lprr()).unwrap();
        let b = place(&p, &Strategy::lprr()).unwrap();
        assert_eq!(a.placement, b.placement);
        let opts = LprrOptions {
            rng_seed: 999,
            ..LprrOptions::default()
        };
        let c = place(&p, &Strategy::Lprr(opts)).unwrap();
        // Different seed may produce a different placement (not asserted),
        // but must still be complete and near-feasible.
        assert_eq!(c.placement.num_objects(), p.num_objects());
    }

    #[test]
    fn lprr_thread_count_never_changes_the_placement() {
        let p = clustered_problem(4, 3, 3);
        let serial = place(&p, &Strategy::lprr()).unwrap();
        for threads in [2, 8] {
            let par = place(&p, &Strategy::lprr_threads(threads)).unwrap();
            assert_eq!(par.placement, serial.placement, "threads = {threads}");
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
        }
    }

    #[test]
    fn partial_optimization_interpolates() {
        let p = clustered_problem(6, 3, 3);
        let full = place_partial(&p, p.num_objects(), &Strategy::lprr()).unwrap();
        let half = place_partial(&p, p.num_objects() / 2, &Strategy::lprr()).unwrap();
        let none = place_partial(&p, 0, &Strategy::lprr()).unwrap();
        let random = place(&p, &Strategy::RandomHash).unwrap();
        // Zero scope == pure hash placement.
        assert_eq!(none.placement, random.placement);
        // Wider scope should do at least as well (allowing small noise from
        // rounding randomness).
        assert!(full.cost <= half.cost + 0.35 * random.cost.max(1.0));
        assert!(half.cost <= random.cost + 1e-9);
    }

    #[test]
    fn infeasible_lp_is_reported() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 5).build().unwrap();
        assert!(matches!(
            place(&p, &Strategy::lprr()),
            Err(PlaceError::Lp(cca_lp::LpError::Infeasible))
        ));
        assert!(place(&p, &Strategy::RandomHash).is_ok());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::RandomHash.name(), "random-hash");
        assert_eq!(Strategy::Greedy.name(), "greedy");
        assert_eq!(Strategy::lprr().name(), "lprr");
    }
}
