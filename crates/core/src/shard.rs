//! Range-sharded view of the correlation graph for million-object
//! instances.
//!
//! [`ShardedGraph`] partitions the CSR of [`crate::graph::CorrelationGraph`]
//! by *object range*: shard `s` owns the contiguous row block
//! `[s·rows_per_shard, (s+1)·rows_per_shard)` and the edge columns whose
//! **smaller endpoint** falls in that block. Shards are built in parallel
//! on `cca-par` workers and bulk queries (`cost`, `cost_batch`) run
//! shard-parallel with per-shard partials reduced **in shard-index
//! order** — the same determinism recipe as
//! [`crate::graph::CorrelationGraph::cost_chunked`], so every result is
//! identical for every `threads` value.
//!
//! Bit-compatibility with the flat CSR (DESIGN.md §11):
//!
//! - `shard_count = 1` puts every edge in shard 0 in [`crate::graph::EdgeId`]
//!   order, so `cost`/`cost_batch` fold exactly the flat serial sequence
//!   and are **bit-identical** to the flat walk. Trailing empty shards
//!   contribute the `-0.0` reduce identity (`-0.0 + x` is bitwise `x`
//!   for every `x` the fold can produce), so they never perturb this.
//! - `move_delta`/`move_delta_batch` walk the owning shard's row, which
//!   replicates the flat CSR row content in the same pair-scan order —
//!   **bit-identical for any shard count**.
//! - For `shard_count > 1`, `cost`/`cost_batch` are a different
//!   associativity of the same exact per-edge terms; on dyadic-weight
//!   instances (the generators and benches) every addition is exact and
//!   the bits still match the flat walk, which the shard-invariance
//!   suite asserts.

use crate::graph::{
    batch_edge_walk, check_csr_bounds, edge_cost_fold, InterleavedRows, PlacementBatch,
};
use crate::placement::Placement;
use crate::problem::{ObjectId, Pair, ProblemError};
use crate::replica::ReplicaPlacement;

/// One contiguous row block of the sharded CSR plus the edge columns it
/// owns (edges whose smaller endpoint lies in the block), both in the
/// same scan orders as the flat CSR.
#[derive(Debug, Clone)]
struct Shard {
    /// First object row owned by this shard (inclusive).
    row_start: usize,
    /// Smaller endpoints of owned edges, in pair-scan ([`crate::graph::EdgeId`]) order.
    edge_a: Vec<ObjectId>,
    /// Larger endpoints of owned edges, aligned with `edge_a`.
    edge_b: Vec<ObjectId>,
    /// Objective weights `r·w` of owned edges, aligned with `edge_a`.
    edge_weight: Vec<f64>,
    /// Local CSR row offsets: row `i` of the shard (object
    /// `row_start + i`) spans `nbr_*[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Neighbour ids per local row, in pair-scan order — identical
    /// content and order to the flat CSR row.
    nbr_ids: Vec<ObjectId>,
    /// Neighbour weights aligned with `nbr_ids`.
    nbr_weights: Vec<f64>,
}

impl Shard {
    /// Resident bytes of this shard's columns and rows.
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.edge_a.len() * size_of::<ObjectId>()
            + self.edge_b.len() * size_of::<ObjectId>()
            + self.edge_weight.len() * size_of::<f64>()
            + self.offsets.len() * size_of::<u32>()
            + self.nbr_ids.len() * size_of::<ObjectId>()
            + self.nbr_weights.len() * size_of::<f64>()
    }

    /// Neighbours of global object `i` (which this shard must own) as
    /// `(neighbour, weight)`, in pair-scan order — the flat
    /// [`crate::graph::CorrelationGraph::neighbors`] sequence.
    fn neighbors(&self, i: ObjectId) -> impl Iterator<Item = (ObjectId, f64)> + '_ {
        let local = i.index() - self.row_start;
        let (s, t) = (
            self.offsets[local] as usize,
            self.offsets[local + 1] as usize,
        );
        self.nbr_ids[s..t]
            .iter()
            .copied()
            .zip(self.nbr_weights[s..t].iter().copied())
    }
}

/// Range-sharded CSR over the same pair list as
/// [`crate::graph::CorrelationGraph`], built shard-parallel and queried
/// shard-parallel with an index-ordered reduce (see the module docs for
/// the exact bit contract).
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    num_objects: usize,
    num_edges: usize,
    rows_per_shard: usize,
    /// `true` when every edge weight is strictly positive — gates the
    /// branchless batched kernel exactly like the flat CSR's flag.
    positive_weights: bool,
    shards: Vec<Shard>,
}

impl ShardedGraph {
    /// Builds the sharded view over `pairs` for `num_objects` objects,
    /// constructing the `shard_count` shards (clamped to
    /// `[1, max(num_objects, 1)]`) in parallel on up to `threads`
    /// `cca-par` workers. The result is a pure function of
    /// `(num_objects, pairs, shard_count)` — `threads` only changes how
    /// fast it is built.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects`, or if the
    /// instance overflows the `u32` CSR indexing — use
    /// [`ShardedGraph::try_build`] to get a
    /// [`ProblemError::GraphTooLarge`] instead.
    #[must_use]
    pub fn build(
        num_objects: usize,
        pairs: &[Pair],
        shard_count: usize,
        threads: usize,
    ) -> ShardedGraph {
        ShardedGraph::try_build(num_objects, pairs, shard_count, threads)
            .unwrap_or_else(|e| panic!("sharded graph build failed: {e}"))
    }

    /// Fallible [`ShardedGraph::build`], with the same size guard as
    /// [`crate::graph::CorrelationGraph::try_build`]: the bound is checked before any
    /// allocation, and endpoints are validated **before** sharding (the
    /// per-shard filtered scans would otherwise silently drop an
    /// out-of-range edge instead of failing).
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects`.
    ///
    /// # Errors
    ///
    /// [`ProblemError::GraphTooLarge`] when the instance exceeds the
    /// `u32` CSR limits (more than `u32::MAX / 2` pairs or `u32::MAX`
    /// objects).
    pub fn try_build(
        num_objects: usize,
        pairs: &[Pair],
        shard_count: usize,
        threads: usize,
    ) -> Result<ShardedGraph, ProblemError> {
        check_csr_bounds(num_objects, pairs.len())?;
        for pair in pairs {
            assert!(
                pair.a.index() < num_objects && pair.b.index() < num_objects,
                "pair ({}, {}) out of range for {num_objects} objects",
                pair.a,
                pair.b
            );
        }
        let shard_count = shard_count.clamp(1, num_objects.max(1));
        // Ceil split so exactly `shard_count` blocks cover every row; the
        // max(1) keeps the `shard_of` division defined on empty graphs.
        let rows_per_shard = num_objects.div_ceil(shard_count).max(1);
        let shards = cca_par::par_map_indexed(threads, shard_count, |s| {
            let row_start = (s * rows_per_shard).min(num_objects);
            let row_end = ((s + 1) * rows_per_shard).min(num_objects);
            build_shard(pairs, row_start, row_end, rows_per_shard, s)
        });
        let positive_weights = pairs.iter().all(|p| p.weight() > 0.0);
        Ok(ShardedGraph {
            num_objects,
            num_edges: pairs.len(),
            rows_per_shard,
            positive_weights,
            shards,
        })
    }

    /// Number of objects (global CSR rows).
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of edges `|E|` across all shards.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of shards (the clamped `shard_count` the view was built
    /// with; trailing shards may own no rows).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rows per shard (ceil of `num_objects / shard_count`).
    #[must_use]
    pub fn rows_per_shard(&self) -> usize {
        self.rows_per_shard
    }

    /// Approximate resident size of the sharded view in bytes — the
    /// memory-model input for the million-object accounting in
    /// `BENCH_shard.json`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Shard::memory_bytes).sum()
    }

    /// The shard index owning object `i`'s row.
    fn shard_of(&self, i: ObjectId) -> usize {
        i.index() / self.rows_per_shard
    }

    /// The CCA objective of `placement`: per-shard partials (each the
    /// serial [`edge_cost_fold`] over the shard's owned edges in
    /// pair-scan order) computed on up to `threads` workers, reduced in
    /// shard-index order from the `-0.0` identity. Identical for every
    /// `threads` value; bit-identical to [`crate::graph::CorrelationGraph::cost`] when
    /// `shard_count() == 1` (and on dyadic-weight instances for any
    /// shard count).
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost(&self, placement: &Placement, threads: usize) -> f64 {
        let partials = cca_par::par_map_indexed(threads, self.shards.len(), |s| {
            let sh = &self.shards[s];
            edge_cost_fold(&sh.edge_a, &sh.edge_b, &sh.edge_weight, placement)
        });
        let mut total = -0.0;
        for p in partials {
            total += p;
        }
        total
    }

    /// Scores every candidate of `batch` shard-parallel: each shard runs
    /// the shared [`batch_edge_walk`] over its owned edge columns, and
    /// the per-shard per-candidate partials reduce in shard-index order
    /// from the `-0.0` identity. Identical for every `threads` value;
    /// column `c` is bit-identical to
    /// [`crate::graph::CorrelationGraph::cost_batch`]'s when `shard_count() == 1` (and
    /// on dyadic-weight instances for any shard count). An empty batch
    /// yields an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if the batch covers fewer objects than the graph.
    #[must_use]
    pub fn cost_batch(&self, batch: &PlacementBatch, threads: usize) -> Vec<f64> {
        let k = batch.width();
        if k == 0 {
            return Vec::new();
        }
        // The interleave is built once (lazily) and shared read-only by
        // every shard walk.
        let rows = batch.interleaved();
        let partials = cca_par::par_map_indexed(threads, self.shards.len(), |s| {
            let sh = &self.shards[s];
            let mut acc = vec![-0.0f64; k];
            match rows {
                InterleavedRows::Narrow(r) => batch_edge_walk(
                    &sh.edge_a,
                    &sh.edge_b,
                    &sh.edge_weight,
                    self.positive_weights,
                    r,
                    k,
                    &mut acc,
                ),
                InterleavedRows::Wide(r) => batch_edge_walk(
                    &sh.edge_a,
                    &sh.edge_b,
                    &sh.edge_weight,
                    self.positive_weights,
                    r,
                    k,
                    &mut acc,
                ),
            }
            acc
        });
        let mut totals = vec![-0.0f64; k];
        for partial in partials {
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        totals
    }

    /// Communication-cost change of moving `i` to `target`, walking the
    /// owning shard's row. The shard row replicates the flat CSR row
    /// content and order exactly, so this is **bit-identical** to
    /// [`crate::graph::CorrelationGraph::move_delta`] for any shard count.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn move_delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        let src = placement.node_of(i);
        if src == target {
            return 0.0;
        }
        let mut delta = 0.0;
        for (other, w) in self.shards[self.shard_of(i)].neighbors(i) {
            let on = placement.node_of(other);
            if on == src {
                delta += w;
            } else if on == target {
                delta -= w;
            }
        }
        delta
    }

    /// [`ShardedGraph::move_delta`] for every target in `targets` in a
    /// single walk of the owning shard's row — entry `t` is
    /// **bit-identical** to [`crate::graph::CorrelationGraph::move_delta_batch`]'s for
    /// any shard count.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn move_delta_batch(
        &self,
        placement: &Placement,
        i: ObjectId,
        targets: &[usize],
    ) -> Vec<f64> {
        let src = placement.node_of(i);
        let mut deltas = vec![0.0f64; targets.len()];
        if targets.iter().all(|&t| t == src) {
            return deltas;
        }
        for (other, w) in self.shards[self.shard_of(i)].neighbors(i) {
            let on = placement.node_of(other);
            for (d, &t) in deltas.iter_mut().zip(targets) {
                if t == src {
                    continue;
                }
                if on == src {
                    *d += w;
                } else if on == t {
                    *d -= w;
                }
            }
        }
        deltas
    }

    /// Replica-aware cost (see
    /// [`crate::graph::CorrelationGraph::cost_replicas`]): per-shard edge
    /// folds with the min-over-replica-choices split test, partials
    /// reduced in shard (index) order from the `-0.0` identity — the same
    /// reduction shape as [`ShardedGraph::cost`], so the result is
    /// identical for every `threads` value, and with `r = 1` it is
    /// **bit-identical** to `cost(rp.primary(), threads)` (structural
    /// fast path).
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost_replicas(&self, rp: &ReplicaPlacement, threads: usize) -> f64 {
        if rp.replicas() == 1 {
            return self.cost(rp.primary(), threads);
        }
        let partials = cca_par::par_map_indexed(threads, self.shards.len(), |s| {
            let sh = &self.shards[s];
            sh.edge_a
                .iter()
                .zip(&sh.edge_b)
                .zip(&sh.edge_weight)
                .filter(|&((&a, &b), _)| rp.split(a, b))
                .map(|(_, &w)| w)
                .sum::<f64>()
        });
        let mut total = -0.0;
        for p in partials {
            total += p;
        }
        total
    }

    /// Replica-aware move delta, walking the owning shard's row. The
    /// shard row replicates the flat CSR row content and order exactly,
    /// so this is **bit-identical** to
    /// [`crate::graph::CorrelationGraph::replica_move_delta`] for any
    /// shard count.
    ///
    /// # Panics
    ///
    /// Panics if `i`, `j`, or `target` is out of range.
    #[must_use]
    pub fn replica_move_delta(
        &self,
        rp: &ReplicaPlacement,
        i: ObjectId,
        j: usize,
        target: usize,
    ) -> f64 {
        let src = rp.node_of(i, j);
        if src == target {
            return 0.0;
        }
        let r = rp.replicas();
        let joined_after = |other: ObjectId| -> bool {
            (0..r).any(|k| {
                let n = if k == j { target } else { rp.node_of(i, k) };
                rp.colocated(other, n)
            })
        };
        let mut delta = 0.0;
        for (other, w) in self.shards[self.shard_of(i)].neighbors(i) {
            let was_split = rp.split(i, other);
            let now_split = !joined_after(other);
            match (was_split, now_split) {
                (false, true) => delta += w,
                (true, false) => delta -= w,
                _ => {}
            }
        }
        delta
    }
}

/// Builds shard `s` covering rows `[row_start, row_end)` by a single
/// filtered scan of the full pair list: owned edge columns (smaller
/// endpoint in range) append in pair-scan order, and both-endpoint row
/// entries append in pair-scan order — the exact flat-CSR row content.
fn build_shard(
    pairs: &[Pair],
    row_start: usize,
    row_end: usize,
    rows_per_shard: usize,
    s: usize,
) -> Shard {
    let in_range = |i: usize| i / rows_per_shard == s;
    let num_rows = row_end - row_start;
    let mut edge_a = Vec::new();
    let mut edge_b = Vec::new();
    let mut edge_weight = Vec::new();
    let mut degree = vec![0u32; num_rows];
    for pair in pairs {
        let (ai, bi) = (pair.a.index(), pair.b.index());
        if in_range(ai.min(bi)) {
            edge_a.push(pair.a);
            edge_b.push(pair.b);
            edge_weight.push(pair.weight());
        }
        // Safe u32 arithmetic: `check_csr_bounds` capped the pair count
        // at `u32::MAX / 2`, so a row degree tops out at `2·m ≤ u32::MAX`.
        if in_range(ai) {
            degree[ai - row_start] += 1;
        }
        if in_range(bi) {
            degree[bi - row_start] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(num_rows + 1);
    let mut total = 0u32;
    offsets.push(0);
    for &d in &degree {
        total += d;
        offsets.push(total);
    }
    let mut cursor: Vec<u32> = offsets[..num_rows].to_vec();
    let mut nbr_ids = vec![ObjectId(0); total as usize];
    let mut nbr_weights = vec![0.0f64; total as usize];
    for pair in pairs {
        let (ai, bi, w) = (pair.a.index(), pair.b.index(), pair.weight());
        if in_range(ai) {
            let slot = cursor[ai - row_start] as usize;
            nbr_ids[slot] = pair.b;
            nbr_weights[slot] = w;
            cursor[ai - row_start] += 1;
        }
        if in_range(bi) {
            let slot = cursor[bi - row_start] as usize;
            nbr_ids[slot] = pair.a;
            nbr_weights[slot] = w;
            cursor[bi - row_start] += 1;
        }
    }
    Shard {
        row_start,
        edge_a,
        edge_b,
        edge_weight,
        offsets,
        nbr_ids,
        nbr_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CorrelationGraph;

    fn pairs() -> Vec<Pair> {
        // Dyadic weights: correlations in eighths, costs integral.
        [
            (0u32, 1u32, 8, 16.0),
            (0, 2, 4, 4.0),
            (1, 3, 6, 8.0),
            (2, 3, 2, 2.0),
            (3, 4, 7, 16.0),
            (1, 4, 1, 1.0),
        ]
        .iter()
        .map(|&(a, b, eighths, cost)| Pair {
            a: ObjectId(a),
            b: ObjectId(b),
            correlation: f64::from(eighths) / 8.0,
            comm_cost: cost,
        })
        .collect()
    }

    fn placement() -> Placement {
        Placement::new(vec![0, 1, 0, 1, 2], 3)
    }

    #[test]
    fn single_shard_bit_equals_flat() {
        let ps = pairs();
        let flat = CorrelationGraph::build(5, &ps);
        let sharded = ShardedGraph::build(5, &ps, 1, 1);
        let p = placement();
        assert_eq!(
            sharded.cost(&p, 1).to_bits(),
            flat.cost(&p).to_bits(),
            "shard_count=1 must replicate the flat serial fold"
        );
    }

    #[test]
    fn every_shard_count_matches_on_dyadic_weights() {
        let ps = pairs();
        let flat = CorrelationGraph::build(5, &ps);
        let p = placement();
        for shard_count in [1, 2, 3, 5, 7, 64] {
            for threads in [1, 2, 4] {
                let sharded = ShardedGraph::build(5, &ps, shard_count, threads);
                assert_eq!(sharded.cost(&p, threads).to_bits(), flat.cost(&p).to_bits());
                for i in 0..5 {
                    let i = ObjectId(i);
                    for target in 0..3 {
                        assert_eq!(
                            sharded.move_delta(&p, i, target).to_bits(),
                            flat.move_delta(&p, i, target).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_count_clamps_and_empty_shards_are_identity() {
        let ps = pairs();
        // 64 requested shards clamp to num_objects = 5.
        let sharded = ShardedGraph::build(5, &ps, 64, 2);
        assert_eq!(sharded.shard_count(), 5);
        assert_eq!(sharded.num_edges(), ps.len());
        // Zero-object graph still builds one (empty) shard.
        let empty = ShardedGraph::build(0, &[], 4, 1);
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.cost(&Placement::new(Vec::new(), 1), 1).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn cost_batch_matches_flat_per_column() {
        let ps = pairs();
        let flat = CorrelationGraph::build(5, &ps);
        let mut batch = PlacementBatch::new(5, 3);
        batch.push(&placement());
        batch.push(&Placement::new(vec![0, 0, 0, 0, 0], 3));
        batch.push(&Placement::new(vec![2, 1, 0, 1, 2], 3));
        let want = flat.cost_batch(&batch);
        for shard_count in [1, 2, 5] {
            let sharded = ShardedGraph::build(5, &ps, shard_count, 1);
            for threads in [1, 3] {
                let got = sharded.cost_batch(&batch, threads);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits());
                }
            }
        }
        assert!(ShardedGraph::build(5, &ps, 2, 1)
            .cost_batch(&PlacementBatch::new(5, 3), 1)
            .is_empty());
    }

    #[test]
    fn too_large_instance_errors_before_allocating() {
        let err = ShardedGraph::try_build(u32::MAX as usize + 1, &[], 4, 1).unwrap_err();
        assert!(matches!(err, ProblemError::GraphTooLarge { .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics_instead_of_dropping() {
        let ps = pairs();
        // 5 objects referenced but only 3 declared: must panic, not
        // silently drop the out-of-range edges from every shard.
        let _ = ShardedGraph::build(3, &ps, 2, 1);
    }
}
