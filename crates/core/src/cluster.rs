//! Capacity-bounded agglomerative clustering of the correlation graph.
//!
//! Used by the default LPRR path to decide *where to cut* components that
//! exceed a node's capacity — the decision the paper's LP relaxation cannot
//! make because its optimum is degenerate (see DESIGN.md §"Reproduction
//! findings"). Clusters are grown by repeatedly merging the pair of
//! clusters with the highest connecting weight whose combined size still
//! fits a node, i.e. the classic agglomerative heuristic the paper alludes
//! to with "the keywords can be well clustered into a small number of
//! co-placed groups (with low inter-group communication)".

use crate::problem::{CcaProblem, ObjectId};
use std::collections::{BinaryHeap, HashMap};

/// A candidate merge in the agglomeration heap.
#[derive(Debug, PartialEq)]
struct Merge {
    weight: f64,
    a: usize,
    b: usize,
}

impl Eq for Merge {}

impl Ord for Merge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .partial_cmp(&other.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

impl PartialOrd for Merge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Groups the problem's objects into clusters of total size at most
/// `max_bytes`, greedily maximising the pair weight kept inside clusters.
/// When the problem carries secondary resources (paper 3.3), a merge must
/// also keep every resource's combined demand within the smallest node
/// capacity for that resource.
///
/// Objects larger than `max_bytes` form singleton clusters (they cannot
/// share a node with anything under a strict reading of the capacity, but
/// placement still has to put them somewhere). Returns the clusters with
/// each member list sorted; cluster order is deterministic.
///
/// ```
/// use cca_core::{capacity_bounded_clusters, CcaProblem};
/// # fn main() -> Result<(), cca_core::ProblemError> {
/// let mut b = CcaProblem::builder();
/// let a = b.add_object("a", 10);
/// let c = b.add_object("b", 10);
/// b.add_pair(a, c, 0.9, 5.0)?;
/// let problem = b.uniform_capacities(2, 20).build()?;
/// // Budget 20 fits the pair together; budget 10 forces singletons.
/// assert_eq!(capacity_bounded_clusters(&problem, 20).len(), 1);
/// assert_eq!(capacity_bounded_clusters(&problem, 10).len(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn capacity_bounded_clusters(problem: &CcaProblem, max_bytes: u64) -> Vec<Vec<ObjectId>> {
    let t = problem.num_objects();
    // Per-dimension budgets: storage first, then each resource's smallest
    // node capacity.
    let mut budgets: Vec<u64> = vec![max_bytes];
    for res in problem.resources() {
        budgets.push(
            (0..problem.num_nodes())
                .map(|k| res.capacity(k))
                .min()
                .unwrap_or(0),
        );
    }
    // Cluster state: representative id -> (members, size); merged clusters
    // are tombstoned.
    let mut members: Vec<Vec<u32>> = (0..t as u32).map(|i| vec![i]).collect();
    let mut sizes: Vec<Vec<u64>> = problem
        .objects()
        .map(|o| {
            let mut v = vec![problem.size(o)];
            for res in problem.resources() {
                v.push(res.demand(o.index()));
            }
            v
        })
        .collect();
    let mut alive: Vec<bool> = vec![true; t];
    let fits = |a: &[u64], b: &[u64], budgets: &[u64]| {
        a.iter()
            .zip(b)
            .zip(budgets)
            .all(|((&x, &y), &budget)| x.saturating_add(y) <= budget)
    };
    // Inter-cluster weights, keyed per cluster as neighbour maps.
    let mut weights: Vec<HashMap<usize, f64>> = vec![HashMap::new(); t];
    for edge in problem.graph().edges() {
        let (a, b) = (edge.a.index(), edge.b.index());
        *weights[a].entry(b).or_default() += edge.weight;
        *weights[b].entry(a).or_default() += edge.weight;
    }

    let mut heap: BinaryHeap<Merge> = BinaryHeap::new();
    for (a, nbrs) in weights.iter().enumerate() {
        for (&b, &w) in nbrs {
            if a < b {
                heap.push(Merge { weight: w, a, b });
            }
        }
    }

    while let Some(Merge { weight, a, b }) = heap.pop() {
        if !alive[a] || !alive[b] {
            continue; // stale entry
        }
        // Validate against the current weight (lazy deletion).
        let current = weights[a].get(&b).copied().unwrap_or(0.0);
        if (current - weight).abs() > 1e-12 * (1.0 + current.abs()) {
            continue; // superseded by a merged entry
        }
        if !fits(&sizes[a], &sizes[b], &budgets) {
            continue; // would not fit a node; sizes only grow, so drop
        }
        // Merge b into a (keep the smaller adjacency as the one walked).
        let (keep, gone) = if weights[a].len() >= weights[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        alive[gone] = false;
        let gone_sizes = std::mem::take(&mut sizes[gone]);
        for (dst, src) in sizes[keep].iter_mut().zip(&gone_sizes) {
            *dst += src;
        }
        let moved = std::mem::take(&mut members[gone]);
        members[keep].extend(moved);
        let gone_nbrs = std::mem::take(&mut weights[gone]);
        for (nbr, w) in gone_nbrs {
            if nbr == keep || !alive[nbr] {
                weights[nbr].remove(&gone);
                continue;
            }
            weights[nbr].remove(&gone);
            let merged = {
                let entry = weights[keep].entry(nbr).or_default();
                *entry += w;
                *entry
            };
            weights[nbr].insert(keep, merged);
            if fits(&sizes[keep], &sizes[nbr], &budgets) {
                heap.push(Merge {
                    weight: merged,
                    a: keep.min(nbr),
                    b: keep.max(nbr),
                });
            }
        }
    }

    let mut clusters: Vec<Vec<ObjectId>> = (0..t)
        .filter(|&c| alive[c])
        .map(|c| {
            let mut m: Vec<ObjectId> = members[c].iter().map(|&i| ObjectId(i)).collect();
            m.sort_unstable();
            m
        })
        .collect();
    clusters.sort_unstable_by_key(|m| m[0]);
    clusters
}

/// Total pair weight cut between different clusters (the objective value a
/// placement would pay if every cluster landed on its own node and no two
/// clusters shared one).
#[must_use]
pub fn inter_cluster_weight(problem: &CcaProblem, clusters: &[Vec<ObjectId>]) -> f64 {
    let mut cluster_of = vec![usize::MAX; problem.num_objects()];
    for (c, m) in clusters.iter().enumerate() {
        for &o in m {
            cluster_of[o.index()] = c;
        }
    }
    problem
        .graph()
        .edges()
        .filter(|e| cluster_of[e.a.index()] != cluster_of[e.b.index()])
        .map(|e| e.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..6).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        // Two strong triangles, weak bridge.
        for g in 0..2 {
            for i in 0..3 {
                for j in i + 1..3 {
                    b.add_pair(o[g * 3 + i], o[g * 3 + j], 0.9, 10.0).unwrap();
                }
            }
        }
        b.add_pair(o[2], o[3], 0.05, 10.0).unwrap();
        b.uniform_capacities(2, 40).build().unwrap()
    }

    #[test]
    fn large_budget_keeps_components_whole() {
        let p = problem();
        let clusters = capacity_bounded_clusters(&p, 1000);
        assert_eq!(clusters.len(), 1, "everything is one component");
        assert_eq!(clusters[0].len(), 6);
    }

    #[test]
    fn tight_budget_cuts_the_weak_bridge() {
        let p = problem();
        let clusters = capacity_bounded_clusters(&p, 30);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            assert_eq!(c.len(), 3, "triangles should stay whole: {clusters:?}");
        }
        // Only the weak bridge is cut.
        let cut = inter_cluster_weight(&p, &clusters);
        assert!((cut - 0.5).abs() < 1e-12, "cut weight {cut}");
    }

    #[test]
    fn budget_below_pair_size_gives_singletons() {
        let p = problem();
        let clusters = capacity_bounded_clusters(&p, 10);
        assert_eq!(clusters.len(), 6);
        let cut = inter_cluster_weight(&p, &clusters);
        assert!((cut - p.total_pair_weight()).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_objects_stay_single() {
        let mut b = CcaProblem::builder();
        for i in 0..4 {
            b.add_object(format!("o{i}"), 5);
        }
        let p = b.uniform_capacities(2, 100).build().unwrap();
        let clusters = capacity_bounded_clusters(&p, 100);
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn merging_prefers_heavier_edges() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap(); // weight 9
        b.add_pair(o[1], o[2], 0.1, 10.0).unwrap(); // weight 1
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let clusters = capacity_bounded_clusters(&p, 20);
        assert_eq!(clusters.len(), 2);
        let big = clusters.iter().find(|c| c.len() == 2).unwrap();
        assert_eq!(big.as_slice(), &[o[0], o[1]]);
    }

    #[test]
    fn deterministic() {
        let p = problem();
        assert_eq!(
            capacity_bounded_clusters(&p, 30),
            capacity_bounded_clusters(&p, 30)
        );
    }
}
