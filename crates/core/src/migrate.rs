//! Migration-aware re-placement.
//!
//! The paper argues correlations are stable enough that a placement can be
//! computed offline and kept for a long time (Fig 2B). Eventually, though,
//! drift accumulates and a live system must *move* from its current
//! placement to a better one — and moving an index costs exactly the bytes
//! the placement was built to save. This module provides the operations a
//! deployment needs:
//!
//! * [`migration_bytes`] — the one-time cost of switching placements;
//! * [`reconcile`] — move toward a desired placement under a migration
//!   budget, applying the most valuable moves first;
//! * [`improve_in_place`] — local search from the current placement where
//!   every move must pay for itself against an amortised migration price;
//! * [`drain_node`] — evacuate a node for decommission or failure
//!   recovery, keeping correlation clusters together.

use crate::graph::IncrementalCost;
use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use crate::replica::{DomainTree, ReplicaPlacement};

/// Options for [`reconcile`] and [`improve_in_place`].
#[derive(Debug, Clone, Copy)]
pub struct MigrateOptions {
    /// Capacity slack applied to every dimension during moves.
    pub capacity_slack: f64,
    /// Maximum improvement sweeps.
    pub max_sweeps: usize,
    /// Amortised migration price in objective units per byte moved: a move
    /// of object `i` must reduce the communication cost by more than
    /// `migration_price_per_byte * s(i)` to be taken by
    /// [`improve_in_place`].
    pub migration_price_per_byte: f64,
    /// When set, [`reconcile`] also applies groups whose model gain is
    /// zero or negative once every paying group has been applied, so an
    /// unlimited budget converges to the desired placement. Off by
    /// default: the pair model slightly mispredicts replayed traffic, and
    /// neutral moves are usually node-relabelling noise not worth their
    /// bytes.
    pub apply_nonpositive_gains: bool,
}

impl Default for MigrateOptions {
    fn default() -> Self {
        MigrateOptions {
            capacity_slack: 1.05,
            max_sweeps: 4,
            migration_price_per_byte: 0.0,
            apply_nonpositive_gains: false,
        }
    }
}

/// Outcome of a migration pass.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// The resulting placement.
    pub placement: Placement,
    /// Its communication cost.
    pub comm_cost: f64,
    /// Total bytes moved relative to the starting placement.
    pub migrated_bytes: u64,
    /// Number of objects moved.
    pub moves: usize,
}

/// Bytes that must be shipped to switch from `from` to `to`: the sizes of
/// all objects whose node changes.
///
/// ```
/// use cca_core::{migration_bytes, CcaProblem, Placement};
/// let mut b = CcaProblem::builder();
/// b.add_object("a", 100);
/// b.add_object("b", 50);
/// let problem = b.uniform_capacities(2, 200).build().unwrap();
/// let from = Placement::new(vec![0, 0], 2);
/// let to = Placement::new(vec![0, 1], 2);
/// assert_eq!(migration_bytes(&problem, &from, &to), 50);
/// ```
///
/// # Panics
///
/// Panics if the placements or problem disagree on dimensions.
#[must_use]
pub fn migration_bytes(problem: &CcaProblem, from: &Placement, to: &Placement) -> u64 {
    assert_eq!(from.num_objects(), problem.num_objects());
    assert_eq!(to.num_objects(), problem.num_objects());
    problem
        .objects()
        .filter(|&o| from.node_of(o) != to.node_of(o))
        .map(|o| problem.size(o))
        .sum()
}

/// Per-replica [`migration_bytes`]: the bytes moved when switching from
/// one replica placement to another, summing every copy whose home node
/// changed (column `j` of `from` against column `j` of `to`). With
/// `r = 1` this equals `migration_bytes` on the primary columns.
///
/// # Panics
///
/// Panics if the placements disagree on replica count or dimensions.
#[must_use]
pub fn replica_migration_bytes(
    problem: &CcaProblem,
    from: &ReplicaPlacement,
    to: &ReplicaPlacement,
) -> u64 {
    assert_eq!(
        from.replicas(),
        to.replicas(),
        "replica counts must match to diff placements"
    );
    from.columns()
        .iter()
        .zip(to.columns())
        .map(|(f, t)| migration_bytes(problem, f, t))
        .sum()
}

/// Outcome of a replica-aware migration pass.
#[derive(Debug, Clone)]
pub struct ReplicaMigrationOutcome {
    /// The resulting replica placement.
    pub replica: ReplicaPlacement,
    /// Its replica-aware communication cost
    /// ([`crate::graph::CorrelationGraph::cost_replicas`]).
    pub comm_cost: f64,
    /// Total bytes moved relative to the starting placement.
    pub migrated_bytes: u64,
    /// Number of copies moved.
    pub moves: usize,
}

/// Replica-aware [`improve_in_place`]: greedy per-copy local search where
/// every candidate target must (a) keep the spread invariant — the
/// target's leaf domain holds no *other* copy of the object — and (b)
/// fit the node's copy-inclusive storage load under
/// `capacity · capacity_slack`. Copies are visited object-major in
/// ascending id order, replica index ascending (primary first), targets
/// in ascending node order with a strict-improvement `<` selection, so
/// the walk is deterministic. Deltas come from
/// [`crate::problem::CcaProblem::eval_replica_move_delta`]
/// (min-over-replica-choices split test).
///
/// # Panics
///
/// Panics if the tree and placement disagree on node count.
#[must_use]
pub fn improve_replicas_in_place(
    problem: &CcaProblem,
    tree: &DomainTree,
    current: &ReplicaPlacement,
    options: &MigrateOptions,
) -> ReplicaMigrationOutcome {
    assert_eq!(tree.num_nodes(), current.num_nodes());
    let mut rp = current.clone();
    let r = rp.replicas();
    let n = problem.num_nodes();
    let mut loads = rp.replica_loads(problem);
    let mut moves = 0usize;
    let mut migrated = 0u64;
    for _ in 0..options.max_sweeps.max(1) {
        let mut improved = false;
        for o in problem.objects() {
            let size = problem.size(o);
            let price = options.migration_price_per_byte * size as f64;
            for j in 0..r {
                let src = rp.node_of(o, j);
                let used: Vec<usize> = (0..r)
                    .filter(|&k| k != j)
                    .map(|k| tree.domain_of(rp.node_of(o, k)))
                    .collect();
                let mut best: Option<(f64, usize)> = None;
                for k in 0..n {
                    if k == src || used.contains(&tree.domain_of(k)) {
                        continue;
                    }
                    let fits = (loads[k] + size) as f64
                        <= problem.capacity(k) as f64 * options.capacity_slack;
                    if !fits {
                        continue;
                    }
                    let delta = problem.eval_replica_move_delta(&rp, o, j, k);
                    if delta + price < -1e-12 && best.is_none_or(|(bd, _)| delta < bd) {
                        best = Some((delta, k));
                    }
                }
                if let Some((_, k)) = best {
                    loads[src] -= size;
                    loads[k] += size;
                    rp.assign(o, j, k);
                    migrated += size;
                    moves += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let comm_cost = problem.eval_cost_replicas(&rp, 1);
    ReplicaMigrationOutcome {
        replica: rp,
        comm_cost,
        migrated_bytes: migrated,
        moves,
    }
}

/// Tracks per-node, per-dimension loads for incremental feasibility
/// checks.
struct Loads {
    loads: Vec<Vec<f64>>,
    limits: Vec<Vec<f64>>,
    demands: Vec<Vec<f64>>,
}

impl Loads {
    fn new(problem: &CcaProblem, placement: &Placement, slack: f64) -> Self {
        let n = problem.num_nodes();
        let dims = 1 + problem.resources().len();
        let limits: Vec<Vec<f64>> = (0..n)
            .map(|k| {
                let mut v = vec![problem.capacity(k) as f64 * slack];
                for res in problem.resources() {
                    v.push(res.capacity(k) as f64 * slack);
                }
                v
            })
            .collect();
        let demands: Vec<Vec<f64>> =
            problem.objects().map(|o| problem.demand_vector(o)).collect();
        let mut loads = vec![vec![0.0; dims]; n];
        for o in problem.objects() {
            let k = placement.node_of(o);
            for (dst, d) in loads[k].iter_mut().zip(&demands[o.index()]) {
                *dst += d;
            }
        }
        Loads {
            loads,
            limits,
            demands,
        }
    }

    fn fits(&self, node: usize, obj: ObjectId) -> bool {
        self.loads[node]
            .iter()
            .zip(&self.demands[obj.index()])
            .zip(&self.limits[node])
            .all(|((&l, &d), &lim)| l + d <= lim + 1e-9)
    }

    fn apply(&mut self, obj: ObjectId, src: usize, dst: usize) {
        for dim in 0..self.demands[obj.index()].len() {
            let d = self.demands[obj.index()][dim];
            self.loads[src][dim] -= d;
            self.loads[dst][dim] += d;
        }
    }
}

/// Moves from `current` toward `desired` without exceeding
/// `budget_bytes` of migration traffic.
///
/// Objects whose node differs between the placements are grouped into
/// correlated components sharing a desired target (a cluster usually has
/// to move *together* for the move to pay off) and applied in order of
/// communication-cost gain per migrated byte, re-evaluated over up to
/// `options.max_sweeps` sweeps. By default only groups with a positive
/// model gain move; set
/// [`MigrateOptions::apply_nonpositive_gains`] to keep going while budget
/// remains, which converges to `desired` (up to capacity blocking).
///
/// # Panics
///
/// Panics if the placements or problem disagree on dimensions.
#[must_use]
pub fn reconcile(
    problem: &CcaProblem,
    current: &Placement,
    desired: &Placement,
    budget_bytes: u64,
    options: &MigrateOptions,
) -> MigrationOutcome {
    assert_eq!(desired.num_nodes(), current.num_nodes());
    let graph = problem.graph();
    let mut placement = current.clone();
    let mut loads = Loads::new(problem, &placement, options.capacity_slack);
    let mut budget = budget_bytes;
    let mut moves = 0usize;
    let mut migrated = 0u64;

    for _ in 0..options.max_sweeps.max(1) {
        // Pending objects, grouped into connected components that share a
        // desired target: a correlated group often has to move *together*
        // for the move to pay off, so gains are evaluated per component.
        let pending: Vec<ObjectId> = problem
            .objects()
            .filter(|&o| placement.node_of(o) != desired.node_of(o))
            .collect();
        if pending.is_empty() {
            break;
        }
        let pending_set: std::collections::HashSet<ObjectId> = pending.iter().copied().collect();
        let mut visited: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
        let mut candidates: Vec<(f64, u64, Vec<ObjectId>, usize)> = Vec::new();
        for &start in &pending {
            if visited.contains(&start) {
                continue;
            }
            let target = desired.node_of(start);
            // Flood over pending neighbours with the same target.
            let mut group = Vec::new();
            let mut stack = vec![start];
            visited.insert(start);
            while let Some(o) = stack.pop() {
                group.push(o);
                for (other, _) in graph.neighbors(o) {
                    if pending_set.contains(&other)
                        && !visited.contains(&other)
                        && desired.node_of(other) == target
                    {
                        visited.insert(other);
                        stack.push(other);
                    }
                }
            }
            // Gain of moving the whole group to the target at once.
            let in_group: std::collections::HashSet<ObjectId> = group.iter().copied().collect();
            let mut gain = 0.0;
            for &o in &group {
                let src = placement.node_of(o);
                for (other, w) in graph.neighbors(o) {
                    if in_group.contains(&other) {
                        // Internal edge: contributes only if the members
                        // are currently split (they will be together).
                        if placement.node_of(other) != src {
                            gain += w / 2.0; // counted from both endpoints
                        }
                        continue;
                    }
                    let on = placement.node_of(other);
                    if on == src {
                        gain -= w; // leaves a current partner behind
                    } else if on == target {
                        gain += w; // joins a partner at the target
                    }
                }
            }
            let bytes: u64 = group.iter().map(|&o| problem.size(o)).sum();
            if gain > 1e-12 || options.apply_nonpositive_gains {
                candidates.push((gain / (bytes.max(1)) as f64, bytes, group, target));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.2[0].cmp(&b.2[0]))
        });
        let mut any = false;
        for (_, bytes, group, target) in candidates {
            if bytes > budget {
                continue;
            }
            // Capacity check for the whole group landing on the target
            // (members already there contribute nothing; none are, by
            // construction of `pending`).
            let fits_all = {
                let mut extra = vec![0.0; 1 + problem.resources().len()];
                for &o in &group {
                    for (e, d) in extra.iter_mut().zip(problem.demand_vector(o)) {
                        *e += d;
                    }
                }
                loads.loads[target]
                    .iter()
                    .zip(&extra)
                    .zip(&loads.limits[target])
                    .all(|((&l, &e), &lim)| l + e <= lim + 1e-9)
            };
            if !fits_all {
                continue;
            }
            for &o in &group {
                let src = placement.node_of(o);
                loads.apply(o, src, target);
                placement.assign(o, target);
                migrated += problem.size(o);
                moves += 1;
            }
            budget -= bytes;
            any = true;
        }
        if !any {
            break;
        }
    }

    MigrationOutcome {
        comm_cost: placement.communication_cost(problem),
        placement,
        migrated_bytes: migrated,
        moves,
    }
}

/// Local-search improvement from `current` where each move must pay for
/// its own migration: object `i` moves to node `k` only when the
/// communication-cost reduction exceeds
/// `options.migration_price_per_byte * s(i)`.
///
/// With a price of 0 this is plain capacity-respecting local search; with
/// a high price the placement freezes — exactly the knob an operator turns
/// as confidence in the new statistics grows.
///
/// # Panics
///
/// Panics if the placement and problem disagree on dimensions.
#[must_use]
pub fn improve_in_place(
    problem: &CcaProblem,
    current: &Placement,
    options: &MigrateOptions,
) -> MigrationOutcome {
    let graph = problem.graph();
    let mut placement = current.clone();
    let mut loads = Loads::new(problem, &placement, options.capacity_slack);
    // O(deg)-per-move deltas and a running objective, instead of O(|E|)
    // rescans per candidate.
    let mut inc = IncrementalCost::new(graph, &placement);
    let n = problem.num_nodes();
    let mut moves = 0usize;
    let mut migrated = 0u64;

    let mut fitting: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..options.max_sweeps.max(1) {
        let mut improved = false;
        for o in problem.objects() {
            let src = placement.node_of(o);
            let price = options.migration_price_per_byte * problem.size(o) as f64;
            // One walk of o's CSR row scores every fitting target at once;
            // deltas are bit-identical to the per-target walks, and the
            // ascending-k strict-< selection below picks the same winner.
            fitting.clear();
            fitting.extend((0..n).filter(|&k| k != src && loads.fits(k, o)));
            let deltas = inc.delta_batch(&placement, o, &fitting);
            let mut best: Option<(f64, usize)> = None;
            for (&k, &delta) in fitting.iter().zip(&deltas) {
                // Must beat the migration price strictly.
                if delta + price < -1e-12 && best.is_none_or(|(bd, _)| delta < bd) {
                    best = Some((delta, k));
                }
            }
            if let Some((_, k)) = best {
                loads.apply(o, src, k);
                inc.apply(&mut placement, o, k);
                migrated += problem.size(o);
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    // Reported cost stays the fresh full walk (bit-stable across releases);
    // the accumulator must agree up to float associativity.
    let comm_cost = placement.communication_cost(problem);
    debug_assert!(
        (inc.cost() - comm_cost).abs() <= 1e-9 * (1.0 + comm_cost.abs()),
        "incremental cost drifted from recompute: {} vs {comm_cost}",
        inc.cost()
    );
    MigrationOutcome {
        comm_cost,
        placement,
        migrated_bytes: migrated,
        moves,
    }
}

/// Evacuates every object from `node` (decommission, maintenance, or
/// failure recovery): each of the node's correlation clusters is re-homed
/// to the surviving node with the strongest pull (existing partners) that
/// fits it, largest clusters first; stragglers move object by object.
///
/// Returns `None` when the surviving capacity (with
/// `options.capacity_slack`) cannot absorb the node's objects.
///
/// # Panics
///
/// Panics if `node` is out of range, the placement has fewer than two
/// nodes, or dimensions disagree.
#[must_use]
pub fn drain_node(
    problem: &CcaProblem,
    current: &Placement,
    node: usize,
    options: &MigrateOptions,
) -> Option<MigrationOutcome> {
    assert!(node < current.num_nodes(), "node {node} out of range");
    assert!(current.num_nodes() > 1, "cannot drain the only node");
    let graph = problem.graph();
    let mut placement = current.clone();
    let mut loads = Loads::new(problem, &placement, options.capacity_slack);
    // The drained node accepts nothing.
    for lim in &mut loads.limits[node] {
        *lim = f64::NEG_INFINITY;
    }
    let mut moves = 0usize;
    let mut migrated = 0u64;

    // Correlation clusters on the drained node, largest first.
    let evacuees: Vec<ObjectId> = problem
        .objects()
        .filter(|&o| placement.node_of(o) == node)
        .collect();
    let evac_set: std::collections::HashSet<ObjectId> = evacuees.iter().copied().collect();
    let mut visited: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
    let mut groups: Vec<Vec<ObjectId>> = Vec::new();
    for &start in &evacuees {
        if visited.contains(&start) {
            continue;
        }
        let mut group = Vec::new();
        let mut stack = vec![start];
        visited.insert(start);
        while let Some(o) = stack.pop() {
            group.push(o);
            for (other, _) in graph.neighbors(o) {
                if evac_set.contains(&other) && !visited.contains(&other) {
                    visited.insert(other);
                    stack.push(other);
                }
            }
        }
        groups.push(group);
    }
    groups.sort_unstable_by_key(|g| {
        std::cmp::Reverse(g.iter().map(|&o| problem.size(o)).sum::<u64>())
    });

    let n = problem.num_nodes();
    for group in groups {
        // Try the whole group on the node with the strongest pull.
        let mut demand = vec![0.0; 1 + problem.resources().len()];
        for &o in &group {
            for (d, v) in demand.iter_mut().zip(problem.demand_vector(o)) {
                *d += v;
            }
        }
        let mut join = vec![0.0f64; n];
        for &o in &group {
            for (other, w) in graph.neighbors(o) {
                if !group.contains(&other) {
                    let on = placement.node_of(other);
                    if on != node {
                        join[on] += w;
                    }
                }
            }
        }
        let target = (0..n)
            .filter(|&k| k != node)
            .filter(|&k| {
                loads.loads[k]
                    .iter()
                    .zip(&demand)
                    .zip(&loads.limits[k])
                    .all(|((&l, &d), &lim)| l + d <= lim + 1e-9)
            })
            .max_by(|&a, &b| {
                join[a]
                    .partial_cmp(&join[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            });
        if let Some(k) = target {
            for &o in &group {
                loads.apply(o, node, k);
                placement.assign(o, k);
                migrated += problem.size(o);
                moves += 1;
            }
            continue;
        }
        // Fragmented: per-object fallback, cheapest Δcost first; give up
        // (returning None) when an object fits nowhere. One row walk
        // scores all fitting survivors (each delta bit-equal to its
        // per-target walk), replacing the min_by's rescan per comparison.
        for &o in &group {
            let fitting: Vec<usize> = (0..n)
                .filter(|&k| k != node && loads.fits(k, o))
                .collect();
            // Dispatched through the problem so a sharded instance walks
            // its shard row (bit-identical to the flat row for any shard
            // count).
            let deltas = problem.eval_move_delta_batch(&placement, o, &fitting);
            let target = *fitting
                .iter()
                .zip(&deltas)
                .min_by(|(a, da), (b, db)| {
                    da.partial_cmp(db)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                })
                .map(|(k, _)| k)?;
            loads.apply(o, node, target);
            placement.assign(o, target);
            migrated += problem.size(o);
            moves += 1;
        }
    }

    Some(MigrationOutcome {
        comm_cost: placement.communication_cost(problem),
        placement,
        migrated_bytes: migrated,
        moves,
    })
}

/// One budget-bounded step of a [`MigrationSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSlice {
    /// Objects moved in this slice.
    pub moves: u64,
    /// Bytes shipped in this slice. Never exceeds the budget passed to
    /// [`MigrationSchedule::advance`].
    pub bytes: u64,
    /// Objects still off their desired node after this slice.
    pub remaining_objects: u64,
    /// Bytes still to ship after this slice.
    pub remaining_bytes: u64,
    /// The placement now matches the schedule's desired placement.
    pub complete: bool,
    /// Nothing moved although a diff remains: every pending object is
    /// either larger than the slice budget or blocked by capacity. The
    /// caller should abandon the schedule — retrying cannot make
    /// progress under the same budget and loads.
    pub stalled: bool,
}

/// A controller-approved migration executed as a sequence of
/// byte-budgeted slices instead of one bulk [`reconcile`] — the pacing
/// half of the live runtime contract (DESIGN.md §14). Each epoch the
/// runtime calls [`advance`](MigrationSchedule::advance) with that
/// epoch's byte budget; the slice moves at most that many bytes, so
/// foreground serving latency is never hit by an unbounded re-pack.
#[derive(Debug, Clone)]
pub struct MigrationSchedule {
    desired: Placement,
    options: MigrateOptions,
    slices: u64,
    total_moves: u64,
    total_bytes: u64,
}

impl MigrationSchedule {
    /// Stages a schedule toward `desired`. `apply_nonpositive_gains` is
    /// forced on: the gain accounting already happened when the
    /// controller accepted the migration, and a paced schedule must
    /// converge to the approved placement rather than stop at the
    /// model's break-even point.
    #[must_use]
    pub fn new(desired: Placement, options: MigrateOptions) -> Self {
        MigrationSchedule {
            desired,
            options: MigrateOptions {
                apply_nonpositive_gains: true,
                ..options
            },
            slices: 0,
            total_moves: 0,
            total_bytes: 0,
        }
    }

    /// The placement this schedule is converging to.
    #[must_use]
    pub fn desired(&self) -> &Placement {
        &self.desired
    }

    /// Slices applied so far.
    #[must_use]
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Objects moved across all slices so far.
    #[must_use]
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Bytes shipped across all slices so far.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Applies one slice of at most `budget_bytes` toward the desired
    /// placement, mutating `placement` in place.
    ///
    /// Two passes, both deterministic: first a grouped [`reconcile`]
    /// slice (correlated components move together, best gain per byte
    /// first); then, only when the grouped pass moved nothing while a
    /// diff remains, a per-object fallback in ascending object order —
    /// `reconcile` skips any component larger than the budget, so
    /// without the fallback a big cluster under a small budget would
    /// stall forever instead of trickling over several epochs.
    ///
    /// # Panics
    ///
    /// Panics if the placements or problem disagree on dimensions.
    pub fn advance(
        &mut self,
        problem: &CcaProblem,
        placement: &mut Placement,
        budget_bytes: u64,
    ) -> MigrationSlice {
        let out = reconcile(problem, placement, &self.desired, budget_bytes, &self.options);
        let mut moves = out.moves as u64;
        let mut bytes = out.migrated_bytes;
        *placement = out.placement;

        if bytes == 0 {
            let mut loads = Loads::new(problem, placement, self.options.capacity_slack);
            let mut remaining = budget_bytes;
            for o in problem.objects() {
                let target = self.desired.node_of(o);
                let src = placement.node_of(o);
                if src == target {
                    continue;
                }
                let size = problem.size(o);
                if size > remaining || !loads.fits(target, o) {
                    continue;
                }
                loads.apply(o, src, target);
                placement.assign(o, target);
                remaining -= size;
                bytes += size;
                moves += 1;
            }
        }
        debug_assert!(bytes <= budget_bytes, "slice {bytes} over budget {budget_bytes}");

        self.slices += 1;
        self.total_moves += moves;
        self.total_bytes += bytes;
        let (remaining_objects, remaining_bytes) = problem
            .objects()
            .filter(|&o| placement.node_of(o) != self.desired.node_of(o))
            .fold((0u64, 0u64), |(n, b), o| (n + 1, b + problem.size(o)));
        MigrationSlice {
            moves,
            bytes,
            remaining_objects,
            remaining_bytes,
            complete: remaining_objects == 0,
            stalled: moves == 0 && remaining_objects > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..6).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        for g in 0..2 {
            for i in 0..3 {
                for j in i + 1..3 {
                    b.add_pair(o[g * 3 + i], o[g * 3 + j], 0.9, 10.0).unwrap();
                }
            }
        }
        b.uniform_capacities(2, 40).build().unwrap()
    }

    #[test]
    fn migration_bytes_counts_changed_objects() {
        let p = problem();
        let a = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let b = Placement::new(vec![0, 0, 1, 1, 1, 0], 2);
        assert_eq!(migration_bytes(&p, &a, &a), 0);
        assert_eq!(migration_bytes(&p, &a, &b), 20);
    }

    #[test]
    fn reconcile_with_zero_budget_is_identity() {
        let p = problem();
        let scattered = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let out = reconcile(&p, &scattered, &desired, 0, &MigrateOptions::default());
        assert_eq!(out.placement, scattered);
        assert_eq!(out.migrated_bytes, 0);
        assert_eq!(out.moves, 0);
    }

    #[test]
    fn reconcile_with_ample_budget_reaches_desired_cost() {
        let p = problem();
        let scattered = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let out = reconcile(&p, &scattered, &desired, u64::MAX, &MigrateOptions::default());
        assert_eq!(out.comm_cost, desired.communication_cost(&p));
        assert_eq!(out.comm_cost, 0.0);
        assert!(out.migrated_bytes <= migration_bytes(&p, &scattered, &desired));
        assert!(out.placement.within_all_capacities(&p, 1.05 + 1e-9));
    }

    #[test]
    fn reconcile_respects_budget_and_prioritises_gain() {
        let p = problem();
        let scattered = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        // Budget for exactly one object move.
        let out = reconcile(&p, &scattered, &desired, 10, &MigrateOptions::default());
        assert!(out.migrated_bytes <= 10);
        assert!(out.moves <= 1);
        // Any applied move must improve cost.
        assert!(out.comm_cost <= scattered.communication_cost(&p));
    }

    #[test]
    fn improve_in_place_fixes_obvious_misplacements() {
        let p = problem();
        // o2 stranded away from its triangle.
        let start = Placement::new(vec![0, 0, 1, 1, 1, 1], 2);
        let out = improve_in_place(&p, &start, &MigrateOptions::default());
        assert_eq!(out.placement.node_of(crate::problem::ObjectId(2)), 0);
        assert_eq!(out.comm_cost, 0.0);
        assert_eq!(out.migrated_bytes, 10);
    }

    #[test]
    fn migration_price_freezes_marginal_moves() {
        let p = problem();
        let start = Placement::new(vec![0, 0, 1, 1, 1, 1], 2);
        // Gain of moving o2 home is 2 * 9 = 18; price above that freezes.
        let expensive = MigrateOptions {
            migration_price_per_byte: 2.0, // 2.0 * 10 bytes = 20 > 18
            ..MigrateOptions::default()
        };
        let out = improve_in_place(&p, &start, &expensive);
        assert_eq!(out.moves, 0);
        assert_eq!(out.placement, start);

        let cheap = MigrateOptions {
            migration_price_per_byte: 1.0, // 10 < 18: worth it
            ..MigrateOptions::default()
        };
        let out = improve_in_place(&p, &start, &cheap);
        assert!(out.moves >= 1);
        assert_eq!(out.comm_cost, 0.0);
    }

    #[test]
    fn capacity_blocks_moves() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 5.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let start = Placement::new(vec![0, 1], 2);
        let desired = Placement::new(vec![0, 0], 2); // infeasible target
        let out = reconcile(&p, &start, &desired, u64::MAX, &MigrateOptions {
            capacity_slack: 1.0,
            ..MigrateOptions::default()
        });
        assert_eq!(out.placement, start, "capacity must block the move");
    }

    #[test]
    fn drain_moves_clusters_wholesale() {
        let p = problem();
        let start = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        // Need a third node so draining node 0 has somewhere to go.
        let p3 = p.with_capacities(vec![40, 40, 40]);
        let start3 = Placement::new(vec![0, 0, 0, 1, 1, 1], 3);
        let out = drain_node(&p3, &start3, 0, &MigrateOptions::default()).expect("drainable");
        for i in 0..3u32 {
            assert_ne!(out.placement.node_of(crate::problem::ObjectId(i)), 0);
        }
        // The triangle stays together: zero cost.
        assert_eq!(out.comm_cost, 0.0);
        assert_eq!(out.migrated_bytes, 30);
        assert_eq!(out.moves, 3);
        let _ = start;
    }

    #[test]
    fn drain_prefers_nodes_with_partners() {
        // Object 0 on node 0, its partners on node 2 of 3: drain should
        // send it to node 2, not node 1.
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 5)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap();
        b.add_pair(o[0], o[2], 0.9, 10.0).unwrap();
        let p = b.uniform_capacities(3, 20).build().unwrap();
        let start = Placement::new(vec![0, 2, 2], 3);
        let out = drain_node(&p, &start, 0, &MigrateOptions::default()).expect("drainable");
        assert_eq!(out.placement.node_of(o[0]), 2);
        assert_eq!(out.comm_cost, 0.0);
    }

    #[test]
    fn drain_fails_when_capacity_missing() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 10);
        b.add_object("b", 10);
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let start = Placement::new(vec![0, 1], 2);
        // Node 1 is full (10/10): draining node 0 cannot fit `a` anywhere.
        assert!(drain_node(&p, &start, 0, &MigrateOptions {
            capacity_slack: 1.0,
            ..MigrateOptions::default()
        })
        .is_none());
    }

    #[test]
    fn schedule_slices_respect_budget_and_converge() {
        let p = problem();
        let mut placement = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let total = migration_bytes(&p, &placement, &desired);
        let mut schedule = MigrationSchedule::new(desired.clone(), MigrateOptions::default());
        let mut shipped = 0u64;
        for _ in 0..16 {
            let slice = schedule.advance(&p, &mut placement, 10);
            assert!(slice.bytes <= 10, "slice over budget: {slice:?}");
            assert!(!slice.stalled, "feasible schedule stalled: {slice:?}");
            shipped += slice.bytes;
            if slice.complete {
                break;
            }
        }
        assert_eq!(placement, desired);
        assert_eq!(shipped, total);
        assert_eq!(schedule.total_bytes(), total);
        assert_eq!(schedule.total_moves(), total / 10);
    }

    #[test]
    fn schedule_falls_back_per_object_for_oversized_groups() {
        // A two-object correlated cluster (20 bytes) under a 10-byte
        // budget: the grouped reconcile pass skips it every slice, so
        // the per-object fallback must trickle it over two epochs.
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 0.9, 10.0).unwrap();
        let p = b.uniform_capacities(2, 40).build().unwrap();
        let mut placement = Placement::new(vec![1, 1], 2);
        let desired = Placement::new(vec![0, 0], 2);
        let mut schedule = MigrationSchedule::new(desired.clone(), MigrateOptions::default());

        let first = schedule.advance(&p, &mut placement, 10);
        assert_eq!(first.bytes, 10);
        assert_eq!(first.moves, 1);
        assert_eq!(first.remaining_objects, 1);
        assert!(!first.complete && !first.stalled);

        let second = schedule.advance(&p, &mut placement, 10);
        assert_eq!(second.bytes, 10);
        assert!(second.complete);
        assert_eq!(placement, desired);
    }

    #[test]
    fn schedule_stalls_when_budget_below_every_object() {
        let p = problem();
        let mut placement = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let mut schedule = MigrationSchedule::new(desired, MigrateOptions::default());
        // Every object is 10 bytes; a 5-byte budget can never move one.
        let slice = schedule.advance(&p, &mut placement, 5);
        assert_eq!(slice.bytes, 0);
        assert_eq!(slice.moves, 0);
        assert!(slice.stalled);
        assert!(!slice.complete);
        assert_eq!(placement, Placement::new(vec![0, 1, 0, 1, 0, 1], 2));
    }

    #[test]
    fn schedule_unlimited_budget_completes_in_one_slice() {
        let p = problem();
        let mut placement = Placement::new(vec![0, 1, 0, 1, 0, 1], 2);
        let desired = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let mut schedule = MigrationSchedule::new(desired.clone(), MigrateOptions::default());
        let slice = schedule.advance(&p, &mut placement, u64::MAX);
        assert!(slice.complete);
        assert_eq!(slice.remaining_bytes, 0);
        assert_eq!(placement, desired);
    }

    #[test]
    #[should_panic(expected = "cannot drain the only node")]
    fn drain_single_node_panics() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        let p = b.uniform_capacities(1, 10).build().unwrap();
        let start = Placement::new(vec![0], 1);
        let _ = drain_node(&p, &start, 0, &MigrateOptions::default());
    }
}
