//! Capacity repair for rounded placements.
//!
//! The paper's Theorem 3 bounds only the **expected** per-node load of a
//! rounded placement, and the LP relaxation is degenerate in a way that
//! makes real overloads routine: giving every object the identical
//! fractional row `x_{i,k} = c(k) / Σ c` is feasible whenever the instance
//! is feasible at all, zeroes every `z_{i,j}`, and is therefore always
//! optimal — and Algorithm 2.1 never splits identical rows, so whole
//! correlation components land on single nodes no matter their size. (See
//! DESIGN.md §"Reproduction findings".) The paper's remedy is
//! "conservative capacities" tolerance (§2.3); a usable system needs an
//! explicit repair stage, which this module provides:
//!
//! 1. **Cluster moves** — a connected group of objects co-located on an
//!    overloaded node can often move wholesale for free (its cut to the
//!    rest of the node is zero when it is an entire correlation
//!    component);
//! 2. **Single-object eviction** — when no whole cluster fits anywhere,
//!    evict the object with the least communication-cost increase per byte
//!    freed;
//! 3. **Improvement sweeps** — a bounded local-search pass that re-homes
//!    objects when a capacity-respecting move strictly reduces cost,
//!    undoing greedy eviction mistakes.
//!
//! All reported experiment costs are measured *after* repair, so the
//! comparison against the baselines stays honest.

use crate::graph::CorrelationGraph;
use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use crate::replica::{respread_dead, DomainTree, ReplicaPlacement};
use std::collections::HashMap;

/// Outcome of [`repair_capacity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOutcome {
    /// Number of objects moved (cluster moves count each member).
    pub moves: usize,
    /// Whether all nodes ended within `capacity * slack`.
    pub feasible: bool,
}

struct Repairer<'a> {
    problem: &'a CcaProblem,
    /// `limits[node][dim]`: dimension 0 is storage, then one per secondary
    /// resource (paper 3.3), all scaled by the slack.
    limits: Vec<Vec<f64>>,
    graph: &'a CorrelationGraph,
    /// `loads[node][dim]`.
    loads: Vec<Vec<f64>>,
    /// Cached per-object demand vectors.
    demands: Vec<Vec<f64>>,
    moves: usize,
}

impl Repairer<'_> {
    /// Cost changes of moving object `i` to each node in `targets`
    /// (negative is an improvement) — one O(deg) CSR row walk scores them
    /// all, each entry bit-equal to the per-target walk. Dispatched
    /// through the problem so a sharded instance walks its shard row
    /// (bit-identical to the flat row for any shard count).
    fn move_delta_batch(&self, placement: &Placement, i: ObjectId, targets: &[usize]) -> Vec<f64> {
        self.problem.eval_move_delta_batch(placement, i, targets)
    }

    fn fits(&self, node: usize, extra: &[f64]) -> bool {
        self.loads[node]
            .iter()
            .zip(extra)
            .zip(&self.limits[node])
            .all(|((&l, &e), &lim)| l + e <= lim + 1e-9)
    }

    fn apply_move(&mut self, placement: &mut Placement, obj: ObjectId, src: usize, dst: usize) {
        for dim in 0..self.demands[obj.index()].len() {
            let d = self.demands[obj.index()][dim];
            self.loads[src][dim] -= d;
            self.loads[dst][dim] += d;
        }
        placement.assign(obj, dst);
        self.moves += 1;
    }

    /// Overload of `node`: the worst relative excess over any dimension.
    fn overload(&self, node: usize) -> f64 {
        self.loads[node]
            .iter()
            .zip(&self.limits[node])
            .map(|(&l, &lim)| (l - lim) / (1.0 + lim))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Clusters on `node`: connected groups (within the correlation graph)
    /// of objects currently placed on `node`, sorted largest first.
    fn clusters_on(&self, placement: &Placement, node: usize) -> Vec<Vec<ObjectId>> {
        let mut visited: HashMap<ObjectId, bool> = HashMap::new();
        let mut clusters = Vec::new();
        for i in self.problem.objects() {
            if placement.node_of(i) != node || visited.contains_key(&i) {
                continue;
            }
            let mut cluster = Vec::new();
            let mut stack = vec![i];
            visited.insert(i, true);
            while let Some(o) = stack.pop() {
                cluster.push(o);
                for (other, _) in self.graph.neighbors(o) {
                    if placement.node_of(other) == node && !visited.contains_key(&other) {
                        visited.insert(other, true);
                        stack.push(other);
                    }
                }
            }
            clusters.push(cluster);
        }
        clusters.sort_unstable_by_key(|c| std::cmp::Reverse(c.len()));
        clusters
    }

    /// Tries one repair step on the most overloaded node. Returns `false`
    /// when nothing is overloaded or nothing can move.
    fn step(&mut self, placement: &mut Placement) -> Result<bool, ()> {
        let n = self.problem.num_nodes();
        let Some((src, _)) = (0..n)
            .map(|k| (k, self.overload(k)))
            .filter(|&(_, over)| over > 1e-12)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        else {
            return Ok(false); // feasible
        };

        // Candidate 1: whole-cluster moves (zero cut cost for a complete
        // component; cheap for weakly attached groups).
        let dims = 1 + self.problem.resources().len();
        let mut best_cluster: Option<(f64, Vec<ObjectId>, usize)> = None;
        for cluster in self.clusters_on(placement, src) {
            // Skip the degenerate "whole node" cluster if it cannot fit
            // anywhere; singleton clusters are covered by candidate 2.
            let mut demand = vec![0.0f64; dims];
            for &o in &cluster {
                for (dst, d) in demand.iter_mut().zip(&self.demands[o.index()]) {
                    *dst += d;
                }
            }
            let size = demand[0];
            if demand.iter().all(|&d| d == 0.0) {
                continue;
            }
            // Cut cost to the rest of src plus joins at each target.
            let in_cluster: std::collections::HashSet<ObjectId> =
                cluster.iter().copied().collect();
            let mut base = 0.0;
            let mut join = vec![0.0f64; n];
            for &o in &cluster {
                for (other, w) in self.graph.neighbors(o) {
                    if in_cluster.contains(&other) {
                        continue;
                    }
                    let on = placement.node_of(other);
                    if on == src {
                        base += w;
                    } else {
                        join[on] += w;
                    }
                }
            }
            for k in 0..n {
                if k == src || !self.fits(k, &demand) {
                    continue;
                }
                let delta = base - join[k];
                let score = delta / size.max(1.0);
                if best_cluster.as_ref().is_none_or(|&(bs, _, _)| score < bs) {
                    best_cluster = Some((score, cluster.clone(), k));
                }
            }
        }
        if let Some((_, cluster, target)) = best_cluster {
            for &o in &cluster {
                self.apply_move(placement, o, src, target);
            }
            return Ok(true);
        }

        // Candidate 2: single-object eviction by Δcost per byte. One CSR
        // row walk per object scores all its fitting targets; ascending-k
        // strict-< selection is unchanged.
        let mut best: Option<(f64, ObjectId, usize)> = None;
        let mut fitting: Vec<usize> = Vec::with_capacity(n);
        for i in self.problem.objects() {
            if placement.node_of(i) != src {
                continue;
            }
            let demand = &self.demands[i.index()];
            if demand.iter().all(|&d| d == 0.0) {
                continue;
            }
            fitting.clear();
            fitting.extend((0..n).filter(|&k| k != src && self.fits(k, demand)));
            let deltas = self.move_delta_batch(placement, i, &fitting);
            for (&k, &delta) in fitting.iter().zip(&deltas) {
                let score = delta / demand[0].max(1.0);
                if best.is_none_or(|(bs, _, _)| score < bs) {
                    best = Some((score, i, k));
                }
            }
        }
        let Some((_, obj, target)) = best else {
            return Err(()); // stuck: nothing fits anywhere
        };
        self.apply_move(placement, obj, src, target);
        Ok(true)
    }

    /// One local-search sweep: re-home any object whose best
    /// capacity-respecting node strictly reduces cost. Returns the number
    /// of improving moves.
    fn improvement_sweep(&mut self, placement: &mut Placement) -> usize {
        let n = self.problem.num_nodes();
        let mut improved = 0;
        let mut fitting: Vec<usize> = Vec::with_capacity(n);
        for i in self.problem.objects() {
            let src = placement.node_of(i);
            let demand = self.demands[i.index()].clone();
            // One row walk scores every fitting target (bit-equal per
            // entry), with the same ascending-k strict-< winner.
            fitting.clear();
            fitting.extend((0..n).filter(|&k| k != src && self.fits(k, &demand)));
            let deltas = self.move_delta_batch(placement, i, &fitting);
            let mut best: Option<(f64, usize)> = None;
            for (&k, &delta) in fitting.iter().zip(&deltas) {
                if delta < -1e-12 && best.is_none_or(|(bd, _)| delta < bd) {
                    best = Some((delta, k));
                }
            }
            if let Some((_, k)) = best {
                self.apply_move(placement, i, src, k);
                improved += 1;
            }
        }
        improved
    }
}

/// Moves objects between nodes until every node's load is within
/// `capacity(k) * slack`, then runs up to `improvement_sweeps` bounded
/// local-search sweeps (capacity-respecting, strictly cost-reducing moves
/// only).
///
/// # Panics
///
/// Panics if the placement and problem dimensions disagree or
/// `slack < 1.0`.
pub fn repair_capacity(
    problem: &CcaProblem,
    placement: &mut Placement,
    slack: f64,
) -> RepairOutcome {
    repair_capacity_with(problem, placement, slack, 2)
}

/// [`repair_capacity`] with an explicit number of improvement sweeps
/// (0 disables local search).
///
/// # Panics
///
/// Panics under the same conditions as [`repair_capacity`].
pub fn repair_capacity_with(
    problem: &CcaProblem,
    placement: &mut Placement,
    slack: f64,
    improvement_sweeps: usize,
) -> RepairOutcome {
    assert!(slack >= 1.0, "slack must be at least 1.0");
    assert_eq!(placement.num_objects(), problem.num_objects());
    let n = problem.num_nodes();
    let dims = 1 + problem.resources().len();
    let limits: Vec<Vec<f64>> = (0..n)
        .map(|k| {
            let mut v = vec![problem.capacity(k) as f64 * slack];
            for res in problem.resources() {
                v.push(res.capacity(k) as f64 * slack);
            }
            v
        })
        .collect();
    let mut loads = vec![vec![0.0f64; dims]; n];
    let demands: Vec<Vec<f64>> = problem.objects().map(|i| problem.demand_vector(i)).collect();
    for i in problem.objects() {
        let node = placement.node_of(i);
        for (dst, d) in loads[node].iter_mut().zip(&demands[i.index()]) {
            *dst += d;
        }
    }
    let mut repairer = Repairer {
        problem,
        limits,
        graph: problem.graph(),
        loads,
        demands,
        moves: 0,
    };

    // Eviction loop. Every step moves ≥1 object off an overloaded node
    // onto a node that stays within limits, so total overload strictly
    // decreases; the cap is defence in depth.
    let max_steps = 4 * problem.num_objects() + 16;
    let mut feasible = true;
    for _ in 0..max_steps {
        match repairer.step(placement) {
            Ok(true) => continue,
            Ok(false) => break,
            Err(()) => {
                feasible = false;
                break;
            }
        }
    }
    if feasible {
        feasible = (0..n).all(|k| repairer.overload(k) <= 1e-12);
    }

    for _ in 0..improvement_sweeps {
        if repairer.improvement_sweep(placement) == 0 {
            break;
        }
    }

    RepairOutcome {
        moves: repairer.moves,
        feasible,
    }
}

/// Outcome of [`repair_replica_spread`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRepairOutcome {
    /// Number of copies re-placed off dead nodes.
    pub moves: usize,
    /// Bytes moved (one object size per re-placed copy).
    pub migrated_bytes: u64,
    /// Whether the repaired placement satisfies the spread invariant (it
    /// can only be `false` when fewer alive leaf domains remain than
    /// replicas — the re-spread then degrades to best-effort).
    pub spread_valid: bool,
}

/// Re-spreads a replica placement after node or whole-domain loss: every
/// copy on a node in `dead_nodes` is re-placed onto an alive node whose
/// leaf domain holds no surviving copy of the object, by the
/// deterministic copy-target rule of [`crate::replica`] (fresh zone,
/// then fitting under `capacity · slack`, then lightest copy-inclusive
/// load, then lowest node id). Objects are visited in ascending id
/// order, replicas in ascending index order — reproducible across
/// threads and shards.
///
/// This is the replica analogue of zero-capacity +
/// [`repair_capacity`] in [`crate::resilience::survive_node_loss`]; it
/// restores the spread invariant whenever enough alive leaf domains
/// remain.
///
/// # Panics
///
/// Panics if a dead node id is out of range or the tree and placement
/// disagree on node count.
pub fn repair_replica_spread(
    problem: &CcaProblem,
    tree: &DomainTree,
    rp: &mut ReplicaPlacement,
    dead_nodes: &[usize],
    slack: f64,
) -> ReplicaRepairOutcome {
    assert_eq!(
        tree.num_nodes(),
        rp.num_nodes(),
        "domain tree and placement disagree on node count"
    );
    let mut dead = vec![false; rp.num_nodes()];
    for &n in dead_nodes {
        dead[n] = true;
    }
    let (moves, migrated_bytes) = respread_dead(problem, tree, rp, &dead, slack);
    ReplicaRepairOutcome {
        moves,
        migrated_bytes,
        spread_valid: rp.spread_valid(tree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..6).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        // Two triangles with strong internal correlation, weakly linked.
        for g in 0..2 {
            for i in 0..3 {
                for j in i + 1..3 {
                    b.add_pair(o[g * 3 + i], o[g * 3 + j], 0.9, 10.0).unwrap();
                }
            }
        }
        b.add_pair(o[0], o[3], 0.05, 10.0).unwrap();
        b.uniform_capacities(2, 40).build().unwrap()
    }

    #[test]
    fn feasible_placement_is_untouched() {
        let p = clustered();
        let mut pl = Placement::new(vec![0, 0, 0, 1, 1, 1], 2);
        let before = pl.clone();
        let out = repair_capacity(&p, &mut pl, 1.0);
        assert_eq!(out.moves, 0);
        assert!(out.feasible);
        assert_eq!(pl, before);
    }

    #[test]
    fn overload_is_resolved_along_cheapest_cut() {
        let p = clustered();
        // Everything co-located: node 0 load 60 > 40. The optimal repair
        // cuts only the weak (o0,o3) edge, cost 0.5.
        let mut pl = Placement::new(vec![0, 0, 0, 0, 0, 0], 2);
        let out = repair_capacity(&p, &mut pl, 1.0);
        assert!(out.feasible, "repair failed: {out:?}");
        assert!(pl.within_capacity(&p, 1.0));
        let cost = pl.communication_cost(&p);
        assert!(
            cost <= 0.5 + 1e-9,
            "repair should cut only the weak edge, cost {cost}"
        );
    }

    #[test]
    fn disconnected_clusters_move_for_free() {
        // Two independent components crammed on one node: repair should
        // move one component wholesale at zero cost.
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap();
        b.add_pair(o[2], o[3], 0.9, 10.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let mut pl = Placement::new(vec![0, 0, 0, 0], 2);
        let out = repair_capacity(&p, &mut pl, 1.0);
        assert!(out.feasible);
        assert!(pl.within_capacity(&p, 1.0));
        assert_eq!(pl.communication_cost(&p), 0.0);
        // Pairs stayed together.
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
        assert_eq!(pl.node_of(o[2]), pl.node_of(o[3]));
    }

    #[test]
    fn impossible_repair_reports_infeasible() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 10);
        b.add_object("b", 10);
        let p = b.uniform_capacities(2, 5).build().unwrap();
        let mut pl = Placement::new(vec![0, 0], 2);
        let out = repair_capacity(&p, &mut pl, 1.0);
        assert!(!out.feasible);
    }

    #[test]
    fn slack_loosens_the_limit() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 1.0).unwrap();
        let p = b.uniform_capacities(2, 24).build().unwrap();
        let mut pl = Placement::new(vec![0, 0, 0], 2);
        // Load 30 on node 0; slack 1.5 allows 36, so nothing to do.
        let out = repair_capacity(&p, &mut pl, 1.5);
        assert_eq!(out.moves, 0);
        assert!(out.feasible);
        // Strict slack forces a move, and the correlated pair survives.
        let out2 = repair_capacity(&p, &mut pl, 1.0);
        assert!(out2.feasible);
        assert!(out2.moves >= 1);
        assert!(pl.within_capacity(&p, 1.0));
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
    }

    #[test]
    fn improvement_sweep_fixes_bad_homes() {
        // o0 strongly tied to o1,o2 but placed alone: the sweep brings it
        // home even with no overload anywhere.
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 5)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap();
        b.add_pair(o[0], o[2], 0.9, 10.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let mut pl = Placement::new(vec![1, 0, 0], 2);
        let out = repair_capacity(&p, &mut pl, 1.0);
        assert!(out.feasible);
        assert_eq!(pl.communication_cost(&p), 0.0);
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
    }

    #[test]
    fn zero_sweeps_skip_local_search() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..2).map(|i| b.add_object(format!("o{i}"), 5)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let mut pl = Placement::new(vec![1, 0], 2);
        let out = repair_capacity_with(&p, &mut pl, 1.0, 0);
        assert!(out.feasible);
        assert_eq!(out.moves, 0); // no overload, no sweeps => untouched
        assert_eq!(pl.node_of(o[0]), 1);
    }

    #[test]
    #[should_panic(expected = "slack must be at least")]
    fn slack_below_one_is_rejected() {
        let p = clustered();
        let mut pl = Placement::new(vec![0; 6], 2);
        let _ = repair_capacity(&p, &mut pl, 0.5);
    }
}
