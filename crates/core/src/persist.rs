//! Plain-text persistence for placements and controller reports.
//!
//! Placement format (`# cca-placement v1`): one `object-name<TAB>node`
//! line per object, in object-id order. Names make the file robust
//! against object reordering between the writing and reading problem
//! instances: loading matches by name, not by position.
//!
//! Controller-report format (`# cca-controller-report v1`): one
//! `key<TAB>value` line per [`ControllerReport`] field in declaration
//! order. Floats round-trip through Rust's shortest exact decimal
//! `Display`, so a written report re-reads bit for bit.
//!
//! Serving-report format (`# cca-serving-report v1`): one
//! `key<TAB>value` line per scalar [`ServingReport`] field in
//! declaration order, then one `bucket<TAB>i<TAB>count` line per
//! non-empty histogram bucket in ascending bucket order. Every value is
//! a `u64` or a hex digest (the histogram's dyadic bucket bounds are the
//! reason the quantiles are integers), so the round trip is bit-exact
//! by construction.
//!
//! Live-report format (`# cca-live-report v1`): the same framing with
//! [`LiveReport`]'s scalar fields and **three** histogram row kinds
//! (`bucket_pre`/`bucket_mid`/`bucket_post`) for the latency split
//! around the migration window.
//!
//! All three report formats share one framing layer (header check,
//! `key<TAB>value` scalars, repeated histogram rows, line-numbered
//! errors); the per-format functions only choose keys and field types.

use crate::controller::ControllerReport;
use crate::placement::Placement;
use crate::problem::CcaProblem;
use crate::replica::ReplicaPlacement;
use crate::serving::{LatencyHistogram, LiveReport, ServingReport, NUM_BUCKETS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Error from [`read_placement`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a valid v1 placement for the given problem.
    Format {
        /// 1-based line number (0 for whole-file problems).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialises `placement` against `problem` (names come from the problem).
///
/// # Panics
///
/// Panics if the dimensions disagree.
#[must_use]
pub fn format_placement(problem: &CcaProblem, placement: &Placement) -> String {
    assert_eq!(placement.num_objects(), problem.num_objects());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cca-placement v1 nodes={} objects={}",
        placement.num_nodes(),
        placement.num_objects()
    );
    for o in problem.objects() {
        let _ = writeln!(out, "{}\t{}", problem.name(o), placement.node_of(o));
    }
    out
}

/// Writes a placement in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_placement<W: Write>(
    mut writer: W,
    problem: &CcaProblem,
    placement: &Placement,
) -> Result<(), PersistError> {
    writer.write_all(format_placement(problem, placement).as_bytes())?;
    Ok(())
}

/// Reads a v1 placement and matches it against `problem` by object name.
///
/// # Errors
///
/// Fails on malformed input, unknown or missing object names, duplicate
/// names (in the file or the problem), or nodes out of range.
pub fn read_placement<R: Read>(
    reader: R,
    problem: &CcaProblem,
) -> Result<Placement, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.ok_or(PersistError::Format {
        line: 1,
        message: "empty input".into(),
    })?;
    let rest = header
        .strip_prefix("# cca-placement v1 nodes=")
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad header {header:?}"),
        })?;
    let nodes: usize = rest
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad node count in header {header:?}"),
        })?;

    let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(problem.num_objects());
    for o in problem.objects() {
        if by_name.insert(problem.name(o), o.index()).is_some() {
            return Err(PersistError::Format {
                line: 0,
                message: format!(
                    "problem has duplicate object name {:?}; name-keyed loading is ambiguous",
                    problem.name(o)
                ),
            });
        }
    }

    let mut assignment = vec![u32::MAX; problem.num_objects()];
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (name, node_str) = trimmed.rsplit_once('\t').ok_or(PersistError::Format {
            line: line_no,
            message: "expected name<TAB>node".into(),
        })?;
        let node: usize = node_str.trim().parse().map_err(|_| PersistError::Format {
            line: line_no,
            message: format!("invalid node {node_str:?}"),
        })?;
        if node >= nodes {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("node {node} out of range (< {nodes})"),
            });
        }
        let &idx = by_name.get(name).ok_or(PersistError::Format {
            line: line_no,
            message: format!("unknown object {name:?}"),
        })?;
        if assignment[idx] != u32::MAX {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("object {name:?} assigned twice"),
            });
        }
        assignment[idx] = node as u32;
    }
    if let Some(missing) = assignment.iter().position(|&a| a == u32::MAX) {
        return Err(PersistError::Format {
            line: 0,
            message: format!(
                "object {:?} has no assignment",
                problem.name(crate::problem::ObjectId(missing as u32))
            ),
        });
    }
    Ok(Placement::new(assignment, nodes))
}

/// Serialises a replica placement. With `r = 1` this is **byte-identical**
/// to [`format_placement`] on the primary column (the `v1` format); with
/// `r > 1` the header becomes `# cca-placement v2 … replicas=r` and every
/// line carries `r` tab-separated nodes (primary first).
///
/// # Panics
///
/// Panics if the dimensions disagree.
#[must_use]
pub fn format_replica_placement(problem: &CcaProblem, rp: &ReplicaPlacement) -> String {
    if rp.replicas() == 1 {
        return format_placement(problem, rp.primary());
    }
    assert_eq!(rp.num_objects(), problem.num_objects());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cca-placement v2 nodes={} objects={} replicas={}",
        rp.num_nodes(),
        rp.num_objects(),
        rp.replicas()
    );
    for o in problem.objects() {
        let _ = write!(out, "{}", problem.name(o));
        for j in 0..rp.replicas() {
            let _ = write!(out, "\t{}", rp.node_of(o, j));
        }
        out.push('\n');
    }
    out
}

/// Writes a replica placement (`v1` framing for `r = 1`, `v2` otherwise).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_replica_placement<W: Write>(
    mut writer: W,
    problem: &CcaProblem,
    rp: &ReplicaPlacement,
) -> Result<(), PersistError> {
    writer.write_all(format_replica_placement(problem, rp).as_bytes())?;
    Ok(())
}

/// Reads a placement in either framing: a `v1` file loads as an `r = 1`
/// replica placement (exactly [`read_placement`]), a `v2` file loads all
/// `r` columns and matches objects by name.
///
/// # Errors
///
/// Fails on malformed input, unknown/missing/duplicate object names, or
/// nodes out of range.
pub fn read_replica_placement<R: Read>(
    mut reader: R,
    problem: &CcaProblem,
) -> Result<ReplicaPlacement, PersistError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    if !text.starts_with("# cca-placement v2 ") {
        return Ok(ReplicaPlacement::from_primary(read_placement(
            text.as_bytes(),
            problem,
        )?));
    }
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let parse_field = |key: &str| -> Result<usize, PersistError> {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .ok_or(PersistError::Format {
                line: 1,
                message: format!("bad {key} field in header {header:?}"),
            })
    };
    let nodes = parse_field("nodes=")?;
    let replicas = parse_field("replicas=")?;
    if replicas == 0 || nodes == 0 {
        return Err(PersistError::Format {
            line: 1,
            message: format!("degenerate header {header:?}"),
        });
    }
    let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(problem.num_objects());
    for o in problem.objects() {
        if by_name.insert(problem.name(o), o.index()).is_some() {
            return Err(PersistError::Format {
                line: 0,
                message: format!(
                    "problem has duplicate object name {:?}; name-keyed loading is ambiguous",
                    problem.name(o)
                ),
            });
        }
    }
    let mut columns = vec![vec![u32::MAX; problem.num_objects()]; replicas];
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let name = fields.next().unwrap_or_default();
        let &idx = by_name.get(name).ok_or(PersistError::Format {
            line: line_no,
            message: format!("unknown object {name:?}"),
        })?;
        if columns[0][idx] != u32::MAX {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("object {name:?} assigned twice"),
            });
        }
        for column in columns.iter_mut() {
            let node_str = fields.next().ok_or(PersistError::Format {
                line: line_no,
                message: format!("expected {replicas} replica nodes"),
            })?;
            let node: usize = node_str.trim().parse().map_err(|_| PersistError::Format {
                line: line_no,
                message: format!("invalid node {node_str:?}"),
            })?;
            if node >= nodes {
                return Err(PersistError::Format {
                    line: line_no,
                    message: format!("node {node} out of range (< {nodes})"),
                });
            }
            column[idx] = node as u32;
        }
        if fields.next().is_some() {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("more than {replicas} replica nodes"),
            });
        }
    }
    if let Some(missing) = columns[0].iter().position(|&a| a == u32::MAX) {
        return Err(PersistError::Format {
            line: 0,
            message: format!(
                "object {:?} has no assignment",
                problem.name(crate::problem::ObjectId(missing as u32))
            ),
        });
    }
    Ok(ReplicaPlacement::from_columns(
        columns
            .into_iter()
            .map(|assignment| Placement::new(assignment, nodes))
            .collect(),
    ))
}

// ---------------------------------------------------------------------------
// Shared `# cca-*-report v1` framing
//
// Every report format is the same line discipline: a fixed header, one
// `key<TAB>value` line per scalar field in declaration order, then zero
// or more repeated histogram rows (`<row-key><TAB>index<TAB>count`,
// ascending index). The writer and parser below are that discipline,
// factored once; the per-format functions are thin typed shells.
// ---------------------------------------------------------------------------

/// Writer half of the shared framing: accumulates the header, scalar
/// fields, and histogram rows in emission order.
struct ReportWriter {
    out: String,
}

impl ReportWriter {
    fn new(header: &str) -> Self {
        ReportWriter {
            out: format!("{header}\n"),
        }
    }

    fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        let _ = writeln!(self.out, "{key}\t{value}");
    }

    fn buckets(&mut self, key: &str, histogram: &LatencyHistogram) {
        for (i, count) in histogram.nonempty() {
            let _ = writeln!(self.out, "{key}\t{i}\t{count}");
        }
    }

    fn finish(self) -> String {
        self.out
    }
}

/// Parser half of the shared framing: scalar values and histogram rows
/// collected with the line-numbered error discipline every report format
/// shares (unknown key, duplicate key, bucket index range, duplicate
/// bucket, missing key at line 0).
struct ParsedReport {
    values: HashMap<String, String>,
    rows: HashMap<String, LatencyHistogram>,
}

fn parse_framed<R: Read>(
    reader: R,
    header_want: &str,
    scalar_keys: &[&str],
    row_keys: &[&str],
) -> Result<ParsedReport, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.ok_or(PersistError::Format {
        line: 1,
        message: "empty input".into(),
    })?;
    if header.trim() != header_want {
        return Err(PersistError::Format {
            line: 1,
            message: format!("bad header {header:?}"),
        });
    }
    let mut values: HashMap<String, String> = HashMap::new();
    let mut rows: HashMap<String, LatencyHistogram> = HashMap::new();
    let mut seen_buckets: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (key, value) = trimmed.split_once('\t').ok_or(PersistError::Format {
            line: line_no,
            message: "expected key<TAB>value".into(),
        })?;
        if let Some(&row_key) = row_keys.iter().find(|&&r| r == key) {
            let (idx, count) = value.split_once('\t').ok_or(PersistError::Format {
                line: line_no,
                message: format!("expected {row_key}<TAB>index<TAB>count"),
            })?;
            let idx: usize = idx.parse().map_err(|_| PersistError::Format {
                line: line_no,
                message: format!("invalid bucket index {idx:?}"),
            })?;
            if idx >= NUM_BUCKETS {
                return Err(PersistError::Format {
                    line: line_no,
                    message: format!("bucket {idx} out of range (< {NUM_BUCKETS})"),
                });
            }
            let seen = seen_buckets.entry(row_key).or_default();
            if seen.contains(&idx) {
                return Err(PersistError::Format {
                    line: line_no,
                    message: format!("duplicate bucket {idx}"),
                });
            }
            seen.push(idx);
            let count: u64 = count.parse().map_err(|_| PersistError::Format {
                line: line_no,
                message: format!("invalid bucket count {count:?}"),
            })?;
            rows.entry(row_key.to_string())
                .or_default()
                .add_bucket(idx, count);
            continue;
        }
        if !scalar_keys.contains(&key) {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("unknown key {key:?}"),
            });
        }
        if values.insert(key.to_string(), value.to_string()).is_some() {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("duplicate key {key:?}"),
            });
        }
    }
    Ok(ParsedReport { values, rows })
}

impl ParsedReport {
    fn get(&self, key: &str) -> Result<&String, PersistError> {
        self.values.get(key).ok_or(PersistError::Format {
            line: 0,
            message: format!("missing key {key:?}"),
        })
    }

    fn u64(&self, key: &str) -> Result<u64, PersistError> {
        self.get(key)?.parse().map_err(|_| PersistError::Format {
            line: 0,
            message: format!("invalid integer for {key:?}"),
        })
    }

    fn f64(&self, key: &str) -> Result<f64, PersistError> {
        self.get(key)?.parse().map_err(|_| PersistError::Format {
            line: 0,
            message: format!("invalid number for {key:?}"),
        })
    }

    fn bool(&self, key: &str) -> Result<bool, PersistError> {
        match self.get(key)?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(PersistError::Format {
                line: 0,
                message: format!("invalid bool {other:?} for {key:?}"),
            }),
        }
    }

    fn string(&self, key: &str) -> Result<String, PersistError> {
        Ok(self.get(key)?.clone())
    }

    fn histogram(&mut self, row_key: &str) -> LatencyHistogram {
        self.rows.remove(row_key).unwrap_or_default()
    }
}

/// Field order of the v1 controller-report format (also the write order).
const REPORT_KEYS: [&str; 19] = [
    "epochs",
    "queries",
    "evaluated",
    "migrations",
    "objects_moved",
    "migrated_bytes",
    "rejected_not_worthwhile",
    "rejected_not_robust",
    "degradations",
    "solve_retries",
    "repairs",
    "repair_retries",
    "repair_moves",
    "repair_bytes",
    "node_losses",
    "unrecovered_losses",
    "accumulated_loss",
    "final_cost",
    "final_feasible",
];

/// Serialises a [`ControllerReport`] in the v1 text format.
#[must_use]
pub fn format_controller_report(report: &ControllerReport) -> String {
    let mut w = ReportWriter::new("# cca-controller-report v1");
    let u = [
        report.epochs,
        report.queries,
        report.evaluated,
        report.migrations,
        report.objects_moved,
        report.migrated_bytes,
        report.rejected_not_worthwhile,
        report.rejected_not_robust,
        report.degradations,
        report.solve_retries,
        report.repairs,
        report.repair_retries,
        report.repair_moves,
        report.repair_bytes,
        report.node_losses,
        report.unrecovered_losses,
    ];
    for (key, value) in REPORT_KEYS.iter().zip(u) {
        w.field(key, value);
    }
    w.field("accumulated_loss", report.accumulated_loss);
    w.field("final_cost", report.final_cost);
    w.field("final_feasible", report.final_feasible);
    w.finish()
}

/// Writes a controller report in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_controller_report<W: Write>(
    mut writer: W,
    report: &ControllerReport,
) -> Result<(), PersistError> {
    writer.write_all(format_controller_report(report).as_bytes())?;
    Ok(())
}

/// Reads a v1 controller report.
///
/// # Errors
///
/// Fails on malformed input, unknown/duplicate/missing keys, or
/// unparsable values.
pub fn read_controller_report<R: Read>(reader: R) -> Result<ControllerReport, PersistError> {
    let p = parse_framed(reader, "# cca-controller-report v1", &REPORT_KEYS, &[])?;
    Ok(ControllerReport {
        epochs: p.u64("epochs")?,
        queries: p.u64("queries")?,
        evaluated: p.u64("evaluated")?,
        migrations: p.u64("migrations")?,
        objects_moved: p.u64("objects_moved")?,
        migrated_bytes: p.u64("migrated_bytes")?,
        rejected_not_worthwhile: p.u64("rejected_not_worthwhile")?,
        rejected_not_robust: p.u64("rejected_not_robust")?,
        degradations: p.u64("degradations")?,
        solve_retries: p.u64("solve_retries")?,
        repairs: p.u64("repairs")?,
        repair_retries: p.u64("repair_retries")?,
        repair_moves: p.u64("repair_moves")?,
        repair_bytes: p.u64("repair_bytes")?,
        node_losses: p.u64("node_losses")?,
        unrecovered_losses: p.u64("unrecovered_losses")?,
        accumulated_loss: p.f64("accumulated_loss")?,
        final_cost: p.f64("final_cost")?,
        final_feasible: p.bool("final_feasible")?,
    })
}

/// Field order of the v1 serving-report format (also the write order);
/// `bucket` lines follow the scalar fields.
const SERVING_KEYS: [&str; 12] = [
    "queries",
    "served",
    "degraded",
    "shed_admission",
    "shed_overload",
    "shed_deadline",
    "executed_bytes",
    "estimated_bytes",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "digest",
];

/// Serialises a [`ServingReport`] in the v1 text format.
#[must_use]
pub fn format_serving_report(report: &ServingReport) -> String {
    let mut w = ReportWriter::new("# cca-serving-report v1");
    let u = [
        report.queries,
        report.served,
        report.degraded,
        report.shed_admission,
        report.shed_overload,
        report.shed_deadline,
        report.executed_bytes,
        report.estimated_bytes,
        report.p50_ns,
        report.p95_ns,
        report.p99_ns,
    ];
    for (key, value) in SERVING_KEYS.iter().zip(u) {
        w.field(key, value);
    }
    w.field("digest", &report.digest);
    w.buckets("bucket", &report.histogram);
    w.finish()
}

/// Writes a serving report in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_serving_report<W: Write>(
    mut writer: W,
    report: &ServingReport,
) -> Result<(), PersistError> {
    writer.write_all(format_serving_report(report).as_bytes())?;
    Ok(())
}

/// Reads a v1 serving report.
///
/// # Errors
///
/// Fails on malformed input, unknown/duplicate/missing keys, bucket
/// indices out of range, or unparsable values.
pub fn read_serving_report<R: Read>(reader: R) -> Result<ServingReport, PersistError> {
    let mut p = parse_framed(reader, "# cca-serving-report v1", &SERVING_KEYS, &["bucket"])?;
    Ok(ServingReport {
        queries: p.u64("queries")?,
        served: p.u64("served")?,
        degraded: p.u64("degraded")?,
        shed_admission: p.u64("shed_admission")?,
        shed_overload: p.u64("shed_overload")?,
        shed_deadline: p.u64("shed_deadline")?,
        executed_bytes: p.u64("executed_bytes")?,
        estimated_bytes: p.u64("estimated_bytes")?,
        p50_ns: p.u64("p50_ns")?,
        p95_ns: p.u64("p95_ns")?,
        p99_ns: p.u64("p99_ns")?,
        digest: p.string("digest")?,
        histogram: p.histogram("bucket"),
    })
}

/// Field order of the v1 live-report format (also the write order);
/// `bucket_pre`/`bucket_mid`/`bucket_post` histogram rows follow the
/// scalar fields.
const LIVE_KEYS: [&str; 27] = [
    "epochs",
    "queries",
    "served",
    "degraded",
    "shed_admission",
    "shed_overload",
    "shed_deadline",
    "executed_bytes",
    "estimated_bytes",
    "evaluated",
    "migrations",
    "abandoned_migrations",
    "migration_epochs",
    "migrated_bytes",
    "max_epoch_migrated_bytes",
    "migration_budget",
    "pre_epochs",
    "pre_queries",
    "pre_executed_bytes",
    "post_epochs",
    "post_queries",
    "post_executed_bytes",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "final_feasible",
    "digest",
];

/// Serialises a [`LiveReport`] in the v1 text format
/// (`# cca-live-report v1`).
#[must_use]
pub fn format_live_report(report: &LiveReport) -> String {
    let mut w = ReportWriter::new("# cca-live-report v1");
    let u = [
        report.epochs,
        report.queries,
        report.served,
        report.degraded,
        report.shed_admission,
        report.shed_overload,
        report.shed_deadline,
        report.executed_bytes,
        report.estimated_bytes,
        report.evaluated,
        report.migrations,
        report.abandoned_migrations,
        report.migration_epochs,
        report.migrated_bytes,
        report.max_epoch_migrated_bytes,
        report.migration_budget,
        report.pre_epochs,
        report.pre_queries,
        report.pre_executed_bytes,
        report.post_epochs,
        report.post_queries,
        report.post_executed_bytes,
        report.p50_ns,
        report.p95_ns,
        report.p99_ns,
    ];
    for (key, value) in LIVE_KEYS.iter().zip(u) {
        w.field(key, value);
    }
    w.field("final_feasible", report.final_feasible);
    w.field("digest", &report.digest);
    w.buckets("bucket_pre", &report.pre_histogram);
    w.buckets("bucket_mid", &report.mid_histogram);
    w.buckets("bucket_post", &report.post_histogram);
    w.finish()
}

/// Writes a live report in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_live_report<W: Write>(
    mut writer: W,
    report: &LiveReport,
) -> Result<(), PersistError> {
    writer.write_all(format_live_report(report).as_bytes())?;
    Ok(())
}

/// Reads a v1 live report.
///
/// # Errors
///
/// Fails on malformed input, unknown/duplicate/missing keys, bucket
/// indices out of range, or unparsable values.
pub fn read_live_report<R: Read>(reader: R) -> Result<LiveReport, PersistError> {
    let mut p = parse_framed(
        reader,
        "# cca-live-report v1",
        &LIVE_KEYS,
        &["bucket_pre", "bucket_mid", "bucket_post"],
    )?;
    Ok(LiveReport {
        epochs: p.u64("epochs")?,
        queries: p.u64("queries")?,
        served: p.u64("served")?,
        degraded: p.u64("degraded")?,
        shed_admission: p.u64("shed_admission")?,
        shed_overload: p.u64("shed_overload")?,
        shed_deadline: p.u64("shed_deadline")?,
        executed_bytes: p.u64("executed_bytes")?,
        estimated_bytes: p.u64("estimated_bytes")?,
        evaluated: p.u64("evaluated")?,
        migrations: p.u64("migrations")?,
        abandoned_migrations: p.u64("abandoned_migrations")?,
        migration_epochs: p.u64("migration_epochs")?,
        migrated_bytes: p.u64("migrated_bytes")?,
        max_epoch_migrated_bytes: p.u64("max_epoch_migrated_bytes")?,
        migration_budget: p.u64("migration_budget")?,
        pre_epochs: p.u64("pre_epochs")?,
        pre_queries: p.u64("pre_queries")?,
        pre_executed_bytes: p.u64("pre_executed_bytes")?,
        post_epochs: p.u64("post_epochs")?,
        post_queries: p.u64("post_queries")?,
        post_executed_bytes: p.u64("post_executed_bytes")?,
        p50_ns: p.u64("p50_ns")?,
        p95_ns: p.u64("p95_ns")?,
        p99_ns: p.u64("p99_ns")?,
        final_feasible: p.bool("final_feasible")?,
        digest: p.string("digest")?,
        pre_histogram: p.histogram("bucket_pre"),
        mid_histogram: p.histogram("bucket_mid"),
        post_histogram: p.histogram("bucket_post"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_hash_placement;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        for i in 0..8 {
            b.add_object(format!("kw{i}"), 5 + i as u64);
        }
        b.uniform_capacities(3, 100).build().unwrap()
    }

    #[test]
    fn round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let text = format_placement(&p, &placement);
        let parsed = read_placement(text.as_bytes(), &p).expect("round trip");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn name_keyed_loading_survives_reordering() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut lines: Vec<String> = format_placement(&p, &placement)
            .lines()
            .map(String::from)
            .collect();
        lines[1..].reverse(); // shuffle data lines, keep header
        let text = lines.join("\n");
        let parsed = read_placement(text.as_bytes(), &p).expect("reordered parse");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn writer_round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut buf = Vec::new();
        write_placement(&mut buf, &p, &placement).expect("write");
        assert_eq!(read_placement(buf.as_slice(), &p).unwrap(), placement);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let p = problem();
        for text in [
            "",
            "not a header\nkw0\t1\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0 1\n", // no tab
            "# cca-placement v1 nodes=3 objects=8\nkw0\tfour\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0\t9\n", // node range
            "# cca-placement v1 nodes=3 objects=8\nmystery\t1\n",
        ] {
            assert!(read_placement(text.as_bytes(), &p).is_err(), "{text:?}");
        }
        // Missing objects.
        let partial = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\n";
        assert!(read_placement(partial.as_bytes(), &p).is_err());
        // Duplicate assignment.
        let dup = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\nkw0\t2\n";
        assert!(read_placement(dup.as_bytes(), &p).is_err());
    }

    fn report() -> ControllerReport {
        ControllerReport {
            epochs: 10_000,
            queries: 640_000,
            evaluated: 625,
            migrations: 12,
            objects_moved: 480,
            migrated_bytes: 123_456,
            rejected_not_worthwhile: 600,
            rejected_not_robust: 13,
            degradations: 2,
            solve_retries: 2,
            repairs: 1,
            repair_retries: 1,
            repair_moves: 37,
            repair_bytes: 9_999,
            node_losses: 1,
            unrecovered_losses: 0,
            accumulated_loss: 1234.5678901234567,
            final_cost: 0.1 + 0.2, // deliberately non-representable decimal
            final_feasible: true,
        }
    }

    #[test]
    fn controller_report_round_trips_bit_exact() {
        let r = report();
        let text = format_controller_report(&r);
        assert!(text.starts_with("# cca-controller-report v1\n"));
        let parsed = read_controller_report(text.as_bytes()).expect("round trip");
        assert_eq!(parsed, r);
        assert_eq!(
            parsed.final_cost.to_bits(),
            r.final_cost.to_bits(),
            "shortest-decimal Display must round-trip floats exactly"
        );
        let mut buf = Vec::new();
        write_controller_report(&mut buf, &r).expect("write");
        assert_eq!(read_controller_report(buf.as_slice()).unwrap(), r);
    }

    fn serving_report() -> ServingReport {
        let mut r = ServingReport {
            queries: 10_000,
            served: 9_200,
            degraded: 300,
            shed_admission: 480,
            shed_overload: 15,
            shed_deadline: 5,
            executed_bytes: 123_456_789,
            estimated_bytes: 9_876,
            digest: "d41d8cd98f00b204e9800998ecf8427e".into(),
            ..ServingReport::default()
        };
        for latency in [0u64, 1, 100, 100, 5_000, u64::MAX] {
            r.histogram.record(latency);
        }
        // Make the histogram total line up with served + degraded so the
        // partition invariant is checkable on the parsed copy too.
        for _ in 0..9_494u64 {
            r.histogram.record(2_048);
        }
        r.refresh_quantiles();
        r
    }

    #[test]
    fn serving_report_round_trips_bit_exact() {
        let r = serving_report();
        assert!(r.counters_consistent());
        let text = format_serving_report(&r);
        assert!(text.starts_with("# cca-serving-report v1\n"));
        let parsed = read_serving_report(text.as_bytes()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(parsed.counters_consistent());
        // And the round trip is a fixed point of formatting.
        assert_eq!(format_serving_report(&parsed), text);
        let mut buf = Vec::new();
        write_serving_report(&mut buf, &r).expect("write");
        assert_eq!(read_serving_report(buf.as_slice()).unwrap(), r);
    }

    #[test]
    fn malformed_serving_reports_are_rejected() {
        for text in [
            "",
            "not a header\nqueries\t1\n",
            "# cca-serving-report v1\nqueries one\n",         // no tab
            "# cca-serving-report v1\nqueries\tone\n",        // bad integer
            "# cca-serving-report v1\nmystery\t1\n",          // unknown key
            "# cca-serving-report v1\nqueries\t1\nqueries\t2\n", // duplicate
            "# cca-serving-report v1\nqueries\t1\n",          // missing keys
            "# cca-serving-report v1\nbucket\t65\t1\n",       // bucket range
            "# cca-serving-report v1\nbucket\t1\n",           // bucket shape
        ] {
            assert!(read_serving_report(text.as_bytes()).is_err(), "{text:?}");
        }
        // Duplicate bucket lines are rejected even with all scalars present.
        let mut full = format_serving_report(&serving_report());
        full.push_str("bucket\t7\t1\nbucket\t7\t2\n");
        assert!(read_serving_report(full.as_bytes()).is_err());
    }

    fn live_report() -> LiveReport {
        let mut r = LiveReport {
            epochs: 400,
            queries: 25_600,
            served: 24_000,
            degraded: 600,
            shed_admission: 900,
            shed_overload: 60,
            shed_deadline: 40,
            executed_bytes: 9_876_543,
            estimated_bytes: 54_321,
            evaluated: 25,
            migrations: 2,
            abandoned_migrations: 1,
            migration_epochs: 9,
            migrated_bytes: 520_000,
            max_epoch_migrated_bytes: 65_536,
            migration_budget: 65_536,
            pre_epochs: 150,
            pre_queries: 9_000,
            pre_executed_bytes: 4_000_000,
            post_epochs: 200,
            post_queries: 12_600,
            post_executed_bytes: 3_876_543,
            final_feasible: true,
            digest: "b8eeaf2aa937b0b351101ce7dc36e65c".into(),
            ..LiveReport::default()
        };
        for _ in 0..9_000u64 {
            r.pre_histogram.record(40_000);
        }
        for _ in 0..3_000u64 {
            r.mid_histogram.record(70_000);
        }
        for _ in 0..12_600u64 {
            r.post_histogram.record(30_000);
        }
        r.refresh_quantiles();
        r
    }

    #[test]
    fn live_report_round_trips_bit_exact() {
        let r = live_report();
        assert!(r.counters_consistent());
        let text = format_live_report(&r);
        assert!(text.starts_with("# cca-live-report v1\n"));
        let parsed = read_live_report(text.as_bytes()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(parsed.counters_consistent());
        assert_eq!(format_live_report(&parsed), text, "formatting is a fixed point");
        let mut buf = Vec::new();
        write_live_report(&mut buf, &r).expect("write");
        assert_eq!(read_live_report(buf.as_slice()).unwrap(), r);
    }

    #[test]
    fn malformed_live_reports_are_rejected() {
        for text in [
            "",
            "not a header\nepochs\t1\n",
            "# cca-serving-report v1\nqueries\t1\n", // wrong kind
            "# cca-live-report v1\nepochs one\n",    // no tab
            "# cca-live-report v1\nepochs\tone\n",   // bad integer
            "# cca-live-report v1\nmystery\t1\n",    // unknown key
            "# cca-live-report v1\nepochs\t1\nepochs\t2\n", // duplicate
            "# cca-live-report v1\nepochs\t1\n",     // missing keys
            "# cca-live-report v1\nbucket_pre\t65\t1\n", // bucket range
            "# cca-live-report v1\nbucket_mid\t1\n", // bucket shape
            "# cca-live-report v1\nbucket\t1\t1\n",  // serving's row key
        ] {
            assert!(read_live_report(text.as_bytes()).is_err(), "{text:?}");
        }
        // The same bucket index may appear once per row kind, but not
        // twice within one kind.
        let mut full = format_live_report(&live_report());
        full.push_str("bucket_post\t3\t1\nbucket_post\t3\t2\n");
        assert!(read_live_report(full.as_bytes()).is_err());
    }

    #[test]
    fn malformed_controller_reports_are_rejected() {
        for text in [
            "",
            "not a header\nepochs\t1\n",
            "# cca-controller-report v1\nepochs one\n",      // no tab
            "# cca-controller-report v1\nepochs\tone\n",     // bad integer
            "# cca-controller-report v1\nmystery\t1\n",      // unknown key
            "# cca-controller-report v1\nepochs\t1\nepochs\t2\n", // duplicate
            "# cca-controller-report v1\nepochs\t1\n",       // missing keys
        ] {
            assert!(read_controller_report(text.as_bytes()).is_err(), "{text:?}");
        }
    }
}
