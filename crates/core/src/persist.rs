//! Plain-text persistence for placements and controller reports.
//!
//! Placement format (`# cca-placement v1`): one `object-name<TAB>node`
//! line per object, in object-id order. Names make the file robust
//! against object reordering between the writing and reading problem
//! instances: loading matches by name, not by position.
//!
//! Controller-report format (`# cca-controller-report v1`): one
//! `key<TAB>value` line per [`ControllerReport`] field in declaration
//! order. Floats round-trip through Rust's shortest exact decimal
//! `Display`, so a written report re-reads bit for bit.

use crate::controller::ControllerReport;
use crate::placement::Placement;
use crate::problem::CcaProblem;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Error from [`read_placement`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a valid v1 placement for the given problem.
    Format {
        /// 1-based line number (0 for whole-file problems).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialises `placement` against `problem` (names come from the problem).
///
/// # Panics
///
/// Panics if the dimensions disagree.
#[must_use]
pub fn format_placement(problem: &CcaProblem, placement: &Placement) -> String {
    assert_eq!(placement.num_objects(), problem.num_objects());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cca-placement v1 nodes={} objects={}",
        placement.num_nodes(),
        placement.num_objects()
    );
    for o in problem.objects() {
        let _ = writeln!(out, "{}\t{}", problem.name(o), placement.node_of(o));
    }
    out
}

/// Writes a placement in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_placement<W: Write>(
    mut writer: W,
    problem: &CcaProblem,
    placement: &Placement,
) -> Result<(), PersistError> {
    writer.write_all(format_placement(problem, placement).as_bytes())?;
    Ok(())
}

/// Reads a v1 placement and matches it against `problem` by object name.
///
/// # Errors
///
/// Fails on malformed input, unknown or missing object names, duplicate
/// names (in the file or the problem), or nodes out of range.
pub fn read_placement<R: Read>(
    reader: R,
    problem: &CcaProblem,
) -> Result<Placement, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.ok_or(PersistError::Format {
        line: 1,
        message: "empty input".into(),
    })?;
    let rest = header
        .strip_prefix("# cca-placement v1 nodes=")
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad header {header:?}"),
        })?;
    let nodes: usize = rest
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad node count in header {header:?}"),
        })?;

    let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(problem.num_objects());
    for o in problem.objects() {
        if by_name.insert(problem.name(o), o.index()).is_some() {
            return Err(PersistError::Format {
                line: 0,
                message: format!(
                    "problem has duplicate object name {:?}; name-keyed loading is ambiguous",
                    problem.name(o)
                ),
            });
        }
    }

    let mut assignment = vec![u32::MAX; problem.num_objects()];
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (name, node_str) = trimmed.rsplit_once('\t').ok_or(PersistError::Format {
            line: line_no,
            message: "expected name<TAB>node".into(),
        })?;
        let node: usize = node_str.trim().parse().map_err(|_| PersistError::Format {
            line: line_no,
            message: format!("invalid node {node_str:?}"),
        })?;
        if node >= nodes {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("node {node} out of range (< {nodes})"),
            });
        }
        let &idx = by_name.get(name).ok_or(PersistError::Format {
            line: line_no,
            message: format!("unknown object {name:?}"),
        })?;
        if assignment[idx] != u32::MAX {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("object {name:?} assigned twice"),
            });
        }
        assignment[idx] = node as u32;
    }
    if let Some(missing) = assignment.iter().position(|&a| a == u32::MAX) {
        return Err(PersistError::Format {
            line: 0,
            message: format!(
                "object {:?} has no assignment",
                problem.name(crate::problem::ObjectId(missing as u32))
            ),
        });
    }
    Ok(Placement::new(assignment, nodes))
}

/// Field order of the v1 controller-report format (also the write order).
const REPORT_KEYS: [&str; 19] = [
    "epochs",
    "queries",
    "evaluated",
    "migrations",
    "objects_moved",
    "migrated_bytes",
    "rejected_not_worthwhile",
    "rejected_not_robust",
    "degradations",
    "solve_retries",
    "repairs",
    "repair_retries",
    "repair_moves",
    "repair_bytes",
    "node_losses",
    "unrecovered_losses",
    "accumulated_loss",
    "final_cost",
    "final_feasible",
];

/// Serialises a [`ControllerReport`] in the v1 text format.
#[must_use]
pub fn format_controller_report(report: &ControllerReport) -> String {
    let mut out = String::from("# cca-controller-report v1\n");
    let u = [
        report.epochs,
        report.queries,
        report.evaluated,
        report.migrations,
        report.objects_moved,
        report.migrated_bytes,
        report.rejected_not_worthwhile,
        report.rejected_not_robust,
        report.degradations,
        report.solve_retries,
        report.repairs,
        report.repair_retries,
        report.repair_moves,
        report.repair_bytes,
        report.node_losses,
        report.unrecovered_losses,
    ];
    for (key, value) in REPORT_KEYS.iter().zip(u) {
        let _ = writeln!(out, "{key}\t{value}");
    }
    let _ = writeln!(out, "accumulated_loss\t{}", report.accumulated_loss);
    let _ = writeln!(out, "final_cost\t{}", report.final_cost);
    let _ = writeln!(out, "final_feasible\t{}", report.final_feasible);
    out
}

/// Writes a controller report in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_controller_report<W: Write>(
    mut writer: W,
    report: &ControllerReport,
) -> Result<(), PersistError> {
    writer.write_all(format_controller_report(report).as_bytes())?;
    Ok(())
}

/// Reads a v1 controller report.
///
/// # Errors
///
/// Fails on malformed input, unknown/duplicate/missing keys, or
/// unparsable values.
pub fn read_controller_report<R: Read>(reader: R) -> Result<ControllerReport, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.ok_or(PersistError::Format {
        line: 1,
        message: "empty input".into(),
    })?;
    if header.trim() != "# cca-controller-report v1" {
        return Err(PersistError::Format {
            line: 1,
            message: format!("bad header {header:?}"),
        });
    }
    let mut values: HashMap<String, String> = HashMap::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (key, value) = trimmed.split_once('\t').ok_or(PersistError::Format {
            line: line_no,
            message: "expected key<TAB>value".into(),
        })?;
        if !REPORT_KEYS.contains(&key) {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("unknown key {key:?}"),
            });
        }
        if values.insert(key.to_string(), value.to_string()).is_some() {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("duplicate key {key:?}"),
            });
        }
    }
    let get = |key: &str| {
        values.get(key).ok_or(PersistError::Format {
            line: 0,
            message: format!("missing key {key:?}"),
        })
    };
    let parse_u64 = |key: &str| -> Result<u64, PersistError> {
        get(key)?.parse().map_err(|_| PersistError::Format {
            line: 0,
            message: format!("invalid integer for {key:?}"),
        })
    };
    let parse_f64 = |key: &str| -> Result<f64, PersistError> {
        get(key)?.parse().map_err(|_| PersistError::Format {
            line: 0,
            message: format!("invalid number for {key:?}"),
        })
    };
    let final_feasible = match get("final_feasible")?.as_str() {
        "true" => true,
        "false" => false,
        other => {
            return Err(PersistError::Format {
                line: 0,
                message: format!("invalid bool {other:?} for \"final_feasible\""),
            })
        }
    };
    Ok(ControllerReport {
        epochs: parse_u64("epochs")?,
        queries: parse_u64("queries")?,
        evaluated: parse_u64("evaluated")?,
        migrations: parse_u64("migrations")?,
        objects_moved: parse_u64("objects_moved")?,
        migrated_bytes: parse_u64("migrated_bytes")?,
        rejected_not_worthwhile: parse_u64("rejected_not_worthwhile")?,
        rejected_not_robust: parse_u64("rejected_not_robust")?,
        degradations: parse_u64("degradations")?,
        solve_retries: parse_u64("solve_retries")?,
        repairs: parse_u64("repairs")?,
        repair_retries: parse_u64("repair_retries")?,
        repair_moves: parse_u64("repair_moves")?,
        repair_bytes: parse_u64("repair_bytes")?,
        node_losses: parse_u64("node_losses")?,
        unrecovered_losses: parse_u64("unrecovered_losses")?,
        accumulated_loss: parse_f64("accumulated_loss")?,
        final_cost: parse_f64("final_cost")?,
        final_feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_hash_placement;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        for i in 0..8 {
            b.add_object(format!("kw{i}"), 5 + i as u64);
        }
        b.uniform_capacities(3, 100).build().unwrap()
    }

    #[test]
    fn round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let text = format_placement(&p, &placement);
        let parsed = read_placement(text.as_bytes(), &p).expect("round trip");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn name_keyed_loading_survives_reordering() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut lines: Vec<String> = format_placement(&p, &placement)
            .lines()
            .map(String::from)
            .collect();
        lines[1..].reverse(); // shuffle data lines, keep header
        let text = lines.join("\n");
        let parsed = read_placement(text.as_bytes(), &p).expect("reordered parse");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn writer_round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut buf = Vec::new();
        write_placement(&mut buf, &p, &placement).expect("write");
        assert_eq!(read_placement(buf.as_slice(), &p).unwrap(), placement);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let p = problem();
        for text in [
            "",
            "not a header\nkw0\t1\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0 1\n", // no tab
            "# cca-placement v1 nodes=3 objects=8\nkw0\tfour\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0\t9\n", // node range
            "# cca-placement v1 nodes=3 objects=8\nmystery\t1\n",
        ] {
            assert!(read_placement(text.as_bytes(), &p).is_err(), "{text:?}");
        }
        // Missing objects.
        let partial = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\n";
        assert!(read_placement(partial.as_bytes(), &p).is_err());
        // Duplicate assignment.
        let dup = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\nkw0\t2\n";
        assert!(read_placement(dup.as_bytes(), &p).is_err());
    }

    fn report() -> ControllerReport {
        ControllerReport {
            epochs: 10_000,
            queries: 640_000,
            evaluated: 625,
            migrations: 12,
            objects_moved: 480,
            migrated_bytes: 123_456,
            rejected_not_worthwhile: 600,
            rejected_not_robust: 13,
            degradations: 2,
            solve_retries: 2,
            repairs: 1,
            repair_retries: 1,
            repair_moves: 37,
            repair_bytes: 9_999,
            node_losses: 1,
            unrecovered_losses: 0,
            accumulated_loss: 1234.5678901234567,
            final_cost: 0.1 + 0.2, // deliberately non-representable decimal
            final_feasible: true,
        }
    }

    #[test]
    fn controller_report_round_trips_bit_exact() {
        let r = report();
        let text = format_controller_report(&r);
        assert!(text.starts_with("# cca-controller-report v1\n"));
        let parsed = read_controller_report(text.as_bytes()).expect("round trip");
        assert_eq!(parsed, r);
        assert_eq!(
            parsed.final_cost.to_bits(),
            r.final_cost.to_bits(),
            "shortest-decimal Display must round-trip floats exactly"
        );
        let mut buf = Vec::new();
        write_controller_report(&mut buf, &r).expect("write");
        assert_eq!(read_controller_report(buf.as_slice()).unwrap(), r);
    }

    #[test]
    fn malformed_controller_reports_are_rejected() {
        for text in [
            "",
            "not a header\nepochs\t1\n",
            "# cca-controller-report v1\nepochs one\n",      // no tab
            "# cca-controller-report v1\nepochs\tone\n",     // bad integer
            "# cca-controller-report v1\nmystery\t1\n",      // unknown key
            "# cca-controller-report v1\nepochs\t1\nepochs\t2\n", // duplicate
            "# cca-controller-report v1\nepochs\t1\n",       // missing keys
        ] {
            assert!(read_controller_report(text.as_bytes()).is_err(), "{text:?}");
        }
    }
}
