//! Plain-text persistence for placements.
//!
//! Format (`# cca-placement v1`): one `object-name<TAB>node` line per
//! object, in object-id order. Names make the file robust against object
//! reordering between the writing and reading problem instances: loading
//! matches by name, not by position.

use crate::placement::Placement;
use crate::problem::CcaProblem;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Error from [`read_placement`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a valid v1 placement for the given problem.
    Format {
        /// 1-based line number (0 for whole-file problems).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialises `placement` against `problem` (names come from the problem).
///
/// # Panics
///
/// Panics if the dimensions disagree.
#[must_use]
pub fn format_placement(problem: &CcaProblem, placement: &Placement) -> String {
    assert_eq!(placement.num_objects(), problem.num_objects());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cca-placement v1 nodes={} objects={}",
        placement.num_nodes(),
        placement.num_objects()
    );
    for o in problem.objects() {
        let _ = writeln!(out, "{}\t{}", problem.name(o), placement.node_of(o));
    }
    out
}

/// Writes a placement in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_placement<W: Write>(
    mut writer: W,
    problem: &CcaProblem,
    placement: &Placement,
) -> Result<(), PersistError> {
    writer.write_all(format_placement(problem, placement).as_bytes())?;
    Ok(())
}

/// Reads a v1 placement and matches it against `problem` by object name.
///
/// # Errors
///
/// Fails on malformed input, unknown or missing object names, duplicate
/// names (in the file or the problem), or nodes out of range.
pub fn read_placement<R: Read>(
    reader: R,
    problem: &CcaProblem,
) -> Result<Placement, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.ok_or(PersistError::Format {
        line: 1,
        message: "empty input".into(),
    })?;
    let rest = header
        .strip_prefix("# cca-placement v1 nodes=")
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad header {header:?}"),
        })?;
    let nodes: usize = rest
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or(PersistError::Format {
            line: 1,
            message: format!("bad node count in header {header:?}"),
        })?;

    let mut by_name: HashMap<&str, usize> = HashMap::with_capacity(problem.num_objects());
    for o in problem.objects() {
        if by_name.insert(problem.name(o), o.index()).is_some() {
            return Err(PersistError::Format {
                line: 0,
                message: format!(
                    "problem has duplicate object name {:?}; name-keyed loading is ambiguous",
                    problem.name(o)
                ),
            });
        }
    }

    let mut assignment = vec![u32::MAX; problem.num_objects()];
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (name, node_str) = trimmed.rsplit_once('\t').ok_or(PersistError::Format {
            line: line_no,
            message: "expected name<TAB>node".into(),
        })?;
        let node: usize = node_str.trim().parse().map_err(|_| PersistError::Format {
            line: line_no,
            message: format!("invalid node {node_str:?}"),
        })?;
        if node >= nodes {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("node {node} out of range (< {nodes})"),
            });
        }
        let &idx = by_name.get(name).ok_or(PersistError::Format {
            line: line_no,
            message: format!("unknown object {name:?}"),
        })?;
        if assignment[idx] != u32::MAX {
            return Err(PersistError::Format {
                line: line_no,
                message: format!("object {name:?} assigned twice"),
            });
        }
        assignment[idx] = node as u32;
    }
    if let Some(missing) = assignment.iter().position(|&a| a == u32::MAX) {
        return Err(PersistError::Format {
            line: 0,
            message: format!(
                "object {:?} has no assignment",
                problem.name(crate::problem::ObjectId(missing as u32))
            ),
        });
    }
    Ok(Placement::new(assignment, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_hash_placement;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        for i in 0..8 {
            b.add_object(format!("kw{i}"), 5 + i as u64);
        }
        b.uniform_capacities(3, 100).build().unwrap()
    }

    #[test]
    fn round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let text = format_placement(&p, &placement);
        let parsed = read_placement(text.as_bytes(), &p).expect("round trip");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn name_keyed_loading_survives_reordering() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut lines: Vec<String> = format_placement(&p, &placement)
            .lines()
            .map(String::from)
            .collect();
        lines[1..].reverse(); // shuffle data lines, keep header
        let text = lines.join("\n");
        let parsed = read_placement(text.as_bytes(), &p).expect("reordered parse");
        assert_eq!(parsed, placement);
    }

    #[test]
    fn writer_round_trip() {
        let p = problem();
        let placement = random_hash_placement(&p);
        let mut buf = Vec::new();
        write_placement(&mut buf, &p, &placement).expect("write");
        assert_eq!(read_placement(buf.as_slice(), &p).unwrap(), placement);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let p = problem();
        for text in [
            "",
            "not a header\nkw0\t1\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0 1\n", // no tab
            "# cca-placement v1 nodes=3 objects=8\nkw0\tfour\n",
            "# cca-placement v1 nodes=3 objects=8\nkw0\t9\n", // node range
            "# cca-placement v1 nodes=3 objects=8\nmystery\t1\n",
        ] {
            assert!(read_placement(text.as_bytes(), &p).is_err(), "{text:?}");
        }
        // Missing objects.
        let partial = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\n";
        assert!(read_placement(partial.as_bytes(), &p).is_err());
        // Duplicate assignment.
        let dup = "# cca-placement v1 nodes=3 objects=8\nkw0\t1\nkw0\t2\n";
        assert!(read_placement(dup.as_bytes(), &p).is_err());
    }
}
