//! Replica-aware placements and hierarchical failure domains.
//!
//! The paper places exactly one copy per object; production systems place
//! `r` copies spread across failure domains so that losing a whole rack
//! (or zone) leaves every object readable. This module introduces the two
//! vocabulary types of that generalization and the deterministic
//! spreading rule that connects them:
//!
//! * [`DomainTree`] — a (up to two-level) tree over nodes: zones at the
//!   top, leaf domains below, nodes at the leaves. The **flat** tree puts
//!   every node in its own leaf domain, which makes every replica-aware
//!   code path degenerate to today's single-copy behaviour.
//! * [`ReplicaPlacement`] — `r` home nodes per object, stored as `r`
//!   structure-of-arrays columns ([`Placement`] vectors). Column 0 is the
//!   **primary** column; with `r = 1` it wraps today's assignment vector
//!   bit-for-bit, so every existing consumer keeps its exact behaviour.
//!
//! # Spread invariant
//!
//! No two replicas of the same object may share a **leaf domain**
//! ([`ReplicaPlacement::spread_valid`]). Under the flat tree this merely
//! says replicas land on distinct nodes. [`spread_copies`] establishes
//! the invariant and [`crate::repair::repair_replica_spread`] restores it
//! after domain loss.
//!
//! # Deterministic tie-breaks (contract)
//!
//! Every choice in this module is a total order so results are
//! reproducible across threads and shards:
//!
//! * **Copy targets** (spreading + repair): candidate nodes are ranked by
//!   `(zone already used by this object, projected load would overflow
//!   capacity·slack, projected load, node id)` and the minimum wins —
//!   prefer fresh zones, then fitting nodes, then lighter nodes, then
//!   the lowest node id.
//! * **Edge split test** ([`ReplicaPlacement::split`]): an edge is split
//!   iff *no* replica pair of its endpoints colocates — the
//!   min-over-replica-choices read cost of the subset-assignment view.
//!   At `r = 1` this is exactly `node_of(a) != node_of(b)`.
//! * **Replica scans** are always in ascending replica-index order
//!   (primary first), so "first colocated replica" is well defined.

use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId, ProblemError};

// ---------------------------------------------------------------------------
// DomainTree
// ---------------------------------------------------------------------------

/// A hierarchical failure-domain tree over nodes: top-level **zones**
/// partition the **leaf domains**, leaf domains partition the nodes.
///
/// The spread invariant is stated on leaf domains; zones only bias the
/// spreading heuristic (prefer a zone that holds no copy yet). The flat
/// tree (`DomainTree::flat`) is the identity structure: every node is its
/// own leaf domain and its own zone, which reduces every replica-aware
/// rule to the single-copy behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainTree {
    /// Leaf domain of each node.
    leaf_of: Vec<u32>,
    /// Zone of each leaf domain.
    zone_of: Vec<u32>,
    /// Nodes of each leaf domain, ascending node ids.
    members: Vec<Vec<usize>>,
}

impl DomainTree {
    /// The flat tree: every node is its own leaf domain (and zone).
    /// Replica-aware code under this tree behaves exactly like the
    /// single-copy code.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    #[must_use]
    pub fn flat(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "domain tree needs at least one node");
        DomainTree {
            leaf_of: (0..num_nodes as u32).collect(),
            zone_of: (0..num_nodes as u32).collect(),
            members: (0..num_nodes).map(|n| vec![n]).collect(),
        }
    }

    /// `domains` contiguous leaf domains over `num_nodes` nodes (node `n`
    /// lands in leaf `n * domains / num_nodes`, so domain sizes differ by
    /// at most one). Each leaf is its own zone.
    ///
    /// # Errors
    ///
    /// Rejects `domains == 0` and `domains > num_nodes` as
    /// [`ProblemError::InvalidNumber`].
    pub fn contiguous(num_nodes: usize, domains: usize) -> Result<Self, ProblemError> {
        if num_nodes == 0 || domains == 0 || domains > num_nodes {
            return Err(ProblemError::InvalidNumber(format!(
                "domain count {domains} must be in 1..={num_nodes} (node count)"
            )));
        }
        let leaf_of: Vec<u32> = (0..num_nodes)
            .map(|n| (n * domains / num_nodes) as u32)
            .collect();
        Ok(Self::from_leaves(leaf_of, (0..domains as u32).collect()))
    }

    /// A two-level tree: `zones * leaves_per_zone` contiguous leaf
    /// domains, grouped `leaves_per_zone` at a time into zones.
    ///
    /// # Errors
    ///
    /// Rejects zero factors and more leaves than nodes as
    /// [`ProblemError::InvalidNumber`].
    pub fn zoned(
        num_nodes: usize,
        zones: usize,
        leaves_per_zone: usize,
    ) -> Result<Self, ProblemError> {
        let leaves = zones.checked_mul(leaves_per_zone).unwrap_or(0);
        if zones == 0 || leaves_per_zone == 0 || leaves == 0 || leaves > num_nodes {
            return Err(ProblemError::InvalidNumber(format!(
                "domain spec {zones}x{leaves_per_zone} needs 1..={num_nodes} leaf domains"
            )));
        }
        let leaf_of: Vec<u32> = (0..num_nodes)
            .map(|n| (n * leaves / num_nodes) as u32)
            .collect();
        let zone_of: Vec<u32> = (0..leaves as u32)
            .map(|l| l / leaves_per_zone as u32)
            .collect();
        Ok(Self::from_leaves(leaf_of, zone_of))
    }

    /// Parses a CLI domain spec: `flat`, a leaf-domain count `D`, or a
    /// two-level `ZxL` (zones × leaves per zone). Nodes are assigned to
    /// leaves contiguously.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InvalidNumber`] for malformed specs and
    /// out-of-range counts.
    pub fn parse(spec: &str, num_nodes: usize) -> Result<Self, ProblemError> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("flat") {
            if num_nodes == 0 {
                return Err(ProblemError::InvalidNumber(
                    "domain tree needs at least one node".into(),
                ));
            }
            return Ok(Self::flat(num_nodes));
        }
        if let Some((z, l)) = spec.split_once(['x', 'X']) {
            let zones: usize = z.parse().map_err(|_| {
                ProblemError::InvalidNumber(format!("invalid domain spec {spec:?}"))
            })?;
            let leaves: usize = l.parse().map_err(|_| {
                ProblemError::InvalidNumber(format!("invalid domain spec {spec:?}"))
            })?;
            return Self::zoned(num_nodes, zones, leaves);
        }
        let domains: usize = spec
            .parse()
            .map_err(|_| ProblemError::InvalidNumber(format!("invalid domain spec {spec:?}")))?;
        Self::contiguous(num_nodes, domains)
    }

    fn from_leaves(leaf_of: Vec<u32>, zone_of: Vec<u32>) -> Self {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); zone_of.len()];
        for (node, &leaf) in leaf_of.iter().enumerate() {
            members[leaf as usize].push(node);
        }
        DomainTree {
            leaf_of,
            zone_of,
            members,
        }
    }

    /// Number of nodes covered by the tree.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.leaf_of.len()
    }

    /// Number of leaf domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.members.len()
    }

    /// Number of top-level zones.
    #[must_use]
    pub fn num_zones(&self) -> usize {
        self.zone_of.iter().map(|&z| z as usize + 1).max().unwrap_or(0)
    }

    /// Leaf domain of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn domain_of(&self, node: usize) -> usize {
        self.leaf_of[node] as usize
    }

    /// Zone of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn zone_of(&self, node: usize) -> usize {
        self.zone_of[self.leaf_of[node] as usize] as usize
    }

    /// Nodes of leaf domain `d`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn nodes_in(&self, d: usize) -> &[usize] {
        &self.members[d]
    }

    /// `true` when every node is its own leaf domain (the single-copy
    /// degenerate structure).
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }

    /// Sum of `loads` over the nodes of leaf domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range or `loads` is shorter than a member
    /// node index.
    #[must_use]
    pub fn domain_load(&self, d: usize, loads: &[u64]) -> u64 {
        self.members[d].iter().map(|&n| loads[n]).sum()
    }
}

// ---------------------------------------------------------------------------
// ReplicaPlacement
// ---------------------------------------------------------------------------

/// An `r`-way replicated placement: `r` home nodes per object, stored as
/// `r` structure-of-arrays columns. Column 0 is the primary column; with
/// `r = 1` it wraps today's [`Placement`] bit-for-bit, and every
/// replica-aware consumer degenerates to the single-copy behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPlacement {
    columns: Vec<Placement>,
}

impl ReplicaPlacement {
    /// Wraps a single-copy placement as the `r = 1` replica placement.
    /// The primary column *is* the given assignment vector — no copy, no
    /// transformation — which is what makes the r=1 equivalence
    /// guarantee structural rather than numerical.
    #[must_use]
    pub fn from_primary(primary: Placement) -> Self {
        ReplicaPlacement {
            columns: vec![primary],
        }
    }

    /// Wraps explicit replica columns (column 0 = primary).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or the columns disagree on object or
    /// node count.
    #[must_use]
    pub fn from_columns(columns: Vec<Placement>) -> Self {
        assert!(!columns.is_empty(), "replica placement needs >= 1 column");
        let objects = columns[0].num_objects();
        let nodes = columns[0].num_nodes();
        assert!(
            columns
                .iter()
                .all(|c| c.num_objects() == objects && c.num_nodes() == nodes),
            "replica columns disagree on dimensions"
        );
        ReplicaPlacement { columns }
    }

    /// Copies per object (`r >= 1`).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.columns.len()
    }

    /// Number of placed objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.columns[0].num_objects()
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.columns[0].num_nodes()
    }

    /// The primary column (replica 0).
    #[must_use]
    pub fn primary(&self) -> &Placement {
        &self.columns[0]
    }

    /// Replica column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= r`.
    #[must_use]
    pub fn column(&self, j: usize) -> &Placement {
        &self.columns[j]
    }

    /// All columns, primary first.
    #[must_use]
    pub fn columns(&self) -> &[Placement] {
        &self.columns
    }

    /// Unwraps the primary column, discarding extra copies.
    #[must_use]
    pub fn into_primary(mut self) -> Placement {
        self.columns.truncate(1);
        self.columns.pop().expect("replica placement is non-empty")
    }

    /// Node of replica `j` of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn node_of(&self, i: ObjectId, j: usize) -> usize {
        self.columns[j].node_of(i)
    }

    /// Home nodes of object `i`, ascending replica index (primary first).
    pub fn nodes_of(&self, i: ObjectId) -> impl Iterator<Item = usize> + '_ {
        self.columns.iter().map(move |c| c.node_of(i))
    }

    /// `true` when some replica of object `i` lives on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn colocated(&self, i: ObjectId, node: usize) -> bool {
        self.columns.iter().any(|c| c.node_of(i) == node)
    }

    /// Min-over-replica-choices split test: the pair `(a, b)` pays its
    /// communication cost iff **no** replica pair colocates. At `r = 1`
    /// this is exactly `node_of(a) != node_of(b)`.
    #[must_use]
    pub fn split(&self, a: ObjectId, b: ObjectId) -> bool {
        !self.nodes_of(a).any(|n| self.colocated(b, n))
    }

    /// Reassigns replica `j` of object `i` to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i`, `j`, or `node` is out of range.
    pub fn assign(&mut self, i: ObjectId, j: usize, node: usize) {
        self.columns[j].assign(i, node);
    }

    /// Per-node total stored bytes counting **every copy** (the primary
    /// column alone is [`Placement::loads`]).
    ///
    /// # Panics
    ///
    /// Panics if the placement and problem disagree on object count.
    #[must_use]
    pub fn replica_loads(&self, problem: &CcaProblem) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_nodes()];
        for column in &self.columns {
            for (node, load) in column.loads(problem).into_iter().enumerate() {
                loads[node] += load;
            }
        }
        loads
    }

    /// `true` if every node's copy-inclusive load fits `capacity · slack`.
    #[must_use]
    pub fn within_replica_capacity(&self, problem: &CcaProblem, slack: f64) -> bool {
        self.replica_loads(problem)
            .iter()
            .enumerate()
            .all(|(k, &load)| load as f64 <= problem.capacity(k) as f64 * slack)
    }

    /// The spread invariant: no two replicas of any object share a leaf
    /// domain of `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `tree` covers a different node count.
    #[must_use]
    pub fn spread_valid(&self, tree: &DomainTree) -> bool {
        assert_eq!(
            tree.num_nodes(),
            self.num_nodes(),
            "domain tree and placement disagree on node count"
        );
        let r = self.replicas();
        for i in 0..self.num_objects() {
            let i = ObjectId(i as u32);
            for a in 0..r {
                let da = tree.domain_of(self.node_of(i, a));
                for b in (a + 1)..r {
                    if tree.domain_of(self.node_of(i, b)) == da {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Objects violating the spread invariant (ascending ids). Empty iff
    /// [`ReplicaPlacement::spread_valid`].
    #[must_use]
    pub fn spread_violations(&self, tree: &DomainTree) -> Vec<ObjectId> {
        let r = self.replicas();
        let mut out = Vec::new();
        'obj: for i in 0..self.num_objects() {
            let i = ObjectId(i as u32);
            for a in 0..r {
                let da = tree.domain_of(self.node_of(i, a));
                for b in (a + 1)..r {
                    if tree.domain_of(self.node_of(i, b)) == da {
                        out.push(i);
                        continue 'obj;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Copy spreading
// ---------------------------------------------------------------------------

/// Validates an `(replicas, tree)` spec against a problem: at least one
/// copy, and no more copies than leaf domains (otherwise the spread
/// invariant is unsatisfiable).
///
/// # Errors
///
/// [`ProblemError::InvalidNumber`] for `replicas == 0`;
/// [`ProblemError::ReplicaSpread`] for `replicas > tree.num_domains()`.
pub fn validate_replica_spec(replicas: usize, tree: &DomainTree) -> Result<(), ProblemError> {
    if replicas == 0 {
        return Err(ProblemError::InvalidNumber(
            "replica count must be at least 1".into(),
        ));
    }
    if replicas > tree.num_domains() {
        return Err(ProblemError::ReplicaSpread {
            replicas,
            domains: tree.num_domains(),
        });
    }
    Ok(())
}

/// Picks the target node for one copy of `size` bytes, given the leaf
/// domains and zones already used by the object's other copies. This is
/// the single tie-break rule shared by spreading and repair (see the
/// module docs): candidates are nodes outside `used_leaves`; rank by
/// `(zone used, would overflow capacity·slack, projected load, node id)`
/// and take the minimum. Returns `None` only when every alive node's
/// leaf is already used.
#[allow(clippy::too_many_arguments)]
fn pick_copy_node(
    problem: &CcaProblem,
    tree: &DomainTree,
    loads: &[u64],
    alive: impl Fn(usize) -> bool,
    used_leaves: &[usize],
    used_zones: &[usize],
    size: u64,
    slack: f64,
) -> Option<usize> {
    let mut best: Option<(bool, bool, u64, usize)> = None;
    let mut best_node = None;
    for node in 0..tree.num_nodes() {
        if !alive(node) || used_leaves.contains(&tree.domain_of(node)) {
            continue;
        }
        let projected = loads[node] + size;
        let key = (
            used_zones.contains(&tree.zone_of(node)),
            projected as f64 > problem.capacity(node) as f64 * slack,
            projected,
            node,
        );
        if best.is_none_or(|b| key < b) {
            best = Some(key);
            best_node = Some(node);
        }
    }
    best_node
}

/// Spreads `replicas` copies of every object across the leaf domains of
/// `tree`, keeping `primary` as column 0 untouched. Copies are placed
/// object-by-object in ascending id order, each copy by the deterministic
/// [`pick_copy_node`] rule (fresh zone first, then fitting node, then
/// lightest load, then lowest node id) — the round-robin-across-domains
/// behaviour of the greedy/hash rungs falls out of the load ranking.
///
/// With `replicas = 1` this returns `primary` wrapped unchanged.
///
/// # Errors
///
/// Propagates [`validate_replica_spec`] errors. Capacity is a soft
/// preference (`slack`-scaled): the spread invariant always holds for a
/// valid spec, overloads are reported by
/// [`ReplicaPlacement::within_replica_capacity`].
pub fn spread_copies(
    problem: &CcaProblem,
    tree: &DomainTree,
    primary: Placement,
    replicas: usize,
    slack: f64,
) -> Result<ReplicaPlacement, ProblemError> {
    validate_replica_spec(replicas, tree)?;
    assert_eq!(
        tree.num_nodes(),
        primary.num_nodes(),
        "domain tree and placement disagree on node count"
    );
    if replicas == 1 {
        return Ok(ReplicaPlacement::from_primary(primary));
    }
    let num_objects = primary.num_objects();
    let mut loads = primary.loads(problem);
    let mut columns: Vec<Vec<u32>> = vec![vec![0u32; num_objects]; replicas - 1];
    for idx in 0..num_objects {
        let i = ObjectId(idx as u32);
        let size = problem.size(i);
        let mut used_leaves = vec![tree.domain_of(primary.node_of(i))];
        let mut used_zones = vec![tree.zone_of(primary.node_of(i))];
        for column in columns.iter_mut() {
            let node = pick_copy_node(
                problem,
                tree,
                &loads,
                |_| true,
                &used_leaves,
                &used_zones,
                size,
                slack,
            )
            .expect("validate_replica_spec guarantees a free leaf domain");
            column[idx] = node as u32;
            loads[node] += size;
            used_leaves.push(tree.domain_of(node));
            used_zones.push(tree.zone_of(node));
        }
    }
    let num_nodes = primary.num_nodes();
    let mut cols = Vec::with_capacity(replicas);
    cols.push(primary);
    cols.extend(
        columns
            .into_iter()
            .map(|assignment| Placement::new(assignment, num_nodes)),
    );
    Ok(ReplicaPlacement::from_columns(cols))
}

/// Re-places every replica that sits on a dead node, re-establishing the
/// spread invariant among *surviving* copies. Shared by
/// [`crate::repair::repair_replica_spread`] and the domain-loss chaos
/// path; returns `(moves, migrated_bytes)`.
///
/// Objects are visited in ascending id order, replicas in ascending
/// index order, each dead copy re-targeted by [`pick_copy_node`] over
/// alive nodes whose leaf no surviving copy of the object uses. If every
/// alive leaf is taken (fewer alive domains than replicas), the copy
/// falls back to the least-loaded alive node — best-effort spread,
/// reported via [`ReplicaPlacement::spread_valid`].
pub(crate) fn respread_dead(
    problem: &CcaProblem,
    tree: &DomainTree,
    rp: &mut ReplicaPlacement,
    dead: &[bool],
    slack: f64,
) -> (usize, u64) {
    let mut loads = rp.replica_loads(problem);
    for (node, &d) in dead.iter().enumerate() {
        if d {
            loads[node] = 0;
        }
    }
    let r = rp.replicas();
    let mut moves = 0usize;
    let mut bytes = 0u64;
    for idx in 0..rp.num_objects() {
        let i = ObjectId(idx as u32);
        let size = problem.size(i);
        let mut used_leaves: Vec<usize> = Vec::with_capacity(r);
        let mut used_zones: Vec<usize> = Vec::with_capacity(r);
        for j in 0..r {
            let n = rp.node_of(i, j);
            if !dead[n] {
                used_leaves.push(tree.domain_of(n));
                used_zones.push(tree.zone_of(n));
            }
        }
        for j in 0..r {
            let n = rp.node_of(i, j);
            if !dead[n] {
                continue;
            }
            let target = pick_copy_node(
                problem,
                tree,
                &loads,
                |node| !dead[node],
                &used_leaves,
                &used_zones,
                size,
                slack,
            )
            .or_else(|| {
                // Every alive leaf already holds a copy: best-effort —
                // lightest alive node, ties by lowest id.
                (0..tree.num_nodes())
                    .filter(|&node| !dead[node])
                    .min_by_key(|&node| (loads[node], node))
            });
            if let Some(target) = target {
                rp.assign(i, j, target);
                loads[target] += size;
                used_leaves.push(tree.domain_of(target));
                used_zones.push(tree.zone_of(target));
                moves += 1;
                bytes += size;
            }
        }
    }
    (moves, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(nodes: usize) -> CcaProblem {
        let mut b = CcaProblem::builder();
        let ids: Vec<ObjectId> = (0..6).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(ids[0], ids[1], 0.5, 10.0).unwrap();
        b.add_pair(ids[2], ids[3], 0.4, 10.0).unwrap();
        b.add_pair(ids[4], ids[5], 0.3, 10.0).unwrap();
        b.uniform_capacities(nodes, 100).build().unwrap()
    }

    #[test]
    fn flat_tree_is_identity() {
        let t = DomainTree::flat(4);
        assert!(t.is_flat());
        assert_eq!(t.num_domains(), 4);
        assert_eq!(t.num_zones(), 4);
        assert_eq!(t.domain_of(3), 3);
        assert_eq!(t.nodes_in(2), &[2]);
    }

    #[test]
    fn contiguous_and_zoned_partition_nodes() {
        let t = DomainTree::contiguous(6, 3).unwrap();
        assert_eq!(t.nodes_in(0), &[0, 1]);
        assert_eq!(t.nodes_in(2), &[4, 5]);
        let z = DomainTree::zoned(8, 2, 2).unwrap();
        assert_eq!(z.num_domains(), 4);
        assert_eq!(z.zone_of(0), 0);
        assert_eq!(z.zone_of(7), 1);
        assert!(DomainTree::contiguous(4, 0).is_err());
        assert!(DomainTree::contiguous(4, 5).is_err());
    }

    #[test]
    fn parse_specs() {
        assert!(DomainTree::parse("flat", 5).unwrap().is_flat());
        assert_eq!(DomainTree::parse("3", 6).unwrap().num_domains(), 3);
        assert_eq!(DomainTree::parse("2x2", 8).unwrap().num_zones(), 2);
        assert!(DomainTree::parse("zap", 4).is_err());
        assert!(DomainTree::parse("0", 4).is_err());
    }

    #[test]
    fn r1_wraps_bit_for_bit() {
        let p = problem(4);
        let primary = Placement::new(vec![0, 1, 2, 3, 0, 1], 4);
        let tree = DomainTree::flat(4);
        let rp = spread_copies(&p, &tree, primary.clone(), 1, 1.0).unwrap();
        assert_eq!(rp.primary().as_slice(), primary.as_slice());
        assert_eq!(rp.replicas(), 1);
        // Split test degenerates to node inequality.
        for a in 0..6 {
            for b in 0..6 {
                let (a, b) = (ObjectId(a), ObjectId(b));
                assert_eq!(rp.split(a, b), primary.node_of(a) != primary.node_of(b));
            }
        }
    }

    #[test]
    fn spread_respects_leaf_domains() {
        let p = problem(6);
        let primary = Placement::new(vec![0, 0, 2, 2, 4, 4], 6);
        let tree = DomainTree::contiguous(6, 3).unwrap();
        let rp = spread_copies(&p, &tree, primary, 2, 1.0).unwrap();
        assert!(rp.spread_valid(&tree));
        assert!(rp.spread_violations(&tree).is_empty());
        // r above the domain count is a typed error.
        let err = spread_copies(
            &p,
            &tree,
            Placement::new(vec![0; 6], 6),
            4,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ProblemError::ReplicaSpread {
                replicas: 4,
                domains: 3
            }
        ));
    }

    #[test]
    fn respread_after_domain_kill_restores_invariant() {
        let p = problem(6);
        let tree = DomainTree::contiguous(6, 3).unwrap();
        let primary = Placement::new(vec![0, 1, 2, 3, 4, 5], 6);
        let mut rp = spread_copies(&p, &tree, primary, 2, 1.0).unwrap();
        // Kill leaf domain 0 == nodes {0, 1}.
        let mut dead = vec![false; 6];
        for &n in tree.nodes_in(0) {
            dead[n] = true;
        }
        let (moves, bytes) = respread_dead(&p, &tree, &mut rp, &dead, 1.0);
        assert!(moves > 0);
        assert_eq!(bytes, moves as u64 * 10);
        for i in 0..rp.num_objects() {
            for j in 0..rp.replicas() {
                assert!(!dead[rp.node_of(ObjectId(i as u32), j)]);
            }
        }
        assert!(rp.spread_valid(&tree));
    }

    #[test]
    fn split_is_min_over_replica_pairs() {
        let p = problem(4);
        let c0 = Placement::new(vec![0, 1, 0, 1, 0, 1], 4);
        let c1 = Placement::new(vec![2, 2, 3, 3, 2, 3], 4);
        let rp = ReplicaPlacement::from_columns(vec![c0, c1]);
        // Objects 0 and 1: replicas {0,2} vs {1,2} — share node 2.
        assert!(!rp.split(ObjectId(0), ObjectId(1)));
        // Objects 0 and 3: replicas {0,2} vs {1,3} — disjoint.
        assert!(rp.split(ObjectId(0), ObjectId(3)));
        let _ = p;
    }
}
