//! Secondary node-capacity constraints (paper §3.3).
//!
//! "In addition to the storage capacity constraint explicitly considered
//! in our problem definition, other node capacity constraints such as
//! network bandwidth and CPU processing capability may also be present. In
//! principle, we can address these problems by introducing more capacity
//! constraints into our linear programming problem in a way similar
//! to (9)."
//!
//! A [`Resource`] carries a per-object demand vector and per-node capacity
//! vector; every placement algorithm in this crate honours all registered
//! resources in its fit checks, and the LP builders emit one capacity row
//! per `(resource, node)`.

use std::fmt;

/// One secondary resource dimension (e.g. bandwidth, CPU).
///
/// The primary storage dimension is *not* represented here — it lives in
/// the problem's object sizes and node capacities — so a problem with no
/// registered resources behaves exactly as the paper's base formulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    name: String,
    demands: Vec<u64>,
    capacities: Vec<u64>,
}

/// Error building a [`Resource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The demand vector length does not match the object count.
    DemandLength {
        /// Expected number of objects.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
    /// The capacity vector length does not match the node count.
    CapacityLength {
        /// Expected number of nodes.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::DemandLength { expected, got } => {
                write!(f, "demand vector has {got} entries, expected {expected}")
            }
            ResourceError::CapacityLength { expected, got } => {
                write!(f, "capacity vector has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

impl Resource {
    /// Creates a resource with per-object `demands` and per-node
    /// `capacities`. Lengths are validated by
    /// [`CcaProblemBuilder::add_resource`](crate::CcaProblemBuilder::add_resource).
    #[must_use]
    pub fn new(name: impl Into<String>, demands: Vec<u64>, capacities: Vec<u64>) -> Self {
        Resource {
            name: name.into(),
            demands,
            capacities,
        }
    }

    /// Name of the resource (diagnostics only).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Demand of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn demand(&self, i: usize) -> u64 {
        self.demands[i]
    }

    /// Capacity of node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn capacity(&self, k: usize) -> u64 {
        self.capacities[k]
    }

    /// Total demand over all objects.
    #[must_use]
    pub fn total_demand(&self) -> u64 {
        self.demands.iter().sum()
    }

    /// Total capacity over all nodes.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }

    pub(crate) fn restrict(&self, keep: &[crate::problem::ObjectId]) -> Resource {
        Resource {
            name: self.name.clone(),
            demands: keep.iter().map(|&o| self.demands[o.index()]).collect(),
            capacities: self.capacities.clone(),
        }
    }

    pub(crate) fn validate(
        &self,
        num_objects: usize,
        num_nodes: usize,
    ) -> Result<(), ResourceError> {
        if self.demands.len() != num_objects {
            return Err(ResourceError::DemandLength {
                expected: num_objects,
                got: self.demands.len(),
            });
        }
        if self.capacities.len() != num_nodes {
            return Err(ResourceError::CapacityLength {
                expected: num_nodes,
                got: self.capacities.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_totals() {
        let r = Resource::new("bandwidth", vec![1, 2, 3], vec![10, 10]);
        assert_eq!(r.name(), "bandwidth");
        assert_eq!(r.demand(1), 2);
        assert_eq!(r.capacity(0), 10);
        assert_eq!(r.total_demand(), 6);
        assert_eq!(r.total_capacity(), 20);
    }

    #[test]
    fn validation_checks_lengths() {
        let r = Resource::new("cpu", vec![1, 2], vec![5]);
        assert!(r.validate(2, 1).is_ok());
        assert!(matches!(
            r.validate(3, 1),
            Err(ResourceError::DemandLength { expected: 3, got: 2 })
        ));
        assert!(matches!(
            r.validate(2, 2),
            Err(ResourceError::CapacityLength { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = ResourceError::DemandLength {
            expected: 1,
            got: 2,
        };
        assert!(!e.to_string().is_empty());
    }
}
