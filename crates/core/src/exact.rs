//! Exact solver for small CCA instances (test oracle).
//!
//! The CCA problem is NP-hard (paper Theorem 1; minimum n-way cut embeds
//! into it), so no polynomial exact algorithm is expected. This module
//! provides a branch-and-bound search usable up to ~a dozen objects, which
//! the test suite uses to confirm that the LP relaxation lower-bounds the
//! integral optimum and that LPRR placements land close to it.

use crate::graph::CorrelationGraph;
use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use cca_par::par_map_indexed;

/// Options for [`exact_placement`].
#[derive(Debug, Clone, Copy)]
pub struct ExactOptions {
    /// Abort after visiting this many search nodes (returns `None`).
    pub max_visited: u64,
    /// Worker threads for the top-level branch fan-out. `1` is the
    /// classic serial search, bit-for-bit; with more threads the search
    /// expands a fixed frontier of [`PARALLEL_FRONTIER_TARGET`] branches
    /// (independent of the thread count, so `threads = 2` and
    /// `threads = 8` return identical placements) and explores them
    /// concurrently.
    pub threads: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_visited: 50_000_000,
            threads: 1,
        }
    }
}

/// Number of top-level branches the parallel search carves the tree into.
/// Deliberately a constant rather than a multiple of the thread count:
/// the branch decomposition — and therefore the visit budget per branch
/// and the result — must not depend on how many workers happen to run.
const PARALLEL_FRONTIER_TARGET: usize = 32;

/// Shared, read-only precomputation for one `exact_placement` call.
struct SearchSpace<'a> {
    problem: &'a CcaProblem,
    /// Objects in branching order (heaviest pair involvement first).
    order: Vec<ObjectId>,
    /// CSR adjacency over the correlated pairs.
    graph: &'a CorrelationGraph,
    uniform_capacity: bool,
    /// `limits[node][dim]`: dimension 0 is storage, then resources.
    limits: Vec<Vec<u64>>,
    /// Cached integer demand vectors per object.
    demands: Vec<Vec<u64>>,
}

struct Search<'a> {
    space: &'a SearchSpace<'a>,
    best_cost: f64,
    best: Option<Vec<u32>>,
    current: Vec<u32>,
    /// `loads[node][dim]`, mirroring `SearchSpace::limits`.
    loads: Vec<Vec<u64>>,
    visited: u64,
    max_visited: u64,
}

/// A partial assignment of the first `depth` objects in branching order —
/// the unit of work handed to one parallel branch.
struct Prefix {
    current: Vec<u32>,
    loads: Vec<Vec<u64>>,
    cost: f64,
    depth: usize,
}

impl SearchSpace<'_> {
    /// Branching limit at `depth` given the partial assignment `current`.
    /// For uniform capacities only the used nodes plus one fresh node are
    /// worth trying (interchangeable nodes make the rest symmetric).
    fn max_node(&self, current: &[u32], depth: usize) -> usize {
        let n = self.problem.num_nodes();
        if !self.uniform_capacity {
            return n;
        }
        let mut hi = -1i64;
        for d in 0..depth {
            hi = hi.max(i64::from(current[self.order[d].index()]));
        }
        ((hi + 2).min(n as i64)) as usize
    }

    /// All capacity-feasible one-object extensions of `prefix`, in node
    /// order — the same child order the serial DFS visits, so the
    /// parallel branch decomposition preserves the serial tie-breaking.
    fn expand(&self, prefix: &Prefix) -> Vec<Prefix> {
        let obj = self.order[prefix.depth];
        let max_node = self.max_node(&prefix.current, prefix.depth);
        let mut children = Vec::new();
        'nodes: for k in 0..max_node {
            for (dim, &d) in self.demands[obj.index()].iter().enumerate() {
                if prefix.loads[k][dim] + d > self.limits[k][dim] {
                    continue 'nodes;
                }
            }
            let mut extra = 0.0;
            for (other, weight) in self.graph.neighbors(obj) {
                let assigned = prefix.current[other.index()];
                if assigned != u32::MAX && assigned as usize != k {
                    extra += weight;
                }
            }
            let mut current = prefix.current.clone();
            current[obj.index()] = k as u32;
            let mut loads = prefix.loads.clone();
            for (dim, &d) in self.demands[obj.index()].iter().enumerate() {
                loads[k][dim] += d;
            }
            children.push(Prefix {
                current,
                loads,
                cost: prefix.cost + extra,
                depth: prefix.depth + 1,
            });
        }
        children
    }
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, cost: f64) {
        if self.visited >= self.max_visited {
            return;
        }
        self.visited += 1;
        if cost >= self.best_cost - 1e-12 {
            return;
        }
        if depth == self.space.order.len() {
            self.best_cost = cost;
            self.best = Some(self.current.clone());
            return;
        }
        let obj = self.space.order[depth];
        // Symmetry breaking for uniform capacities: only branch on nodes
        // 0..=max_used+1.
        let max_node = self.space.max_node(&self.current, depth);
        'nodes: for k in 0..max_node {
            for (dim, &d) in self.space.demands[obj.index()].iter().enumerate() {
                if self.loads[k][dim] + d > self.space.limits[k][dim] {
                    continue 'nodes;
                }
            }
            // Incremental cost: split pairs against already-assigned
            // neighbours.
            let mut extra = 0.0;
            for (other, weight) in self.space.graph.neighbors(obj) {
                let assigned = self.current[other.index()];
                if assigned != u32::MAX && assigned as usize != k {
                    extra += weight;
                }
            }
            for (dim, &d) in self.space.demands[obj.index()].iter().enumerate() {
                self.loads[k][dim] += d;
            }
            self.current[obj.index()] = k as u32;
            self.dfs(depth + 1, cost + extra);
            self.current[obj.index()] = u32::MAX;
            for (dim, &d) in self.space.demands[obj.index()].iter().enumerate() {
                self.loads[k][dim] -= d;
            }
        }
    }
}

/// Finds the minimum-communication-cost placement satisfying the
/// capacities exactly, or `None` if the instance is infeasible or the
/// search budget is exhausted.
///
/// Intended for instances with at most ~12 objects; the branching factor is
/// the node count.
///
/// ```
/// use cca_core::{exact_placement, CcaProblem, ExactOptions};
/// # fn main() -> Result<(), cca_core::ProblemError> {
/// let mut b = CcaProblem::builder();
/// let a = b.add_object("a", 5);
/// let c = b.add_object("b", 5);
/// b.add_pair(a, c, 1.0, 7.0)?;
/// let problem = b.uniform_capacities(2, 10).build()?;
/// let (placement, cost) = exact_placement(&problem, &ExactOptions::default()).unwrap();
/// assert_eq!(cost, 0.0); // the pair fits together
/// assert_eq!(placement.node_of(a), placement.node_of(c));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn exact_placement(
    problem: &CcaProblem,
    options: &ExactOptions,
) -> Option<(Placement, f64)> {
    let t = problem.num_objects();
    if t == 0 {
        return Some((Placement::new(Vec::new(), problem.num_nodes()), 0.0));
    }

    let graph = problem.graph();

    // Branch on objects with the most incident weight first, then larger
    // size (better pruning). The graph's weighted degree is the same
    // row-order sum the local adjacency build produced.
    let mut order: Vec<ObjectId> = problem.objects().collect();
    let incident: Vec<f64> = problem
        .objects()
        .map(|o| graph.weighted_degree(o))
        .collect();
    order.sort_unstable_by(|&x, &y| {
        incident[y.index()]
            .partial_cmp(&incident[x.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(problem.size(y).cmp(&problem.size(x)))
            .then(x.cmp(&y))
    });

    let uniform_capacity = (0..problem.num_nodes()).all(|k| {
        problem.capacity(k) == problem.capacity(0)
            && problem
                .resources()
                .iter()
                .all(|r| r.capacity(k) == r.capacity(0))
    });

    let dims = 1 + problem.resources().len();
    let limits: Vec<Vec<u64>> = (0..problem.num_nodes())
        .map(|k| {
            let mut v = vec![problem.capacity(k)];
            for res in problem.resources() {
                v.push(res.capacity(k));
            }
            v
        })
        .collect();
    let demands: Vec<Vec<u64>> = problem
        .objects()
        .map(|o| {
            let mut v = vec![problem.size(o)];
            for res in problem.resources() {
                v.push(res.demand(o.index()));
            }
            v
        })
        .collect();
    let space = SearchSpace {
        problem,
        order,
        graph,
        uniform_capacity,
        limits,
        demands,
    };
    let root = Prefix {
        current: vec![u32::MAX; t],
        loads: vec![vec![0; dims]; problem.num_nodes()],
        cost: 0.0,
        depth: 0,
    };

    let assignment = if options.threads <= 1 {
        // Classic serial branch-and-bound, bit-for-bit the historic path.
        let mut search = Search {
            space: &space,
            best_cost: f64::INFINITY,
            best: None,
            current: root.current,
            loads: root.loads,
            visited: 0,
            max_visited: options.max_visited,
        };
        search.dfs(0, 0.0);
        search.best
    } else {
        // Expand a frontier of partial assignments breadth-first (children
        // in DFS order) until there is enough independent work, then
        // explore each branch concurrently. The frontier size and the
        // per-branch visit budget depend only on the problem — never on
        // the thread count — so any `threads >= 2` returns the same
        // placement.
        let mut frontier = vec![root];
        while frontier.len() < PARALLEL_FRONTIER_TARGET
            && frontier.first().is_some_and(|p| p.depth < t)
        {
            let mut next = Vec::new();
            for prefix in &frontier {
                next.extend(space.expand(prefix));
            }
            if next.is_empty() {
                // Every partial assignment is already capacity-infeasible.
                return None;
            }
            frontier = next;
        }
        let per_branch = (options.max_visited / frontier.len() as u64).max(1);
        let results: Vec<Option<(f64, Vec<u32>)>> =
            par_map_indexed(options.threads, frontier.len(), |i| {
                let prefix = &frontier[i];
                let mut search = Search {
                    space: &space,
                    best_cost: f64::INFINITY,
                    best: None,
                    current: prefix.current.clone(),
                    loads: prefix.loads.clone(),
                    visited: 0,
                    max_visited: per_branch,
                };
                search.dfs(prefix.depth, prefix.cost);
                search.best.map(|b| (search.best_cost, b))
            });
        // Reduce in branch order with the DFS's own strict-improvement
        // rule, mirroring the order the serial search would have found
        // these optima in.
        let mut best_cost = f64::INFINITY;
        let mut best = None;
        for (cost, assignment) in results.into_iter().flatten() {
            if cost < best_cost - 1e-12 {
                best_cost = cost;
                best = Some(assignment);
            }
        }
        best
    };

    assignment.map(|assignment| {
        let placement = Placement::new(assignment, problem.num_nodes());
        let cost = placement.communication_cost(problem);
        (placement, cost)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_rand::rngs::StdRng;
    use cca_rand::{Rng, SeedableRng};

    #[test]
    fn trivial_instances() {
        // Empty problem.
        let p = CcaProblem::builder().uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.num_objects(), 0);
        assert_eq!(cost, 0.0);

        // One object.
        let mut b = CcaProblem::builder();
        b.add_object("a", 5);
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.num_objects(), 1);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn colocates_when_possible() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 5);
        let c = b.add_object("b", 5);
        b.add_pair(a, c, 1.0, 7.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.node_of(a), pl.node_of(c));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn splits_cheapest_edge_of_triangle() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap();
        b.add_pair(o[1], o[2], 1.0, 3.0).unwrap();
        b.add_pair(o[0], o[2], 1.0, 2.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        // Optimal: o2 alone (cost 3 + 2 = 5).
        assert!((cost - 5.0).abs() < 1e-12);
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
        assert_ne!(pl.node_of(o[0]), pl.node_of(o[2]));
    }

    #[test]
    fn infeasible_returns_none() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 10);
        b.add_object("b", 10);
        let p = b.uniform_capacities(2, 5).build().unwrap();
        assert!(exact_placement(&p, &ExactOptions::default()).is_none());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let t = 2 + rng.random_range(0..5usize);
            let n = 2 + rng.random_range(0..2usize);
            let mut b = CcaProblem::builder();
            let objs: Vec<_> = (0..t)
                .map(|i| b.add_object(format!("o{i}"), 1 + rng.random_range(0..4)))
                .collect();
            for i in 0..t {
                for j in i + 1..t {
                    if rng.random::<f64>() < 0.6 {
                        b.add_pair(objs[i], objs[j], rng.random::<f64>(), 1.0).unwrap();
                    }
                }
            }
            let p = b.uniform_capacities(n, 6).build().unwrap();

            // Brute force over all n^t assignments.
            let mut brute_best: Option<f64> = None;
            let total = (n as u64).pow(t as u32);
            for code in 0..total {
                let mut c = code;
                let assignment: Vec<u32> = (0..t)
                    .map(|_| {
                        let k = (c % n as u64) as u32;
                        c /= n as u64;
                        k
                    })
                    .collect();
                let pl = Placement::new(assignment, n);
                if pl.within_capacity(&p, 1.0) {
                    let cost = pl.communication_cost(&p);
                    if brute_best.is_none_or(|bb| cost < bb) {
                        brute_best = Some(cost);
                    }
                }
            }

            let bb = exact_placement(&p, &ExactOptions::default());
            match (brute_best, bb) {
                (Some(want), Some((_, got))) => {
                    assert!(
                        (want - got).abs() < 1e-9,
                        "trial {trial}: brute {want} vs b&b {got}"
                    );
                }
                (None, None) => {}
                (want, got) => panic!("trial {trial}: brute {want:?} vs b&b {got:?}"),
            }
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let mut b = CcaProblem::builder();
        let objs: Vec<_> = (0..10).map(|i| b.add_object(format!("o{i}"), 1)).collect();
        for i in 0..10 {
            for j in i + 1..10 {
                b.add_pair(objs[i], objs[j], 0.5, 1.0).unwrap();
            }
        }
        let p = b.uniform_capacities(4, 10).build().unwrap();
        let opts = ExactOptions {
            max_visited: 1,
            ..ExactOptions::default()
        };
        assert!(exact_placement(&p, &opts).is_none());
    }

    #[test]
    fn parallel_search_matches_serial_cost() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let t = 3 + rng.random_range(0..5usize);
            let n = 2 + rng.random_range(0..2usize);
            let mut b = CcaProblem::builder();
            let objs: Vec<_> = (0..t)
                .map(|i| b.add_object(format!("o{i}"), 1 + rng.random_range(0..4)))
                .collect();
            for i in 0..t {
                for j in i + 1..t {
                    if rng.random::<f64>() < 0.6 {
                        b.add_pair(objs[i], objs[j], rng.random::<f64>(), 1.0).unwrap();
                    }
                }
            }
            let p = b.uniform_capacities(n, 8).build().unwrap();
            let serial = exact_placement(&p, &ExactOptions::default());
            let two = exact_placement(
                &p,
                &ExactOptions {
                    threads: 2,
                    ..ExactOptions::default()
                },
            );
            let eight = exact_placement(
                &p,
                &ExactOptions {
                    threads: 8,
                    ..ExactOptions::default()
                },
            );
            match (&serial, &two) {
                (Some((_, sc)), Some((_, pc))) => assert!(
                    (sc - pc).abs() < 1e-9,
                    "trial {trial}: serial {sc} vs parallel {pc}"
                ),
                (None, None) => {}
                other => panic!("trial {trial}: serial/parallel disagree: {other:?}"),
            }
            // Any two parallel thread counts share one branch
            // decomposition, so they agree byte-for-byte.
            match (&two, &eight) {
                (Some((p2, c2)), Some((p8, c8))) => {
                    assert_eq!(p2.as_slice(), p8.as_slice(), "trial {trial}");
                    assert_eq!(c2.to_bits(), c8.to_bits(), "trial {trial}");
                }
                (None, None) => {}
                other => panic!("trial {trial}: 2 vs 8 threads disagree: {other:?}"),
            }
        }
    }
}
