//! Exact solver for small CCA instances (test oracle).
//!
//! The CCA problem is NP-hard (paper Theorem 1; minimum n-way cut embeds
//! into it), so no polynomial exact algorithm is expected. This module
//! provides a branch-and-bound search usable up to ~a dozen objects, which
//! the test suite uses to confirm that the LP relaxation lower-bounds the
//! integral optimum and that LPRR placements land close to it.

use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};

/// Options for [`exact_placement`].
#[derive(Debug, Clone, Copy)]
pub struct ExactOptions {
    /// Abort after visiting this many search nodes (returns `None`).
    pub max_visited: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_visited: 50_000_000,
        }
    }
}

struct Search<'a> {
    problem: &'a CcaProblem,
    /// Objects in branching order (heaviest pair involvement first).
    order: Vec<ObjectId>,
    /// Adjacency: for each object, `(other, weight)` pairs.
    adj: Vec<Vec<(usize, f64)>>,
    uniform_capacity: bool,
    best_cost: f64,
    best: Option<Vec<u32>>,
    current: Vec<u32>,
    /// `loads[node][dim]`: dimension 0 is storage, then resources.
    loads: Vec<Vec<u64>>,
    /// `limits[node][dim]`.
    limits: Vec<Vec<u64>>,
    /// Cached integer demand vectors per object.
    demands: Vec<Vec<u64>>,
    visited: u64,
    max_visited: u64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, cost: f64) {
        if self.visited >= self.max_visited {
            return;
        }
        self.visited += 1;
        if cost >= self.best_cost - 1e-12 {
            return;
        }
        if depth == self.order.len() {
            self.best_cost = cost;
            self.best = Some(self.current.clone());
            return;
        }
        let obj = self.order[depth];
        let n = self.problem.num_nodes();
        // Symmetry breaking for uniform capacities: only branch on nodes
        // 0..=max_used+1.
        let max_node = if self.uniform_capacity {
            // Highest node index used so far among assigned objects; only
            // branch on used nodes plus one fresh node (interchangeable
            // nodes make the rest symmetric).
            let mut hi = -1i64;
            for d in 0..depth {
                hi = hi.max(i64::from(self.current[self.order[d].index()]));
            }
            ((hi + 2).min(n as i64)) as usize
        } else {
            n
        };
        'nodes: for k in 0..max_node {
            for (dim, &d) in self.demands[obj.index()].iter().enumerate() {
                if self.loads[k][dim] + d > self.limits[k][dim] {
                    continue 'nodes;
                }
            }
            // Incremental cost: split pairs against already-assigned
            // neighbours.
            let mut extra = 0.0;
            for &(other, weight) in &self.adj[obj.index()] {
                let assigned = self.current[other];
                if assigned != u32::MAX && assigned as usize != k {
                    extra += weight;
                }
            }
            for (dim, &d) in self.demands[obj.index()].iter().enumerate() {
                self.loads[k][dim] += d;
            }
            self.current[obj.index()] = k as u32;
            self.dfs(depth + 1, cost + extra);
            self.current[obj.index()] = u32::MAX;
            for (dim, &d) in self.demands[obj.index()].iter().enumerate() {
                self.loads[k][dim] -= d;
            }
        }
    }
}

/// Finds the minimum-communication-cost placement satisfying the
/// capacities exactly, or `None` if the instance is infeasible or the
/// search budget is exhausted.
///
/// Intended for instances with at most ~12 objects; the branching factor is
/// the node count.
///
/// ```
/// use cca_core::{exact_placement, CcaProblem, ExactOptions};
/// # fn main() -> Result<(), cca_core::ProblemError> {
/// let mut b = CcaProblem::builder();
/// let a = b.add_object("a", 5);
/// let c = b.add_object("b", 5);
/// b.add_pair(a, c, 1.0, 7.0)?;
/// let problem = b.uniform_capacities(2, 10).build()?;
/// let (placement, cost) = exact_placement(&problem, &ExactOptions::default()).unwrap();
/// assert_eq!(cost, 0.0); // the pair fits together
/// assert_eq!(placement.node_of(a), placement.node_of(c));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn exact_placement(
    problem: &CcaProblem,
    options: &ExactOptions,
) -> Option<(Placement, f64)> {
    let t = problem.num_objects();
    if t == 0 {
        return Some((Placement::new(Vec::new(), problem.num_nodes()), 0.0));
    }

    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); t];
    for pair in problem.pairs() {
        adj[pair.a.index()].push((pair.b.index(), pair.weight()));
        adj[pair.b.index()].push((pair.a.index(), pair.weight()));
    }

    // Branch on objects with the most incident weight first, then larger
    // size (better pruning).
    let mut order: Vec<ObjectId> = problem.objects().collect();
    let incident: Vec<f64> = adj
        .iter()
        .map(|nb| nb.iter().map(|&(_, w)| w).sum())
        .collect();
    order.sort_unstable_by(|&x, &y| {
        incident[y.index()]
            .partial_cmp(&incident[x.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(problem.size(y).cmp(&problem.size(x)))
            .then(x.cmp(&y))
    });

    let uniform_capacity = (0..problem.num_nodes()).all(|k| {
        problem.capacity(k) == problem.capacity(0)
            && problem
                .resources()
                .iter()
                .all(|r| r.capacity(k) == r.capacity(0))
    });

    let dims = 1 + problem.resources().len();
    let limits: Vec<Vec<u64>> = (0..problem.num_nodes())
        .map(|k| {
            let mut v = vec![problem.capacity(k)];
            for res in problem.resources() {
                v.push(res.capacity(k));
            }
            v
        })
        .collect();
    let demands: Vec<Vec<u64>> = problem
        .objects()
        .map(|o| {
            let mut v = vec![problem.size(o)];
            for res in problem.resources() {
                v.push(res.demand(o.index()));
            }
            v
        })
        .collect();
    let mut search = Search {
        problem,
        order,
        adj,
        uniform_capacity,
        best_cost: f64::INFINITY,
        best: None,
        current: vec![u32::MAX; t],
        loads: vec![vec![0; dims]; problem.num_nodes()],
        limits,
        demands,
        visited: 0,
        max_visited: options.max_visited,
    };
    search.dfs(0, 0.0);
    search.best.map(|assignment| {
        let placement = Placement::new(assignment, problem.num_nodes());
        let cost = placement.communication_cost(problem);
        (placement, cost)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_rand::rngs::StdRng;
    use cca_rand::{Rng, SeedableRng};

    #[test]
    fn trivial_instances() {
        // Empty problem.
        let p = CcaProblem::builder().uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.num_objects(), 0);
        assert_eq!(cost, 0.0);

        // One object.
        let mut b = CcaProblem::builder();
        b.add_object("a", 5);
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.num_objects(), 1);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn colocates_when_possible() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 5);
        let c = b.add_object("b", 5);
        b.add_pair(a, c, 1.0, 7.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        assert_eq!(pl.node_of(a), pl.node_of(c));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn splits_cheapest_edge_of_triangle() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..3).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 1.0, 5.0).unwrap();
        b.add_pair(o[1], o[2], 1.0, 3.0).unwrap();
        b.add_pair(o[0], o[2], 1.0, 2.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let (pl, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
        // Optimal: o2 alone (cost 3 + 2 = 5).
        assert!((cost - 5.0).abs() < 1e-12);
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
        assert_ne!(pl.node_of(o[0]), pl.node_of(o[2]));
    }

    #[test]
    fn infeasible_returns_none() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 10);
        b.add_object("b", 10);
        let p = b.uniform_capacities(2, 5).build().unwrap();
        assert!(exact_placement(&p, &ExactOptions::default()).is_none());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let t = 2 + rng.random_range(0..5usize);
            let n = 2 + rng.random_range(0..2usize);
            let mut b = CcaProblem::builder();
            let objs: Vec<_> = (0..t)
                .map(|i| b.add_object(format!("o{i}"), 1 + rng.random_range(0..4)))
                .collect();
            for i in 0..t {
                for j in i + 1..t {
                    if rng.random::<f64>() < 0.6 {
                        b.add_pair(objs[i], objs[j], rng.random::<f64>(), 1.0).unwrap();
                    }
                }
            }
            let p = b.uniform_capacities(n, 6).build().unwrap();

            // Brute force over all n^t assignments.
            let mut brute_best: Option<f64> = None;
            let total = (n as u64).pow(t as u32);
            for code in 0..total {
                let mut c = code;
                let assignment: Vec<u32> = (0..t)
                    .map(|_| {
                        let k = (c % n as u64) as u32;
                        c /= n as u64;
                        k
                    })
                    .collect();
                let pl = Placement::new(assignment, n);
                if pl.within_capacity(&p, 1.0) {
                    let cost = pl.communication_cost(&p);
                    if brute_best.is_none_or(|bb| cost < bb) {
                        brute_best = Some(cost);
                    }
                }
            }

            let bb = exact_placement(&p, &ExactOptions::default());
            match (brute_best, bb) {
                (Some(want), Some((_, got))) => {
                    assert!(
                        (want - got).abs() < 1e-9,
                        "trial {trial}: brute {want} vs b&b {got}"
                    );
                }
                (None, None) => {}
                (want, got) => panic!("trial {trial}: brute {want:?} vs b&b {got:?}"),
            }
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let mut b = CcaProblem::builder();
        let objs: Vec<_> = (0..10).map(|i| b.add_object(format!("o{i}"), 1)).collect();
        for i in 0..10 {
            for j in i + 1..10 {
                b.add_pair(objs[i], objs[j], 0.5, 1.0).unwrap();
            }
        }
        let p = b.uniform_capacities(4, 10).build().unwrap();
        assert!(exact_placement(&p, &ExactOptions { max_visited: 1 }).is_none());
    }
}
