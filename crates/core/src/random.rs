//! Random hash-based placement — the paper's correlation-oblivious
//! baseline (§4.1).

use crate::placement::Placement;
use crate::problem::CcaProblem;
use cca_hash::hash_placement;

/// Places every object on the node given by the MD5 hash of its name
/// modulo the node count: "Random hash-based index placement or its
/// variants are commonly employed in practice today."
///
/// Capacities are ignored, as in the paper's baseline — uniform hashing
/// balances load in expectation.
///
/// ```
/// use cca_core::{random_hash_placement, CcaProblem};
/// let mut b = CcaProblem::builder();
/// b.add_object("car", 8);
/// b.add_object("dealer", 8);
/// let problem = b.uniform_capacities(4, 100).build().unwrap();
/// let placement = random_hash_placement(&problem);
/// // Deterministic: the same names always hash to the same nodes.
/// assert_eq!(placement, random_hash_placement(&problem));
/// ```
#[must_use]
pub fn random_hash_placement(problem: &CcaProblem) -> Placement {
    let n = problem.num_nodes();
    let assignment = problem
        .objects()
        .map(|i| hash_placement(problem.name(i), n) as u32)
        .collect();
    Placement::new(assignment, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ObjectId;

    fn problem(objects: usize, nodes: usize) -> CcaProblem {
        let mut b = CcaProblem::builder();
        for i in 0..objects {
            b.add_object(format!("keyword{i}"), 8);
        }
        b.uniform_capacities(nodes, u64::MAX).build().unwrap()
    }

    #[test]
    fn deterministic_and_in_range() {
        let p = problem(100, 7);
        let a = random_hash_placement(&p);
        let b = random_hash_placement(&p);
        assert_eq!(a, b);
        for i in p.objects() {
            assert!(a.node_of(i) < 7);
        }
    }

    #[test]
    fn roughly_uniform_across_nodes() {
        let p = problem(5000, 10);
        let pl = random_hash_placement(&p);
        let mut counts = [0usize; 10];
        for i in p.objects() {
            counts[pl.node_of(i)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!((350..650).contains(&c), "node {k} got {c} objects");
        }
    }

    #[test]
    fn placement_follows_name_not_id() {
        // Same names => same nodes, regardless of insertion order.
        let mut b1 = CcaProblem::builder();
        b1.add_object("alpha", 1);
        b1.add_object("beta", 1);
        let p1 = b1.uniform_capacities(5, 100).build().unwrap();

        let mut b2 = CcaProblem::builder();
        b2.add_object("beta", 1);
        b2.add_object("alpha", 1);
        let p2 = b2.uniform_capacities(5, 100).build().unwrap();

        let pl1 = random_hash_placement(&p1);
        let pl2 = random_hash_placement(&p2);
        assert_eq!(pl1.node_of(ObjectId(0)), pl2.node_of(ObjectId(1))); // alpha
        assert_eq!(pl1.node_of(ObjectId(1)), pl2.node_of(ObjectId(0))); // beta
    }
}
