//! Canonical sparse correlation graph: CSR adjacency over the pair list.
//!
//! The CCA objective `Σ_{f(i)≠f(j)} r(i,j)·w(i,j)` is a sparse graph
//! quantity, yet historically every layer re-derived it by scanning the
//! flat [`crate::CcaProblem::pairs`] list end-to-end — O(|E|) per cost
//! query and per candidate move. [`CorrelationGraph`] is the one shared
//! adjacency view, built once inside `CcaProblem::build` (and rebuilt by
//! `restrict_to` / `prune_pairs`), that every solve layer walks instead:
//!
//! * **Edge list in storage order.** [`EdgeId`] `e` maps back to
//!   `problem.pairs()[e]`; the edge weight `r·w` is precomputed once with
//!   the same multiplication the `Pair::weight` call sites performed, so
//!   every sum over edges reproduces the historic pair-scan **bit for
//!   bit**. The pair list is *never* re-sorted here: `restrict_to` yields
//!   pairs in keep-list order and `prune_pairs` leaves them weight-sorted,
//!   and both orders are load-bearing (f64 summation order, LP column
//!   order). See DESIGN.md §9 for the full iteration-order contract.
//! * **CSR rows in pair-scan order.** Row `i` lists the neighbours of `i`
//!   in the order a single scan of the pair list discovers them — exactly
//!   the push order of the per-module `adjacency()` vectors this replaces
//!   — so O(deg) move deltas accumulate in the historic order too.
//! * **Precomputed orderings.** [`CorrelationGraph::edges_by_correlation`]
//!   (greedy §4.1) and [`CorrelationGraph::edges_by_weight`] (importance
//!   ranking §4.2, audit) are total orders (the `(a, b)` tie-break is
//!   unique per edge), so they equal what a per-call `sort_unstable` of
//!   pair indices produced, for any starting permutation.
//!
//! [`IncrementalCost`] layers an O(deg)-per-move cost accumulator on top,
//! with the invariant that deltas match a full recompute difference (the
//! `graph_properties` suite pins this exactly, not within an epsilon).

use crate::placement::Placement;
use crate::problem::{ObjectId, Pair, ProblemError};
use crate::replica::ReplicaPlacement;

/// Identifier of an edge: the index of its [`Pair`] in
/// [`crate::CcaProblem::pairs`] — this back-map is a stable, documented
/// contract (LP `z`-columns and cut rows are keyed by it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index form of the identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One edge of the correlation graph: a pair plus its precomputed
/// objective weight `r·w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The edge's id (index into the problem's pair list).
    pub id: EdgeId,
    /// Smaller-id endpoint.
    pub a: ObjectId,
    /// Larger-id endpoint.
    pub b: ObjectId,
    /// Precomputed objective weight `r(a,b)·w(a,b)`.
    pub weight: f64,
}

/// CSR (compressed-sparse-row) adjacency view of a problem's pair list.
///
/// Rows cover every object; row `i` holds `(neighbour, weight, edge)`
/// entries in pair-scan order. The edge arrays are structure-of-arrays in
/// [`EdgeId`] order, i.e. pair-storage order.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationGraph {
    num_objects: usize,
    // Edge list (EdgeId order == pair storage order).
    edge_a: Vec<ObjectId>,
    edge_b: Vec<ObjectId>,
    edge_weight: Vec<f64>,
    // CSR rows (per-row entries in pair-scan order).
    offsets: Vec<u32>,
    nbr_ids: Vec<ObjectId>,
    nbr_weights: Vec<f64>,
    nbr_edges: Vec<EdgeId>,
    // Σ of row weights, accumulated in row order.
    weighted_degree: Vec<f64>,
    // Total orders over EdgeId (unique (a, b) tie-break).
    by_correlation: Vec<EdgeId>,
    by_weight: Vec<EdgeId>,
    // Every edge weight is > 0.0 — lets the batched kernel run its
    // branchless (vectorizable) inner loop, whose only bit deviation from
    // the serial fold (`+0.0` where a split-free candidate should read
    // `-0.0`) is then detectable from the sum alone and fixed up exactly.
    positive_weights: bool,
}

/// Rows per fixed chunk of [`CorrelationGraph::cost_chunked`]. Chunk
/// boundaries depend only on the object count — never on the thread count
/// — so the chunked sum is invariant across `threads`.
const COST_CHUNK_ROWS: usize = 256;

/// Edges per fixed chunk of [`CorrelationGraph::cost_batch_chunked`].
/// Chunk boundaries depend only on the edge count — never on the thread
/// count — so the chunked batch sums are invariant across `threads`.
const BATCH_CHUNK_EDGES: usize = 4096;

/// A batch of k candidate placements laid out structure-of-arrays: one
/// `Vec<u32>` assignment column per candidate, all over the same object
/// universe and node count.
///
/// This is the input to the batched evaluation kernels
/// ([`CorrelationGraph::cost_batch`] and
/// [`CorrelationGraph::cost_batch_chunked`]): one walk of the CSR edge
/// columns scores every candidate, reading each edge's endpoints and
/// weight once instead of once per candidate. See DESIGN.md §10 for the
/// batched-evaluation contract.
#[derive(Debug, Clone)]
pub struct PlacementBatch {
    num_objects: usize,
    num_nodes: usize,
    columns: Vec<Vec<u32>>,
    // Lazily built object-major interleave of the columns (see
    // `interleaved`), cached so a batch scored repeatedly pays the
    // transpose once. Invalidated by `push`; excluded from equality.
    rows: std::sync::OnceLock<InterleavedRows>,
}

impl PartialEq for PlacementBatch {
    fn eq(&self, other: &PlacementBatch) -> bool {
        self.num_objects == other.num_objects
            && self.num_nodes == other.num_nodes
            && self.columns == other.columns
    }
}

impl Eq for PlacementBatch {}

impl PlacementBatch {
    /// An empty batch over `num_objects` objects and `num_nodes` nodes.
    #[must_use]
    pub fn new(num_objects: usize, num_nodes: usize) -> PlacementBatch {
        PlacementBatch {
            num_objects,
            num_nodes,
            columns: Vec::new(),
            rows: std::sync::OnceLock::new(),
        }
    }

    /// Builds a batch from candidate placements, in slice order.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty (the object/node universe would be
    /// undefined) or if the candidates disagree on object or node counts.
    #[must_use]
    pub fn from_placements(placements: &[Placement]) -> PlacementBatch {
        let first = placements
            .first()
            .expect("a batch needs at least one placement to fix its dimensions");
        let mut batch = PlacementBatch::new(first.num_objects(), first.num_nodes());
        for p in placements {
            batch.push(p);
        }
        batch
    }

    /// Appends `placement` as the next candidate column.
    ///
    /// # Panics
    ///
    /// Panics if `placement` disagrees with the batch's object or node
    /// counts.
    pub fn push(&mut self, placement: &Placement) {
        assert_eq!(
            placement.num_objects(),
            self.num_objects,
            "batch candidates must cover the same objects"
        );
        assert_eq!(
            placement.num_nodes(),
            self.num_nodes,
            "batch candidates must share the node count"
        );
        self.columns.push(placement.as_slice().to_vec());
        self.rows.take();
    }

    /// Number of candidates k in the batch.
    #[must_use]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the batch holds no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Number of objects each candidate covers.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of nodes each candidate places onto.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The assignment column of candidate `c` (`column[i]` is the node of
    /// object `i`).
    ///
    /// # Panics
    ///
    /// Panics if `c >= width()`.
    #[must_use]
    pub fn column(&self, c: usize) -> &[u32] {
        &self.columns[c]
    }

    /// Candidate `c` rebuilt as an owned [`Placement`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= width()`.
    #[must_use]
    pub fn placement(&self, c: usize) -> Placement {
        Placement::new(self.columns[c].clone(), self.num_nodes)
    }

    /// Object-major interleaved copy of the columns: entry `i * k + c` is
    /// candidate `c`'s node for object `i`, so an edge walk touches two
    /// contiguous k-wide rows per edge instead of k scattered columns.
    /// Ids are stored as floats so the kernel's compare-and-select runs
    /// entirely in the floating domain — the inequality mask is born lane-
    /// width, with no integer-to-float mask widening on the baseline
    /// (SSE2) target. Node ids below `2^24` map to `f32` exactly (halving
    /// row traffic and keeping the random row reads cache-resident);
    /// larger ids fall back to `f64`, which is exact for every `u32`.
    /// Either map is injective, so lane equality — all the kernel reads —
    /// is unchanged. Pure layout either way: the per-candidate fold order
    /// is untouched. Built on first use and cached until the next `push`,
    /// so re-scoring the same batch pays the transpose once.
    pub(crate) fn interleaved(&self) -> &InterleavedRows {
        self.rows.get_or_init(|| {
            if self.num_nodes <= 1 << 24 {
                InterleavedRows::Narrow(self.transpose(|node| node as f32))
            } else {
                InterleavedRows::Wide(self.transpose(f64::from))
            }
        })
    }

    /// The object-major transpose behind [`PlacementBatch::interleaved`]:
    /// objects outer, candidates inner, so writes are strictly sequential
    /// and reads stream k columns in parallel.
    fn transpose<T: Copy + Default>(&self, map: impl Fn(u32) -> T) -> Vec<T> {
        let k = self.columns.len();
        let mut rows = vec![T::default(); self.num_objects * k];
        for (i, stripe) in rows.chunks_exact_mut(k.max(1)).enumerate() {
            for (slot, col) in stripe.iter_mut().zip(&self.columns) {
                *slot = map(col[i]);
            }
        }
        rows
    }
}

/// The cached interleaved stripe store of a [`PlacementBatch`]: node ids
/// narrow to `f32` whenever the node count keeps that exact (`< 2^24`),
/// falling back to `f64` (exact for every `u32` id).
#[derive(Debug, Clone)]
pub(crate) enum InterleavedRows {
    Narrow(Vec<f32>),
    Wide(Vec<f64>),
}

/// Validates that a CSR build over `num_pairs` pairs and `num_objects`
/// objects stays within `u32` indexing: object ids must fit `u32`
/// ([`ObjectId`] is `u32`-backed) and the `2·m` half-edge slots must fit
/// the `u32` offset/cursor arithmetic (which also keeps every
/// [`EdgeId`]`(e as u32)` cast exact). Checked *before* any allocation so
/// an oversized instance errors instead of silently wrapping — or OOMing
/// on the degree array.
pub(crate) fn check_csr_bounds(num_objects: usize, num_pairs: usize) -> Result<(), ProblemError> {
    if num_objects > u32::MAX as usize || num_pairs > (u32::MAX / 2) as usize {
        return Err(ProblemError::GraphTooLarge {
            objects: num_objects,
            pairs: num_pairs,
        });
    }
    Ok(())
}

/// The serial CCA cost fold over structure-of-arrays edge columns: the
/// same `filter · map · sum` sequence as the historic pair-list scan
/// (including `sum`'s `-0.0` identity for the no-split case), shared by
/// [`CorrelationGraph::cost`] and the per-shard partials of
/// [`crate::shard::ShardedGraph`].
pub(crate) fn edge_cost_fold(
    edge_a: &[ObjectId],
    edge_b: &[ObjectId],
    edge_weight: &[f64],
    placement: &Placement,
) -> f64 {
    edge_a
        .iter()
        .zip(edge_b)
        .zip(edge_weight)
        .filter(|&((&a, &b), _)| placement.node_of(a) != placement.node_of(b))
        .map(|(_, &w)| w)
        .sum()
}

/// The shared batched edge loop over structure-of-arrays edge columns in
/// [`EdgeId`] order, accumulating into `acc` (one `-0.0`-initialised
/// entry per candidate). `rows` is the batch's object-major interleaved
/// layout: both endpoint rows of an edge are contiguous k-wide stripes,
/// read once for all candidates.
///
/// With strictly positive edge weights the inner loop is branchless
/// (`+= w` or `+= 0.0` by select), which lets the compiler vectorise
/// across candidates. Adding `+0.0` for non-split edges perturbs a
/// serial fold's bits in exactly one place — a candidate that never
/// splits reads `+0.0` instead of the fold identity `-0.0` — and with
/// `w > 0` everywhere "never split" is equivalent to "sum is ±0", so
/// the trailing fix-up restores `-0.0` exactly. Graphs carrying
/// zero-weight edges take the branchy scalar loop instead, which
/// reproduces the serial fold sequence verbatim.
///
/// Shared by [`CorrelationGraph::cost_batch`] /
/// [`CorrelationGraph::cost_batch_chunked`] (over edge sub-ranges) and
/// the per-shard partials of [`crate::shard::ShardedGraph::cost_batch`]
/// (over shard-owned edge columns).
pub(crate) fn batch_edge_walk<T: Copy + PartialEq>(
    edge_a: &[ObjectId],
    edge_b: &[ObjectId],
    edge_weight: &[f64],
    positive_weights: bool,
    rows: &[T],
    k: usize,
    acc: &mut [f64],
) {
    if positive_weights {
        // Monomorphise the hot widths: a compile-time K fully unrolls
        // the lane loop, keeps the K accumulators in registers, and
        // elides every per-lane bounds check. Other widths take the
        // dynamic-width loop, whose per-edge overhead amortises as k
        // grows.
        match k {
            1 => walk_const::<1, T>(edge_a, edge_b, edge_weight, rows, acc),
            2 => walk_const::<2, T>(edge_a, edge_b, edge_weight, rows, acc),
            4 => walk_const::<4, T>(edge_a, edge_b, edge_weight, rows, acc),
            8 => walk_const::<8, T>(edge_a, edge_b, edge_weight, rows, acc),
            16 => walk_const::<16, T>(edge_a, edge_b, edge_weight, rows, acc),
            _ => walk_dyn(edge_a, edge_b, edge_weight, rows, k, acc),
        }
        for s in acc.iter_mut() {
            if *s == 0.0 {
                *s = -0.0;
            }
        }
    } else {
        let edges = edge_a.iter().zip(edge_b).zip(edge_weight);
        for ((&a, &b), &w) in edges {
            let ra = &rows[a.index() * k..][..k];
            let rb = &rows[b.index() * k..][..k];
            for ((s, &x), &y) in acc.iter_mut().zip(ra).zip(rb) {
                if x != y {
                    *s += w;
                }
            }
        }
    }
}

/// The positive-weight select-add walk at compile-time width `K`:
/// `K` independent accumulator lanes held in a local array (register-
/// resident for the widths dispatched above), unrolled per edge.
/// Assumes `acc` is `-0.0`-initialised and overwrites its first `K`
/// entries with the folded lanes.
fn walk_const<const K: usize, T: Copy + PartialEq>(
    edge_a: &[ObjectId],
    edge_b: &[ObjectId],
    edge_weight: &[f64],
    rows: &[T],
    acc: &mut [f64],
) {
    let mut local = [-0.0f64; K];
    let edges = edge_a.iter().zip(edge_b).zip(edge_weight);
    for ((&a, &b), &w) in edges {
        let ra = &rows[a.index() * K..][..K];
        let rb = &rows[b.index() * K..][..K];
        // Two passes — compare all K lanes, then select-add — so the
        // compiler compares whole stripes at once instead of weaving
        // narrow element compares into the f64 adds.
        let mut split = [false; K];
        for j in 0..K {
            split[j] = ra[j] != rb[j];
        }
        for j in 0..K {
            local[j] += if split[j] { w } else { 0.0 };
        }
    }
    acc[..K].copy_from_slice(&local);
}

/// The positive-weight select-add walk at runtime width `k`, in
/// bounds-check-free 4-lane tiles plus a remainder loop.
fn walk_dyn<T: Copy + PartialEq>(
    edge_a: &[ObjectId],
    edge_b: &[ObjectId],
    edge_weight: &[f64],
    rows: &[T],
    k: usize,
    acc: &mut [f64],
) {
    let acc = &mut acc[..k];
    let edges = edge_a.iter().zip(edge_b).zip(edge_weight);
    for ((&a, &b), &w) in edges {
        let ra = &rows[a.index() * k..][..k];
        let rb = &rows[b.index() * k..][..k];
        let tiles = acc
            .chunks_exact_mut(4)
            .zip(ra.chunks_exact(4))
            .zip(rb.chunks_exact(4));
        for ((av, xv), yv) in tiles {
            for j in 0..4 {
                av[j] += if xv[j] != yv[j] { w } else { 0.0 };
            }
        }
        let rest = k - k % 4;
        for ((s, &x), &y) in acc[rest..].iter_mut().zip(&ra[rest..]).zip(&rb[rest..]) {
            *s += if x != y { w } else { 0.0 };
        }
    }
}

impl CorrelationGraph {
    /// Builds the CSR view over `pairs` for `num_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` (the builder
    /// validates ids before this runs), or if the instance overflows the
    /// `u32` CSR indexing — use [`CorrelationGraph::try_build`] to get a
    /// [`ProblemError::GraphTooLarge`] instead.
    #[must_use]
    pub fn build(num_objects: usize, pairs: &[Pair]) -> CorrelationGraph {
        CorrelationGraph::try_build(num_objects, pairs)
            .unwrap_or_else(|e| panic!("correlation graph build failed: {e}"))
    }

    /// Fallible [`CorrelationGraph::build`]: returns
    /// [`ProblemError::GraphTooLarge`] when the instance would overflow the
    /// `u32` CSR offsets / [`EdgeId`] casts (more than `u32::MAX / 2` pairs,
    /// whose `2·m` half-edge slots would wrap the offset accumulator, or
    /// more than `u32::MAX` objects), instead of silently wrapping. The
    /// bound is checked before any allocation.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` (the builder
    /// validates ids before this runs).
    ///
    /// # Errors
    ///
    /// [`ProblemError::GraphTooLarge`] as described above.
    pub fn try_build(num_objects: usize, pairs: &[Pair]) -> Result<CorrelationGraph, ProblemError> {
        check_csr_bounds(num_objects, pairs.len())?;
        let m = pairs.len();
        let mut edge_a = Vec::with_capacity(m);
        let mut edge_b = Vec::with_capacity(m);
        let mut edge_weight = Vec::with_capacity(m);
        let mut degree = vec![0u32; num_objects];
        for pair in pairs {
            assert!(
                pair.a.index() < num_objects && pair.b.index() < num_objects,
                "pair ({}, {}) out of range for {num_objects} objects",
                pair.a,
                pair.b
            );
            edge_a.push(pair.a);
            edge_b.push(pair.b);
            edge_weight.push(pair.weight());
            degree[pair.a.index()] += 1;
            degree[pair.b.index()] += 1;
        }
        // Safe u32 arithmetic: `check_csr_bounds` capped the pair count at
        // `u32::MAX / 2`, so `total` tops out at `2·m ≤ u32::MAX` and every
        // `EdgeId(e as u32)` cast below is exact.
        let mut offsets = Vec::with_capacity(num_objects + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        // Fill rows by a single scan of the pair list, appending each edge
        // to both endpoint rows — the exact push order of the historic
        // per-module `adjacency()` vectors.
        let mut cursor: Vec<u32> = offsets[..num_objects].to_vec();
        let mut nbr_ids = vec![ObjectId(0); 2 * m];
        let mut nbr_weights = vec![0.0f64; 2 * m];
        let mut nbr_edges = vec![EdgeId(0); 2 * m];
        for e in 0..m {
            let (a, b, w) = (edge_a[e], edge_b[e], edge_weight[e]);
            let slot = cursor[a.index()] as usize;
            nbr_ids[slot] = b;
            nbr_weights[slot] = w;
            nbr_edges[slot] = EdgeId(e as u32);
            cursor[a.index()] += 1;
            let slot = cursor[b.index()] as usize;
            nbr_ids[slot] = a;
            nbr_weights[slot] = w;
            nbr_edges[slot] = EdgeId(e as u32);
            cursor[b.index()] += 1;
        }
        // Weighted degree accumulates in row order (the order the exact
        // solver's incident-weight sums used).
        let weighted_degree = (0..num_objects)
            .map(|i| {
                let (s, t) = (offsets[i] as usize, offsets[i + 1] as usize);
                nbr_weights[s..t].iter().sum()
            })
            .collect();
        // Descending correlation, ties by (a, b) — greedy §4.1 order.
        let mut by_correlation: Vec<EdgeId> = (0..m as u32).map(EdgeId).collect();
        by_correlation.sort_unstable_by(|&x, &y| {
            let (px, py) = (&pairs[x.index()], &pairs[y.index()]);
            py.correlation
                .partial_cmp(&px.correlation)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        // Descending weight, ties by (a, b) — importance-ranking §4.2 and
        // audit order.
        let mut by_weight: Vec<EdgeId> = (0..m as u32).map(EdgeId).collect();
        by_weight.sort_unstable_by(|&x, &y| {
            edge_weight[y.index()]
                .partial_cmp(&edge_weight[x.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((edge_a[x.index()], edge_b[x.index()]).cmp(&(edge_a[y.index()], edge_b[y.index()])))
        });
        let positive_weights = edge_weight.iter().all(|&w| w > 0.0);
        Ok(CorrelationGraph {
            num_objects,
            edge_a,
            edge_b,
            edge_weight,
            offsets,
            nbr_ids,
            nbr_weights,
            nbr_edges,
            weighted_degree,
            by_correlation,
            by_weight,
            positive_weights,
        })
    }

    /// Approximate resident size of the CSR view in bytes (edge columns,
    /// row arrays, precomputed orders) — the memory-model input for the
    /// million-object instance accounting in `BENCH_shard.json`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.edge_a.len() * size_of::<ObjectId>()
            + self.edge_b.len() * size_of::<ObjectId>()
            + self.edge_weight.len() * size_of::<f64>()
            + self.offsets.len() * size_of::<u32>()
            + self.nbr_ids.len() * size_of::<ObjectId>()
            + self.nbr_weights.len() * size_of::<f64>()
            + self.nbr_edges.len() * size_of::<EdgeId>()
            + self.weighted_degree.len() * size_of::<f64>()
            + self.by_correlation.len() * size_of::<EdgeId>()
            + self.by_weight.len() * size_of::<EdgeId>()
    }


    /// Number of objects (CSR rows).
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of edges `|E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edge_weight.len()
    }

    /// Degree of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: ObjectId) -> usize {
        (self.offsets[i.index() + 1] - self.offsets[i.index()]) as usize
    }

    /// Sum of the edge weights incident to `i`, accumulated in row order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn weighted_degree(&self, i: ObjectId) -> f64 {
        self.weighted_degree[i.index()]
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> Edge {
        Edge {
            id: e,
            a: self.edge_a[e.index()],
            b: self.edge_b[e.index()],
            weight: self.edge_weight[e.index()],
        }
    }

    /// Precomputed weight `r·w` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edge_weight[e.index()]
    }

    /// All edges in [`EdgeId`] order (pair storage order) — the one edge
    /// enumeration LP columns, seed cuts, and cost sums share.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.edge_weight.len()).map(move |e| self.edge(EdgeId(e as u32)))
    }

    /// Neighbours of `i` as `(neighbour, weight)`, in pair-scan order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: ObjectId) -> impl Iterator<Item = (ObjectId, f64)> + '_ {
        let (s, t) = (
            self.offsets[i.index()] as usize,
            self.offsets[i.index() + 1] as usize,
        );
        self.nbr_ids[s..t]
            .iter()
            .copied()
            .zip(self.nbr_weights[s..t].iter().copied())
    }

    /// Neighbours of `i` as `(neighbour, weight, edge)`, in pair-scan
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbor_edges(
        &self,
        i: ObjectId,
    ) -> impl Iterator<Item = (ObjectId, f64, EdgeId)> + '_ {
        let (s, t) = (
            self.offsets[i.index()] as usize,
            self.offsets[i.index() + 1] as usize,
        );
        self.nbr_ids[s..t]
            .iter()
            .copied()
            .zip(self.nbr_weights[s..t].iter().copied())
            .zip(self.nbr_edges[s..t].iter().copied())
            .map(|((n, w), e)| (n, w, e))
    }

    /// Edge ids in descending correlation, ties by `(a, b)` — the order
    /// greedy placement (§4.1) visits pairs.
    #[must_use]
    pub fn edges_by_correlation(&self) -> &[EdgeId] {
        &self.by_correlation
    }

    /// Edge ids in descending objective weight `r·w`, ties by `(a, b)` —
    /// the order importance ranking (§4.2) and the audit's heaviest-split
    /// list use.
    #[must_use]
    pub fn edges_by_weight(&self) -> &[EdgeId] {
        &self.by_weight
    }

    /// The CCA objective `Σ_{f(a)≠f(b)} r·w` of `placement`, summed over
    /// edges in [`EdgeId`] order — bit-identical to the historic pair-list
    /// scan.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost(&self, placement: &Placement) -> f64 {
        // The same `filter · map · sum` fold as the historic pair-list
        // scan (including `sum`'s `-0.0` identity for the all-colocated
        // case), over the SoA edge columns; zipped iteration keeps the
        // loop free of bounds checks.
        edge_cost_fold(&self.edge_a, &self.edge_b, &self.edge_weight, placement)
    }

    /// Communication-cost change of moving `i` from its current node to
    /// `target`: `Σ_{j∈adj(i)} w_ij·([f(j)=src] − [f(j)=target])`,
    /// accumulated in row order (negative is an improvement; 0 when
    /// `target` is `i`'s current node).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn move_delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        let src = placement.node_of(i);
        if src == target {
            return 0.0;
        }
        let mut delta = 0.0;
        for (other, w) in self.neighbors(i) {
            let on = placement.node_of(other);
            if on == src {
                delta += w;
            } else if on == target {
                delta -= w;
            }
        }
        delta
    }

    /// Scores every candidate of `batch` in a **single** walk of the CSR
    /// edge columns: the outer loop runs over edges in [`EdgeId`] order,
    /// the inner loop over candidate columns, so each edge's endpoints and
    /// weight are read once for all k candidates.
    ///
    /// Column `c` of the result is **bit-identical** to
    /// `cost(batch.placement(c))`: each accumulator starts at `sum`'s
    /// `-0.0` identity and folds exactly the weights the serial
    /// `filter · map · sum` walk folds, in the same EdgeId order. In
    /// particular a batch of 1 equals [`CorrelationGraph::cost`], and
    /// reordering the batch permutes the result identically — batch
    /// membership never changes any candidate's score. An empty batch
    /// yields an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if the batch covers fewer objects than the graph.
    #[must_use]
    pub fn cost_batch(&self, batch: &PlacementBatch) -> Vec<f64> {
        let k = batch.width();
        // `sum`'s identity is -0.0, so an all-colocated candidate scores
        // the same bits as the serial walk.
        let mut acc = vec![-0.0f64; k];
        if k == 0 {
            return acc;
        }
        match batch.interleaved() {
            InterleavedRows::Narrow(rows) => batch_edge_walk(
                &self.edge_a,
                &self.edge_b,
                &self.edge_weight,
                self.positive_weights,
                rows,
                k,
                &mut acc,
            ),
            InterleavedRows::Wide(rows) => batch_edge_walk(
                &self.edge_a,
                &self.edge_b,
                &self.edge_weight,
                self.positive_weights,
                rows,
                k,
                &mut acc,
            ),
        }
        acc
    }

    /// [`CorrelationGraph::cost_batch`] evaluated in parallel over fixed
    /// edge chunks (`BATCH_CHUNK_EDGES` edges each), with per-chunk
    /// per-candidate partials reduced in chunk order.
    ///
    /// The result is identical for every `threads` value (chunk boundaries
    /// depend only on the edge count), and on instances with at most one
    /// chunk it is bit-identical to the serial [`CorrelationGraph::cost_batch`]
    /// (each partial starts at the `-0.0` identity). On larger instances
    /// the chunked reduction is a *different associativity* than the
    /// serial walk, so — exactly like [`CorrelationGraph::cost_chunked`] —
    /// solver-reported costs stay on the serial batch walk; use this for
    /// bulk re-evaluation where thread invariance suffices.
    ///
    /// # Panics
    ///
    /// Panics if the batch covers fewer objects than the graph.
    #[must_use]
    pub fn cost_batch_chunked(&self, batch: &PlacementBatch, threads: usize) -> Vec<f64> {
        let k = batch.width();
        if k == 0 {
            return Vec::new();
        }
        let m = self.edge_weight.len();
        let chunks = m.div_ceil(BATCH_CHUNK_EDGES).max(1);
        let rows = batch.interleaved();
        let partials = cca_par::par_map_indexed(threads, chunks, |c| {
            let start = c * BATCH_CHUNK_EDGES;
            let end = (start + BATCH_CHUNK_EDGES).min(m);
            let mut acc = vec![-0.0f64; k];
            let (ea, eb, ew) = (
                &self.edge_a[start..end],
                &self.edge_b[start..end],
                &self.edge_weight[start..end],
            );
            match rows {
                InterleavedRows::Narrow(r) => {
                    batch_edge_walk(ea, eb, ew, self.positive_weights, r, k, &mut acc);
                }
                InterleavedRows::Wide(r) => {
                    batch_edge_walk(ea, eb, ew, self.positive_weights, r, k, &mut acc);
                }
            }
            acc
        });
        // Reduce per candidate in chunk (index) order.
        let mut totals = vec![-0.0f64; k];
        for partial in partials {
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        totals
    }

    /// [`CorrelationGraph::move_delta`] for every target in `targets`, in
    /// a **single** walk of `i`'s CSR row: each neighbour's node is looked
    /// up once and folded into all k target accumulators.
    ///
    /// Entry `t` of the result is **bit-identical** to
    /// `move_delta(placement, i, targets[t])`: each accumulator starts at
    /// `0.0` and adds/subtracts exactly the weights the per-target walk
    /// does, in the same row order (`targets[t] == src` yields exactly
    /// `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn move_delta_batch(
        &self,
        placement: &Placement,
        i: ObjectId,
        targets: &[usize],
    ) -> Vec<f64> {
        let src = placement.node_of(i);
        let mut deltas = vec![0.0f64; targets.len()];
        if targets.iter().all(|&t| t == src) {
            return deltas;
        }
        for (other, w) in self.neighbors(i) {
            let on = placement.node_of(other);
            for (d, &t) in deltas.iter_mut().zip(targets) {
                if t == src {
                    continue;
                }
                if on == src {
                    *d += w;
                } else if on == t {
                    *d -= w;
                }
            }
        }
        deltas
    }

    /// [`CorrelationGraph::cost`] evaluated in parallel over fixed chunks
    /// of CSR row ranges (each edge counted at its smaller endpoint), with
    /// per-chunk partials reduced in chunk order.
    ///
    /// The result is identical for every `threads` value (chunk boundaries
    /// depend only on the object count) but is a *different associativity*
    /// than the serial [`CorrelationGraph::cost`], so the two may differ in
    /// the last ulps; solver-reported costs therefore stay on the serial
    /// walk. Use this for bulk re-evaluation where the thread-invariance
    /// contract suffices.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost_chunked(&self, placement: &Placement, threads: usize) -> f64 {
        let chunks = self.num_objects.div_ceil(COST_CHUNK_ROWS).max(1);
        let partials = cca_par::par_map_indexed(threads, chunks, |c| {
            let start = c * COST_CHUNK_ROWS;
            let end = (start + COST_CHUNK_ROWS).min(self.num_objects);
            let mut sum = -0.0;
            for i in start..end {
                let obj = ObjectId(i as u32);
                let on = placement.node_of(obj);
                for (other, w) in self.neighbors(obj) {
                    // Count each edge once, at its smaller endpoint.
                    if other.index() > i && placement.node_of(other) != on {
                        sum += w;
                    }
                }
            }
            sum
        });
        partials.into_iter().sum()
    }

    // -- Replica-aware evaluation ------------------------------------------

    /// The replica-aware CCA objective: edge `(a, b)` pays `r·w` iff **no**
    /// replica pair of `a` and `b` colocates (the min-over-replica-choices
    /// read cost; see [`ReplicaPlacement::split`]). Summed over edges in
    /// [`EdgeId`] order with `sum`'s `-0.0` identity — the same fold as
    /// [`CorrelationGraph::cost`], so with `r = 1` the result is
    /// **bit-identical** to `cost(rp.primary())` (the split predicate
    /// degenerates to `node_of(a) != node_of(b)` and the fold order is
    /// unchanged; the `r = 1` fast path below makes that structural).
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost_replicas(&self, rp: &ReplicaPlacement) -> f64 {
        if rp.replicas() == 1 {
            return self.cost(rp.primary());
        }
        self.edge_a
            .iter()
            .zip(&self.edge_b)
            .zip(&self.edge_weight)
            .filter(|&((&a, &b), _)| rp.split(a, b))
            .map(|(_, &w)| w)
            .sum()
    }

    /// [`CorrelationGraph::cost_replicas`] for a batch of candidates, in
    /// slice order. All-`r = 1` batches route through the interleaved
    /// [`CorrelationGraph::cost_batch`] kernel on the primary columns
    /// (bit-identical per its contract); mixed/replicated batches fall
    /// back to the serial replica fold per candidate.
    #[must_use]
    pub fn cost_replica_batch(&self, candidates: &[&ReplicaPlacement]) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        if candidates.iter().all(|rp| rp.replicas() == 1) {
            let primaries: Vec<Placement> =
                candidates.iter().map(|rp| rp.primary().clone()).collect();
            return self.cost_batch(&PlacementBatch::from_placements(&primaries));
        }
        candidates.iter().map(|rp| self.cost_replicas(rp)).collect()
    }

    /// Communication-cost change of moving **replica `j`** of object `i`
    /// to `target`, in one O(deg·r) walk of `i`'s CSR row: each adjacent
    /// edge contributes `+w` when the move newly splits it and `−w` when
    /// it newly joins it, accumulated in row order.
    ///
    /// With `r = 1` this adds/subtracts exactly the weights
    /// [`CorrelationGraph::move_delta`] does, in the same order, so the
    /// result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `i`, `j`, or `target` is out of range.
    #[must_use]
    pub fn replica_move_delta(
        &self,
        rp: &ReplicaPlacement,
        i: ObjectId,
        j: usize,
        target: usize,
    ) -> f64 {
        let src = rp.node_of(i, j);
        if src == target {
            return 0.0;
        }
        let r = rp.replicas();
        // `other` colocates with a replica of `i` after the move iff it
        // shares a node with any replica k ≠ j, or with `target`.
        let joined_after = |other: ObjectId| -> bool {
            (0..r).any(|k| {
                let n = if k == j { target } else { rp.node_of(i, k) };
                rp.colocated(other, n)
            })
        };
        let mut delta = 0.0;
        for (other, w) in self.neighbors(i) {
            let was_split = rp.split(i, other);
            let now_split = !joined_after(other);
            match (was_split, now_split) {
                (false, true) => delta += w,
                (true, false) => delta -= w,
                _ => {}
            }
        }
        delta
    }
}

/// O(deg)-per-move communication-cost accumulator over a
/// [`CorrelationGraph`].
///
/// Seeded with a full (bit-identical) cost walk, then kept current by
/// adding each applied move's [`CorrelationGraph::move_delta`]. The
/// `graph_properties` suite pins `delta == recompute difference` exactly
/// (the delta and the recompute cancel/accumulate the same weights in the
/// same row order), and `cost()` tracks a fresh recompute exactly on
/// dyadic-weight instances across arbitrary move sequences.
#[derive(Debug, Clone)]
pub struct IncrementalCost<'g> {
    graph: &'g CorrelationGraph,
    cost: f64,
}

impl<'g> IncrementalCost<'g> {
    /// Seeds the accumulator with the full cost of `placement`.
    #[must_use]
    pub fn new(graph: &'g CorrelationGraph, placement: &Placement) -> Self {
        IncrementalCost {
            graph,
            cost: graph.cost(placement),
        }
    }

    /// The tracked communication cost.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Cost change of moving `i` to `target` under `placement`, without
    /// applying it.
    #[must_use]
    pub fn delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        self.graph.move_delta(placement, i, target)
    }

    /// Cost changes of moving `i` to each of `targets`, from one walk of
    /// `i`'s row (see [`CorrelationGraph::move_delta_batch`]); entry `t`
    /// bit-equals `delta(placement, i, targets[t])`.
    #[must_use]
    pub fn delta_batch(&self, placement: &Placement, i: ObjectId, targets: &[usize]) -> Vec<f64> {
        self.graph.move_delta_batch(placement, i, targets)
    }

    /// Applies the move `i → target` to `placement` and folds its delta
    /// into the tracked cost. Returns the delta.
    pub fn apply(&mut self, placement: &mut Placement, i: ObjectId, target: usize) -> f64 {
        let delta = self.graph.move_delta(placement, i, target);
        placement.assign(i, target);
        self.cost += delta;
        delta
    }

    /// Re-seeds the tracked cost from a full walk of `placement` (e.g.
    /// after bulk mutations applied outside this accumulator).
    pub fn resync(&mut self, placement: &Placement) {
        self.cost = self.graph.cost(placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CcaProblem;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap(); // weight 9
        b.add_pair(o[2], o[3], 0.5, 10.0).unwrap(); // weight 5
        b.add_pair(o[0], o[2], 0.1, 10.0).unwrap(); // weight 1
        b.uniform_capacities(2, 25).build().unwrap()
    }

    #[test]
    fn edge_ids_back_map_to_pairs() {
        let p = problem();
        let g = p.graph();
        assert_eq!(g.num_edges(), p.pairs().len());
        assert_eq!(g.num_objects(), p.num_objects());
        for (e, pair) in p.pairs().iter().enumerate() {
            let edge = g.edge(EdgeId(e as u32));
            assert_eq!((edge.a, edge.b), (pair.a, pair.b));
            assert_eq!(edge.weight.to_bits(), pair.weight().to_bits());
        }
    }

    #[test]
    fn csr_rows_follow_pair_scan_order() {
        let p = problem();
        let g = p.graph();
        // Row 0 discovers (0,1) then (0,2) in pair-list order.
        let row: Vec<_> = g.neighbors(ObjectId(0)).collect();
        assert_eq!(row, vec![(ObjectId(1), 9.0), (ObjectId(2), 1.0)]);
        assert_eq!(g.degree(ObjectId(0)), 2);
        assert_eq!(g.degree(ObjectId(3)), 1);
        assert_eq!(g.weighted_degree(ObjectId(0)), 10.0);
        // Builder sorts pairs by (a, b): (0,1), (0,2), (2,3).
        let with_edges: Vec<_> = g.neighbor_edges(ObjectId(2)).collect();
        assert_eq!(
            with_edges,
            vec![
                (ObjectId(0), 1.0, EdgeId(1)),
                (ObjectId(3), 5.0, EdgeId(2)),
            ]
        );
    }

    #[test]
    fn cost_matches_pair_scan_bitwise() {
        let p = problem();
        let g = p.graph();
        for assignment in [
            vec![0u32, 0, 0, 0],
            vec![0, 1, 0, 1],
            vec![0, 0, 1, 1],
            vec![1, 0, 0, 1],
        ] {
            let pl = Placement::new(assignment, 2);
            let scan: f64 = p
                .pairs()
                .iter()
                .filter(|pr| pl.node_of(pr.a) != pl.node_of(pr.b))
                .map(|pr| pr.weight())
                .sum();
            assert_eq!(g.cost(&pl).to_bits(), scan.to_bits());
        }
    }

    #[test]
    fn precomputed_orders_match_fresh_sorts() {
        let p = problem();
        let g = p.graph();
        let mut by_corr: Vec<usize> = (0..p.pairs().len()).collect();
        by_corr.sort_unstable_by(|&x, &y| {
            let (px, py) = (&p.pairs()[x], &p.pairs()[y]);
            py.correlation
                .partial_cmp(&px.correlation)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        let got: Vec<usize> = g.edges_by_correlation().iter().map(|e| e.index()).collect();
        assert_eq!(got, by_corr);
        let mut by_w: Vec<usize> = (0..p.pairs().len()).collect();
        by_w.sort_unstable_by(|&x, &y| {
            let (px, py) = (&p.pairs()[x], &p.pairs()[y]);
            py.weight()
                .partial_cmp(&px.weight())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        let got: Vec<usize> = g.edges_by_weight().iter().map(|e| e.index()).collect();
        assert_eq!(got, by_w);
    }

    #[test]
    fn move_delta_equals_recompute_difference() {
        let p = problem();
        let g = p.graph();
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        for i in 0..4u32 {
            for k in 0..2usize {
                let delta = g.move_delta(&pl, ObjectId(i), k);
                let mut moved = pl.clone();
                moved.assign(ObjectId(i), k);
                let diff = g.cost(&moved) - g.cost(&pl);
                assert_eq!(delta.to_bits(), diff.to_bits(), "obj {i} -> node {k}");
            }
        }
    }

    #[test]
    fn cost_chunked_is_thread_invariant() {
        let p = problem();
        let g = p.graph();
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        let serial = g.cost_chunked(&pl, 1);
        for threads in [2, 3, 8] {
            assert_eq!(g.cost_chunked(&pl, threads).to_bits(), serial.to_bits());
        }
        // Small instance: one chunk, so it even matches the serial walk.
        assert_eq!(serial.to_bits(), g.cost(&pl).to_bits());
    }

    #[test]
    fn incremental_cost_tracks_moves() {
        let p = problem();
        let g = p.graph();
        let mut pl = Placement::new(vec![0, 0, 0, 0], 2);
        let mut inc = IncrementalCost::new(g, &pl);
        assert_eq!(inc.cost(), 0.0);
        let d = inc.apply(&mut pl, ObjectId(1), 1);
        assert_eq!(d, 9.0);
        assert_eq!(inc.cost(), 9.0);
        assert_eq!(pl.node_of(ObjectId(1)), 1);
        inc.apply(&mut pl, ObjectId(0), 1);
        // (0,1) rejoined (−9), (0,2) split (+1).
        assert_eq!(inc.cost(), 1.0);
        assert_eq!(inc.cost().to_bits(), g.cost(&pl).to_bits());
        inc.resync(&pl);
        assert_eq!(inc.cost(), 1.0);
    }

    #[test]
    fn cost_batch_columns_bit_equal_serial_cost() {
        let p = problem();
        let g = p.graph();
        let candidates = vec![
            Placement::new(vec![0, 0, 0, 0], 2),
            Placement::new(vec![0, 1, 0, 1], 2),
            Placement::new(vec![0, 0, 1, 1], 2),
            Placement::new(vec![1, 0, 0, 1], 2),
        ];
        let batch = PlacementBatch::from_placements(&candidates);
        assert_eq!(batch.width(), 4);
        let costs = g.cost_batch(&batch);
        for (c, pl) in candidates.iter().enumerate() {
            assert_eq!(costs[c].to_bits(), g.cost(pl).to_bits(), "column {c}");
        }
        // Batch of 1 ≡ cost, including the all-colocated -0.0 identity.
        let one = PlacementBatch::from_placements(&candidates[..1]);
        assert_eq!(g.cost_batch(&one)[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn cost_batch_chunked_is_thread_invariant() {
        let p = problem();
        let g = p.graph();
        let batch = PlacementBatch::from_placements(&[
            Placement::new(vec![0, 1, 0, 1], 2),
            Placement::new(vec![1, 1, 0, 0], 2),
        ]);
        let serial = g.cost_batch(&batch);
        for threads in [1, 2, 3, 8] {
            let chunked = g.cost_batch_chunked(&batch, threads);
            for c in 0..batch.width() {
                // Small instance: one edge chunk, so the chunked walk even
                // matches the serial batch bit for bit.
                assert_eq!(chunked[c].to_bits(), serial[c].to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn move_delta_batch_bit_equals_per_target_deltas() {
        let p = problem();
        let g = p.graph();
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        let targets = [0usize, 1];
        for i in 0..4u32 {
            let deltas = g.move_delta_batch(&pl, ObjectId(i), &targets);
            for (t, &k) in targets.iter().enumerate() {
                assert_eq!(
                    deltas[t].to_bits(),
                    g.move_delta(&pl, ObjectId(i), k).to_bits(),
                    "obj {i} -> node {k}"
                );
            }
        }
        // All targets == src short-circuits to exact zeros.
        let src = pl.node_of(ObjectId(0));
        assert_eq!(g.move_delta_batch(&pl, ObjectId(0), &[src, src]), vec![0.0, 0.0]);
    }

    #[test]
    fn empty_batch_scores_nothing() {
        let p = problem();
        let g = p.graph();
        let batch = PlacementBatch::new(p.num_objects(), 2);
        assert!(batch.is_empty());
        assert!(g.cost_batch(&batch).is_empty());
        assert!(g.cost_batch_chunked(&batch, 4).is_empty());
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        assert!(g.move_delta_batch(&pl, ObjectId(0), &[]).is_empty());
    }

    #[test]
    fn batch_round_trips_placements() {
        let pl = Placement::new(vec![1, 0, 1, 0], 2);
        let mut batch = PlacementBatch::new(4, 2);
        batch.push(&pl);
        assert_eq!(batch.num_objects(), 4);
        assert_eq!(batch.num_nodes(), 2);
        assert_eq!(batch.column(0), pl.as_slice());
        assert_eq!(batch.placement(0), pl);
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = CorrelationGraph::build(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(ObjectId(2)), 0);
        assert_eq!(g.weighted_degree(ObjectId(0)), 0.0);
        let pl = Placement::new(vec![0, 1, 0], 2);
        assert_eq!(g.cost(&pl), 0.0);
        assert_eq!(g.cost_chunked(&pl, 4), 0.0);
    }

    #[test]
    fn too_many_objects_error_before_allocating() {
        // The guard fires before any `num_objects`-sized allocation, so an
        // absurd object count is a cheap typed error, not an OOM or a
        // wrapped u32 offset.
        let err = CorrelationGraph::try_build(u32::MAX as usize + 1, &[]).unwrap_err();
        assert!(matches!(
            err,
            ProblemError::GraphTooLarge {
                objects,
                pairs: 0,
            } if objects == u32::MAX as usize + 1
        ));
        let msg = err.to_string();
        assert!(msg.contains("too large"), "unhelpful message: {msg}");
    }

    #[test]
    fn too_many_pairs_error_is_typed() {
        // 2^31 pairs cannot be materialised in a test, but the guard is a
        // pure function of the counts — pin the exact boundary: u32::MAX/2
        // pairs (2·m = u32::MAX - 1 half-edges) is the last valid count.
        assert!(check_csr_bounds(10, (u32::MAX / 2) as usize).is_ok());
        assert!(matches!(
            check_csr_bounds(10, (u32::MAX / 2) as usize + 1),
            Err(ProblemError::GraphTooLarge { .. })
        ));
        assert!(check_csr_bounds(u32::MAX as usize, 0).is_ok());
    }
}
