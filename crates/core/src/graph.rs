//! Canonical sparse correlation graph: CSR adjacency over the pair list.
//!
//! The CCA objective `Σ_{f(i)≠f(j)} r(i,j)·w(i,j)` is a sparse graph
//! quantity, yet historically every layer re-derived it by scanning the
//! flat [`crate::CcaProblem::pairs`] list end-to-end — O(|E|) per cost
//! query and per candidate move. [`CorrelationGraph`] is the one shared
//! adjacency view, built once inside `CcaProblem::build` (and rebuilt by
//! `restrict_to` / `prune_pairs`), that every solve layer walks instead:
//!
//! * **Edge list in storage order.** [`EdgeId`] `e` maps back to
//!   `problem.pairs()[e]`; the edge weight `r·w` is precomputed once with
//!   the same multiplication the `Pair::weight` call sites performed, so
//!   every sum over edges reproduces the historic pair-scan **bit for
//!   bit**. The pair list is *never* re-sorted here: `restrict_to` yields
//!   pairs in keep-list order and `prune_pairs` leaves them weight-sorted,
//!   and both orders are load-bearing (f64 summation order, LP column
//!   order). See DESIGN.md §9 for the full iteration-order contract.
//! * **CSR rows in pair-scan order.** Row `i` lists the neighbours of `i`
//!   in the order a single scan of the pair list discovers them — exactly
//!   the push order of the per-module `adjacency()` vectors this replaces
//!   — so O(deg) move deltas accumulate in the historic order too.
//! * **Precomputed orderings.** [`CorrelationGraph::edges_by_correlation`]
//!   (greedy §4.1) and [`CorrelationGraph::edges_by_weight`] (importance
//!   ranking §4.2, audit) are total orders (the `(a, b)` tie-break is
//!   unique per edge), so they equal what a per-call `sort_unstable` of
//!   pair indices produced, for any starting permutation.
//!
//! [`IncrementalCost`] layers an O(deg)-per-move cost accumulator on top,
//! with the invariant that deltas match a full recompute difference (the
//! `graph_properties` suite pins this exactly, not within an epsilon).

use crate::placement::Placement;
use crate::problem::{ObjectId, Pair};

/// Identifier of an edge: the index of its [`Pair`] in
/// [`crate::CcaProblem::pairs`] — this back-map is a stable, documented
/// contract (LP `z`-columns and cut rows are keyed by it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index form of the identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One edge of the correlation graph: a pair plus its precomputed
/// objective weight `r·w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The edge's id (index into the problem's pair list).
    pub id: EdgeId,
    /// Smaller-id endpoint.
    pub a: ObjectId,
    /// Larger-id endpoint.
    pub b: ObjectId,
    /// Precomputed objective weight `r(a,b)·w(a,b)`.
    pub weight: f64,
}

/// CSR (compressed-sparse-row) adjacency view of a problem's pair list.
///
/// Rows cover every object; row `i` holds `(neighbour, weight, edge)`
/// entries in pair-scan order. The edge arrays are structure-of-arrays in
/// [`EdgeId`] order, i.e. pair-storage order.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationGraph {
    num_objects: usize,
    // Edge list (EdgeId order == pair storage order).
    edge_a: Vec<ObjectId>,
    edge_b: Vec<ObjectId>,
    edge_weight: Vec<f64>,
    // CSR rows (per-row entries in pair-scan order).
    offsets: Vec<u32>,
    nbr_ids: Vec<ObjectId>,
    nbr_weights: Vec<f64>,
    nbr_edges: Vec<EdgeId>,
    // Σ of row weights, accumulated in row order.
    weighted_degree: Vec<f64>,
    // Total orders over EdgeId (unique (a, b) tie-break).
    by_correlation: Vec<EdgeId>,
    by_weight: Vec<EdgeId>,
}

/// Rows per fixed chunk of [`CorrelationGraph::cost_chunked`]. Chunk
/// boundaries depend only on the object count — never on the thread count
/// — so the chunked sum is invariant across `threads`.
const COST_CHUNK_ROWS: usize = 256;

impl CorrelationGraph {
    /// Builds the CSR view over `pairs` for `num_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` (the builder
    /// validates ids before this runs).
    #[must_use]
    pub fn build(num_objects: usize, pairs: &[Pair]) -> CorrelationGraph {
        let m = pairs.len();
        let mut edge_a = Vec::with_capacity(m);
        let mut edge_b = Vec::with_capacity(m);
        let mut edge_weight = Vec::with_capacity(m);
        let mut degree = vec![0u32; num_objects];
        for pair in pairs {
            assert!(
                pair.a.index() < num_objects && pair.b.index() < num_objects,
                "pair ({}, {}) out of range for {num_objects} objects",
                pair.a,
                pair.b
            );
            edge_a.push(pair.a);
            edge_b.push(pair.b);
            edge_weight.push(pair.weight());
            degree[pair.a.index()] += 1;
            degree[pair.b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_objects + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        // Fill rows by a single scan of the pair list, appending each edge
        // to both endpoint rows — the exact push order of the historic
        // per-module `adjacency()` vectors.
        let mut cursor: Vec<u32> = offsets[..num_objects].to_vec();
        let mut nbr_ids = vec![ObjectId(0); 2 * m];
        let mut nbr_weights = vec![0.0f64; 2 * m];
        let mut nbr_edges = vec![EdgeId(0); 2 * m];
        for e in 0..m {
            let (a, b, w) = (edge_a[e], edge_b[e], edge_weight[e]);
            let slot = cursor[a.index()] as usize;
            nbr_ids[slot] = b;
            nbr_weights[slot] = w;
            nbr_edges[slot] = EdgeId(e as u32);
            cursor[a.index()] += 1;
            let slot = cursor[b.index()] as usize;
            nbr_ids[slot] = a;
            nbr_weights[slot] = w;
            nbr_edges[slot] = EdgeId(e as u32);
            cursor[b.index()] += 1;
        }
        // Weighted degree accumulates in row order (the order the exact
        // solver's incident-weight sums used).
        let weighted_degree = (0..num_objects)
            .map(|i| {
                let (s, t) = (offsets[i] as usize, offsets[i + 1] as usize);
                nbr_weights[s..t].iter().sum()
            })
            .collect();
        // Descending correlation, ties by (a, b) — greedy §4.1 order.
        let mut by_correlation: Vec<EdgeId> = (0..m as u32).map(EdgeId).collect();
        by_correlation.sort_unstable_by(|&x, &y| {
            let (px, py) = (&pairs[x.index()], &pairs[y.index()]);
            py.correlation
                .partial_cmp(&px.correlation)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        // Descending weight, ties by (a, b) — importance-ranking §4.2 and
        // audit order.
        let mut by_weight: Vec<EdgeId> = (0..m as u32).map(EdgeId).collect();
        by_weight.sort_unstable_by(|&x, &y| {
            edge_weight[y.index()]
                .partial_cmp(&edge_weight[x.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((edge_a[x.index()], edge_b[x.index()]).cmp(&(edge_a[y.index()], edge_b[y.index()])))
        });
        CorrelationGraph {
            num_objects,
            edge_a,
            edge_b,
            edge_weight,
            offsets,
            nbr_ids,
            nbr_weights,
            nbr_edges,
            weighted_degree,
            by_correlation,
            by_weight,
        }
    }

    /// Number of objects (CSR rows).
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of edges `|E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edge_weight.len()
    }

    /// Degree of object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: ObjectId) -> usize {
        (self.offsets[i.index() + 1] - self.offsets[i.index()]) as usize
    }

    /// Sum of the edge weights incident to `i`, accumulated in row order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn weighted_degree(&self, i: ObjectId) -> f64 {
        self.weighted_degree[i.index()]
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> Edge {
        Edge {
            id: e,
            a: self.edge_a[e.index()],
            b: self.edge_b[e.index()],
            weight: self.edge_weight[e.index()],
        }
    }

    /// Precomputed weight `r·w` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edge_weight[e.index()]
    }

    /// All edges in [`EdgeId`] order (pair storage order) — the one edge
    /// enumeration LP columns, seed cuts, and cost sums share.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.edge_weight.len()).map(move |e| self.edge(EdgeId(e as u32)))
    }

    /// Neighbours of `i` as `(neighbour, weight)`, in pair-scan order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: ObjectId) -> impl Iterator<Item = (ObjectId, f64)> + '_ {
        let (s, t) = (
            self.offsets[i.index()] as usize,
            self.offsets[i.index() + 1] as usize,
        );
        self.nbr_ids[s..t]
            .iter()
            .copied()
            .zip(self.nbr_weights[s..t].iter().copied())
    }

    /// Neighbours of `i` as `(neighbour, weight, edge)`, in pair-scan
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbor_edges(
        &self,
        i: ObjectId,
    ) -> impl Iterator<Item = (ObjectId, f64, EdgeId)> + '_ {
        let (s, t) = (
            self.offsets[i.index()] as usize,
            self.offsets[i.index() + 1] as usize,
        );
        self.nbr_ids[s..t]
            .iter()
            .copied()
            .zip(self.nbr_weights[s..t].iter().copied())
            .zip(self.nbr_edges[s..t].iter().copied())
            .map(|((n, w), e)| (n, w, e))
    }

    /// Edge ids in descending correlation, ties by `(a, b)` — the order
    /// greedy placement (§4.1) visits pairs.
    #[must_use]
    pub fn edges_by_correlation(&self) -> &[EdgeId] {
        &self.by_correlation
    }

    /// Edge ids in descending objective weight `r·w`, ties by `(a, b)` —
    /// the order importance ranking (§4.2) and the audit's heaviest-split
    /// list use.
    #[must_use]
    pub fn edges_by_weight(&self) -> &[EdgeId] {
        &self.by_weight
    }

    /// The CCA objective `Σ_{f(a)≠f(b)} r·w` of `placement`, summed over
    /// edges in [`EdgeId`] order — bit-identical to the historic pair-list
    /// scan.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost(&self, placement: &Placement) -> f64 {
        // The same `filter · map · sum` fold as the historic pair-list
        // scan (including `sum`'s `-0.0` identity for the all-colocated
        // case), over the SoA edge columns; zipped iteration keeps the
        // loop free of bounds checks.
        self.edge_a
            .iter()
            .zip(&self.edge_b)
            .zip(&self.edge_weight)
            .filter(|&((&a, &b), _)| placement.node_of(a) != placement.node_of(b))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Communication-cost change of moving `i` from its current node to
    /// `target`: `Σ_{j∈adj(i)} w_ij·([f(j)=src] − [f(j)=target])`,
    /// accumulated in row order (negative is an improvement; 0 when
    /// `target` is `i`'s current node).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn move_delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        let src = placement.node_of(i);
        if src == target {
            return 0.0;
        }
        let mut delta = 0.0;
        for (other, w) in self.neighbors(i) {
            let on = placement.node_of(other);
            if on == src {
                delta += w;
            } else if on == target {
                delta -= w;
            }
        }
        delta
    }

    /// [`CorrelationGraph::cost`] evaluated in parallel over fixed chunks
    /// of CSR row ranges (each edge counted at its smaller endpoint), with
    /// per-chunk partials reduced in chunk order.
    ///
    /// The result is identical for every `threads` value (chunk boundaries
    /// depend only on the object count) but is a *different associativity*
    /// than the serial [`CorrelationGraph::cost`], so the two may differ in
    /// the last ulps; solver-reported costs therefore stay on the serial
    /// walk. Use this for bulk re-evaluation where the thread-invariance
    /// contract suffices.
    ///
    /// # Panics
    ///
    /// Panics if the placement covers fewer objects than the graph.
    #[must_use]
    pub fn cost_chunked(&self, placement: &Placement, threads: usize) -> f64 {
        let chunks = self.num_objects.div_ceil(COST_CHUNK_ROWS).max(1);
        let partials = cca_par::par_map_indexed(threads, chunks, |c| {
            let start = c * COST_CHUNK_ROWS;
            let end = (start + COST_CHUNK_ROWS).min(self.num_objects);
            let mut sum = -0.0;
            for i in start..end {
                let obj = ObjectId(i as u32);
                let on = placement.node_of(obj);
                for (other, w) in self.neighbors(obj) {
                    // Count each edge once, at its smaller endpoint.
                    if other.index() > i && placement.node_of(other) != on {
                        sum += w;
                    }
                }
            }
            sum
        });
        partials.into_iter().sum()
    }
}

/// O(deg)-per-move communication-cost accumulator over a
/// [`CorrelationGraph`].
///
/// Seeded with a full (bit-identical) cost walk, then kept current by
/// adding each applied move's [`CorrelationGraph::move_delta`]. The
/// `graph_properties` suite pins `delta == recompute difference` exactly
/// (the delta and the recompute cancel/accumulate the same weights in the
/// same row order), and `cost()` tracks a fresh recompute exactly on
/// dyadic-weight instances across arbitrary move sequences.
#[derive(Debug, Clone)]
pub struct IncrementalCost<'g> {
    graph: &'g CorrelationGraph,
    cost: f64,
}

impl<'g> IncrementalCost<'g> {
    /// Seeds the accumulator with the full cost of `placement`.
    #[must_use]
    pub fn new(graph: &'g CorrelationGraph, placement: &Placement) -> Self {
        IncrementalCost {
            graph,
            cost: graph.cost(placement),
        }
    }

    /// The tracked communication cost.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Cost change of moving `i` to `target` under `placement`, without
    /// applying it.
    #[must_use]
    pub fn delta(&self, placement: &Placement, i: ObjectId, target: usize) -> f64 {
        self.graph.move_delta(placement, i, target)
    }

    /// Applies the move `i → target` to `placement` and folds its delta
    /// into the tracked cost. Returns the delta.
    pub fn apply(&mut self, placement: &mut Placement, i: ObjectId, target: usize) -> f64 {
        let delta = self.graph.move_delta(placement, i, target);
        placement.assign(i, target);
        self.cost += delta;
        delta
    }

    /// Re-seeds the tracked cost from a full walk of `placement` (e.g.
    /// after bulk mutations applied outside this accumulator).
    pub fn resync(&mut self, placement: &Placement) {
        self.cost = self.graph.cost(placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CcaProblem;

    fn problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 10.0).unwrap(); // weight 9
        b.add_pair(o[2], o[3], 0.5, 10.0).unwrap(); // weight 5
        b.add_pair(o[0], o[2], 0.1, 10.0).unwrap(); // weight 1
        b.uniform_capacities(2, 25).build().unwrap()
    }

    #[test]
    fn edge_ids_back_map_to_pairs() {
        let p = problem();
        let g = p.graph();
        assert_eq!(g.num_edges(), p.pairs().len());
        assert_eq!(g.num_objects(), p.num_objects());
        for (e, pair) in p.pairs().iter().enumerate() {
            let edge = g.edge(EdgeId(e as u32));
            assert_eq!((edge.a, edge.b), (pair.a, pair.b));
            assert_eq!(edge.weight.to_bits(), pair.weight().to_bits());
        }
    }

    #[test]
    fn csr_rows_follow_pair_scan_order() {
        let p = problem();
        let g = p.graph();
        // Row 0 discovers (0,1) then (0,2) in pair-list order.
        let row: Vec<_> = g.neighbors(ObjectId(0)).collect();
        assert_eq!(row, vec![(ObjectId(1), 9.0), (ObjectId(2), 1.0)]);
        assert_eq!(g.degree(ObjectId(0)), 2);
        assert_eq!(g.degree(ObjectId(3)), 1);
        assert_eq!(g.weighted_degree(ObjectId(0)), 10.0);
        // Builder sorts pairs by (a, b): (0,1), (0,2), (2,3).
        let with_edges: Vec<_> = g.neighbor_edges(ObjectId(2)).collect();
        assert_eq!(
            with_edges,
            vec![
                (ObjectId(0), 1.0, EdgeId(1)),
                (ObjectId(3), 5.0, EdgeId(2)),
            ]
        );
    }

    #[test]
    fn cost_matches_pair_scan_bitwise() {
        let p = problem();
        let g = p.graph();
        for assignment in [
            vec![0u32, 0, 0, 0],
            vec![0, 1, 0, 1],
            vec![0, 0, 1, 1],
            vec![1, 0, 0, 1],
        ] {
            let pl = Placement::new(assignment, 2);
            let scan: f64 = p
                .pairs()
                .iter()
                .filter(|pr| pl.node_of(pr.a) != pl.node_of(pr.b))
                .map(|pr| pr.weight())
                .sum();
            assert_eq!(g.cost(&pl).to_bits(), scan.to_bits());
        }
    }

    #[test]
    fn precomputed_orders_match_fresh_sorts() {
        let p = problem();
        let g = p.graph();
        let mut by_corr: Vec<usize> = (0..p.pairs().len()).collect();
        by_corr.sort_unstable_by(|&x, &y| {
            let (px, py) = (&p.pairs()[x], &p.pairs()[y]);
            py.correlation
                .partial_cmp(&px.correlation)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        let got: Vec<usize> = g.edges_by_correlation().iter().map(|e| e.index()).collect();
        assert_eq!(got, by_corr);
        let mut by_w: Vec<usize> = (0..p.pairs().len()).collect();
        by_w.sort_unstable_by(|&x, &y| {
            let (px, py) = (&p.pairs()[x], &p.pairs()[y]);
            py.weight()
                .partial_cmp(&px.weight())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((px.a, px.b).cmp(&(py.a, py.b)))
        });
        let got: Vec<usize> = g.edges_by_weight().iter().map(|e| e.index()).collect();
        assert_eq!(got, by_w);
    }

    #[test]
    fn move_delta_equals_recompute_difference() {
        let p = problem();
        let g = p.graph();
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        for i in 0..4u32 {
            for k in 0..2usize {
                let delta = g.move_delta(&pl, ObjectId(i), k);
                let mut moved = pl.clone();
                moved.assign(ObjectId(i), k);
                let diff = g.cost(&moved) - g.cost(&pl);
                assert_eq!(delta.to_bits(), diff.to_bits(), "obj {i} -> node {k}");
            }
        }
    }

    #[test]
    fn cost_chunked_is_thread_invariant() {
        let p = problem();
        let g = p.graph();
        let pl = Placement::new(vec![0, 1, 0, 1], 2);
        let serial = g.cost_chunked(&pl, 1);
        for threads in [2, 3, 8] {
            assert_eq!(g.cost_chunked(&pl, threads).to_bits(), serial.to_bits());
        }
        // Small instance: one chunk, so it even matches the serial walk.
        assert_eq!(serial.to_bits(), g.cost(&pl).to_bits());
    }

    #[test]
    fn incremental_cost_tracks_moves() {
        let p = problem();
        let g = p.graph();
        let mut pl = Placement::new(vec![0, 0, 0, 0], 2);
        let mut inc = IncrementalCost::new(g, &pl);
        assert_eq!(inc.cost(), 0.0);
        let d = inc.apply(&mut pl, ObjectId(1), 1);
        assert_eq!(d, 9.0);
        assert_eq!(inc.cost(), 9.0);
        assert_eq!(pl.node_of(ObjectId(1)), 1);
        inc.apply(&mut pl, ObjectId(0), 1);
        // (0,1) rejoined (−9), (0,2) split (+1).
        assert_eq!(inc.cost(), 1.0);
        assert_eq!(inc.cost().to_bits(), g.cost(&pl).to_bits());
        inc.resync(&pl);
        assert_eq!(inc.cost(), 1.0);
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = CorrelationGraph::build(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(ObjectId(2)), 0);
        assert_eq!(g.weighted_degree(ObjectId(0)), 0.0);
        let pl = Placement::new(vec![0, 1, 0], 2);
        assert_eq!(g.cost(&pl), 0.0);
        assert_eq!(g.cost_chunked(&pl, 4), 0.0);
    }
}
