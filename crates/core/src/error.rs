//! Unified error type for the fallible core placement APIs.

use std::fmt;

/// Error from the core placement pipeline: LP relaxation, randomized
/// rounding, and the high-level [`crate::place`] entry points.
///
/// Invalid *user-supplied* inputs (a non-stochastic fractional placement,
/// mismatched dimensions, a zero repetition count) are reported as values
/// rather than panics, so callers embedding the library can surface them;
/// internal invariant violations still panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CcaError {
    /// The LP relaxation failed (infeasible capacities, iteration limit,
    /// numerical trouble).
    Lp(cca_lp::LpError),
    /// A fractional placement was not (approximately) row-stochastic; call
    /// [`crate::FractionalPlacement::normalise`] first.
    NotStochastic,
    /// Two inputs disagree on a dimension (object or node count).
    DimensionMismatch {
        /// Which dimension disagrees (e.g. `"object count"`).
        what: &'static str,
        /// The value the problem implies.
        expected: usize,
        /// The value the other input carries.
        actual: usize,
    },
    /// Best-of rounding was asked for zero repetitions.
    NoRepetitions,
    /// Randomized rounding exhausted its step cap — the fractional input
    /// passed the stochasticity check but still failed to place every
    /// object (astronomically unlikely for valid rows).
    RoundingDiverged {
        /// Steps performed before giving up.
        steps: usize,
    },
    /// The problem instance itself is invalid (zero-size object, all-zero
    /// capacities, bad pair weights, ...).
    Problem(crate::problem::ProblemError),
}

impl fmt::Display for CcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcaError::Lp(e) => write!(f, "LP relaxation failed: {e}"),
            CcaError::NotStochastic => f.write_str(
                "fractional placement must be row-stochastic; call normalise() first",
            ),
            CcaError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} mismatch: expected {expected}, got {actual}"),
            CcaError::NoRepetitions => f.write_str("need at least one rounding repetition"),
            CcaError::RoundingDiverged { steps } => {
                write!(f, "rounding failed to converge after {steps} steps")
            }
            CcaError::Problem(e) => write!(f, "invalid problem: {e}"),
        }
    }
}

impl std::error::Error for CcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcaError::Lp(e) => Some(e),
            CcaError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cca_lp::LpError> for CcaError {
    fn from(e: cca_lp::LpError) -> Self {
        CcaError::Lp(e)
    }
}

impl From<crate::problem::ProblemError> for CcaError {
    fn from(e: crate::problem::ProblemError) -> Self {
        CcaError::Problem(e)
    }
}

/// Historical name of [`CcaError`] at the [`crate::place`] entry points.
pub type PlaceError = CcaError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CcaError::Lp(cca_lp::LpError::Infeasible)
            .to_string()
            .contains("infeasible"));
        assert!(CcaError::NotStochastic.to_string().contains("row-stochastic"));
        let e = CcaError::DimensionMismatch {
            what: "object count",
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "object count mismatch: expected 3, got 5");
        assert!(CcaError::NoRepetitions.to_string().contains("repetition"));
        assert!(CcaError::RoundingDiverged { steps: 9 }.to_string().contains("9"));
    }

    #[test]
    fn lp_errors_convert_and_chain() {
        let e: CcaError = cca_lp::LpError::Unbounded.into();
        assert_eq!(e, CcaError::Lp(cca_lp::LpError::Unbounded));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CcaError::NoRepetitions).is_none());
    }

    #[test]
    fn problem_errors_convert_and_chain() {
        let e: CcaError = crate::problem::ProblemError::ZeroCapacity.into();
        assert!(e.to_string().contains("zero capacity"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
