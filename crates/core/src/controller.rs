//! Online drift-driven re-optimization controller with cost/benefit-gated
//! migration and mid-run fault recovery (DESIGN.md §12).
//!
//! The paper solves placement once for a fixed correlation matrix; this
//! module closes the loop for a system that serves shifting traffic for
//! weeks. A [`Controller`] owns the live placement and, epoch by epoch:
//!
//! 1. **Estimates.** Ingests per-epoch pair-observation counts
//!    ([`EpochObservation`]) and maintains an EWMA estimate of every base
//!    edge's correlation, indexed by the canonical CSR
//!    [`EdgeId`](crate::graph::EdgeId) order. Estimates are quantized to a
//!    dyadic 2⁻²⁰ grid so every shard-parallel reduction over the
//!    estimated weights is exact — controller runs are byte-identical for
//!    any `threads`/`shards` configuration (DESIGN.md §11).
//! 2. **Detects drift per scope.** Objects are range-partitioned into
//!    scopes (an edge belongs to its smaller endpoint's scope, mirroring
//!    [`ShardedGraph`](crate::shard::ShardedGraph) ownership); a scope's
//!    drift is the relative L1 gap between estimated and placed-against
//!    edge weights.
//! 3. **Re-solves scoped.** The worst drifting scope is re-solved with
//!    [`solve_resilient`] on a capacity-adjusted
//!    [`restrict_to`](CcaProblem::restrict_to) subproblem; the candidate
//!    and the incumbent are scored in **one**
//!    [`eval_cost_batch`](CcaProblem::eval_cost_batch) walk.
//! 4. **Gates the migration.** A candidate is applied via [`reconcile`]
//!    only if its projected savings amortize
//!    [`migration_bytes`] within a configurable horizon, counting the
//!    per-scope accumulated loss already incurred (the SkyPie
//!    `MigrationOptimizer` pattern: rejected candidates accrue their gap
//!    into per-scope loss state until a migration pays for itself), and
//!    only if the candidate survives a [`survive_node_loss`] probe
//!    (`rejected_not_worthwhile` / `rejected_not_robust` accounting).
//! 5. **Survives faults.** Seeded [`FaultPlan`] node loss triggers
//!    repair-then-continue with bounded escalating-slack retries, and
//!    degraded scoped solves back off exponentially (bounded) instead of
//!    spinning — the loop never crashes and never silently stalls.
//!
//! The run is summarized by a [`ControllerReport`] whose counters satisfy
//! `evaluated == migrations + rejected_not_worthwhile +
//! rejected_not_robust` by construction, serialized by
//! [`crate::persist::format_controller_report`].

use crate::graph::PlacementBatch;
use crate::migrate::{
    migration_bytes, reconcile, MigrateOptions, MigrationSchedule, MigrationSlice,
};
use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use crate::replica::DomainTree;
use crate::resilience::{
    solve_resilient, survive_node_loss, FaultPlan, ResilienceOptions, Rung, SolveBudget,
};
use cca_rand::rngs::StdRng;
use cca_rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Denominator of the dyadic estimate grid: correlation estimates are
/// multiples of 2⁻²⁰. With integral communication costs this keeps every
/// per-edge weight `r·w` and (within magnitude bound 2⁵³ on `Σ k·w`)
/// every partial sum exactly representable, so the sharded reductions of
/// DESIGN.md §11 reproduce the flat fold bit for bit.
const EST_GRID: f64 = (1u64 << 20) as f64;

/// Snaps a correlation estimate onto the dyadic 2⁻²⁰ grid.
#[must_use]
pub fn quantize_estimate(r: f64) -> f64 {
    (r * EST_GRID).round() / EST_GRID
}

/// Tuning knobs of the online controller. `Default` is calibrated for the
/// pipeline presets: evaluate every 16 epochs, amortize migrations over a
/// 128-epoch horizon, greedy scoped re-solves (the LP rungs stay available
/// via [`ControllerConfig::start`]).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// EWMA smoothing factor in `(0, 1]`; the estimate update is
    /// `est ← quantize((1−α)·est + α·observed)`. Keep it dyadic (the
    /// default is ¼) so the un-quantized intermediate stays exact.
    pub ewma_alpha: f64,
    /// Gate evaluation cadence: drift is checked every this many epochs.
    pub evaluate_every: u64,
    /// Minimum relative L1 drift (`Σ|est−placed| / Σ placed`) a scope
    /// must show before a scoped re-solve is attempted.
    pub drift_threshold: f64,
    /// Epochs a migration may take to amortize: accepted when
    /// `accumulated_loss + horizon·per_epoch_saving > migration_bytes`.
    pub horizon_epochs: u64,
    /// Number of contiguous object-range scopes drift is tracked per.
    pub scope_count: usize,
    /// At most this many objects (by incident estimated weight) enter a
    /// scoped re-solve.
    pub scope_top: usize,
    /// Capacity slack for repair, robustness probes and migration.
    pub capacity_slack: f64,
    /// Worker threads for solves and batched scoring (results are
    /// identical for any value).
    pub threads: usize,
    /// Shard count for estimated-problem evaluation; `0` keeps the flat
    /// graph (results are identical for any value — estimates are dyadic).
    pub shards: usize,
    /// Budget applied to every scoped resilient solve. A wall-clock
    /// deadline here is the **only** nondeterministic knob in the loop.
    pub budget: SolveBudget,
    /// Best rung a scoped re-solve may try.
    pub start: Rung,
    /// Worst rung a scoped re-solve may select.
    pub floor: Rung,
    /// Degraded scoped solves for a scope are retried (with exponential
    /// epoch backoff) at most this many times before the degraded
    /// candidate proceeds to the gates anyway.
    pub max_solve_retries: u32,
    /// Base epoch backoff after a degraded scoped solve; doubles per
    /// consecutive degradation (capped at 2⁶×).
    pub backoff_epochs: u64,
    /// Escalating-slack repair attempts after a node loss before the
    /// loss is recorded as unrecovered (the loop still continues).
    pub max_repair_retries: u32,
    /// When set, accepted migrations are not applied in one bulk
    /// [`reconcile`]; they are staged as a [`MigrationSchedule`] and the
    /// driver ships at most this many bytes per epoch via
    /// [`Controller::advance_migration`] (the live-runtime pacing
    /// contract, DESIGN.md §14). `None` (the default) keeps the
    /// immediate bulk apply.
    pub migration_budget_per_epoch: Option<u64>,
    /// When set, the robustness gate probes the loss of the
    /// heaviest-loaded surviving **leaf domain** of this tree instead of
    /// the heaviest single node (DESIGN.md §15). A flat tree — every
    /// node its own domain — selects the same probe node as `None`, so
    /// the default behaviour is unchanged.
    pub domains: Option<DomainTree>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            ewma_alpha: 0.25,
            evaluate_every: 16,
            drift_threshold: 0.05,
            horizon_epochs: 128,
            scope_count: 4,
            scope_top: 96,
            capacity_slack: 1.05,
            threads: 1,
            shards: 0,
            budget: SolveBudget::default(),
            start: Rung::Greedy,
            floor: Rung::Hash,
            max_solve_retries: 2,
            backoff_epochs: 16,
            max_repair_retries: 3,
            migration_budget_per_epoch: None,
            domains: None,
        }
    }
}

/// One epoch's worth of observed pair traffic: co-occurrence counts per
/// object pair out of `queries` queries. Pairs absent from the base
/// problem's edge set are ignored (the controller tracks drift of known
/// correlations; discovering new edges is a model-rebuild concern).
#[derive(Debug, Clone, Default)]
pub struct EpochObservation {
    /// `(a, b, co-occurrence count)` triples; order is irrelevant and
    /// duplicates accumulate.
    pub pair_counts: Vec<(ObjectId, ObjectId, u64)>,
    /// Queries observed this epoch (the count denominator).
    pub queries: u64,
}

/// What one [`Controller::step`] decided.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochOutcome {
    /// Not an evaluation epoch (or every scope is backing off).
    Idle,
    /// Evaluated cadence hit, but no scope drifted past the threshold.
    NoDrift {
        /// Scope with the largest drift.
        scope: usize,
        /// Its relative L1 drift.
        drift: f64,
    },
    /// The scoped re-solve degraded below the requested rung; the scope
    /// backs off and will be retried.
    SolveDegraded {
        /// The scope whose solve degraded.
        scope: usize,
        /// First epoch at which the scope becomes eligible again.
        retry_at: u64,
    },
    /// Projected savings do not amortize the migration within the horizon.
    RejectedNotWorthwhile {
        /// The evaluated scope.
        scope: usize,
        /// `accumulated_loss + horizon·per_epoch_saving` (bytes).
        projected: f64,
        /// Bytes the migration would move.
        migration_bytes: u64,
        /// The scope's accumulated loss after accrual.
        accumulated_loss: f64,
    },
    /// The candidate failed the feasibility / node-loss-survival probe.
    RejectedNotRobust {
        /// The evaluated scope.
        scope: usize,
    },
    /// The migration was applied.
    Migrated {
        /// The migrated scope.
        scope: usize,
        /// Objects moved by [`reconcile`].
        moves: u64,
        /// Bytes moved by [`reconcile`].
        bytes: u64,
        /// Modeled cost gap per query between incumbent and candidate.
        saving_per_query: f64,
    },
    /// The migration was accepted and staged as a byte-budgeted
    /// [`MigrationSchedule`]; the driver ships it slice by slice through
    /// [`Controller::advance_migration`]. Only emitted when
    /// [`ControllerConfig::migration_budget_per_epoch`] is set.
    MigrationScheduled {
        /// The migrating scope.
        scope: usize,
        /// Bytes the full migration will ship.
        total_bytes: u64,
        /// Modeled cost gap per query between incumbent and candidate.
        saving_per_query: f64,
    },
}

/// Outcome of a [`Controller::inject_fault`] node-loss event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecovery {
    /// Node indices that lost their capacity, ascending.
    pub dropped_nodes: Vec<usize>,
    /// Escalating-slack repair attempts consumed (0 = first try held).
    pub retries: u32,
    /// Objects moved while repairing.
    pub moves: u64,
    /// Bytes moved while repairing.
    pub bytes: u64,
    /// Whether the repaired placement fits the surviving capacities
    /// (under the configured slack). `false` never stops the loop.
    pub recovered: bool,
}

/// Per-scope controller state: the SkyPie accumulated-loss pattern plus
/// degraded-solve backoff.
#[derive(Debug, Clone, Default)]
struct ScopeState {
    /// Bytes of forgone savings accrued while migrations were rejected.
    /// Monotone between accepted migrations; reset to zero on acceptance.
    accumulated_loss: f64,
    /// Epoch of the last gate evaluation (accrual anchor).
    last_eval: u64,
    /// First epoch at which a degraded scope may be re-evaluated.
    backoff_until: u64,
    /// Consecutive degraded solves (drives exponential backoff).
    consecutive_degraded: u32,
}

/// End-of-run account of a controller loop. Produced by
/// [`Controller::report`]; serialized by
/// [`crate::persist::format_controller_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerReport {
    /// Epochs stepped.
    pub epochs: u64,
    /// Total queries observed.
    pub queries: u64,
    /// Gate evaluations that reached a verdict
    /// (`== migrations + rejected_not_worthwhile + rejected_not_robust`).
    pub evaluated: u64,
    /// Accepted migrations.
    pub migrations: u64,
    /// Objects moved by accepted migrations.
    pub objects_moved: u64,
    /// Bytes moved by accepted migrations.
    pub migrated_bytes: u64,
    /// Candidates whose projected savings missed the horizon gate.
    pub rejected_not_worthwhile: u64,
    /// Candidates that failed the feasibility / node-loss probe.
    pub rejected_not_robust: u64,
    /// Scoped solves that selected a rung below the requested start.
    pub degradations: u64,
    /// Degraded solves that were backed off and retried.
    pub solve_retries: u64,
    /// Node-loss repair events performed.
    pub repairs: u64,
    /// Escalating-slack retries consumed across repairs.
    pub repair_retries: u64,
    /// Objects moved by repairs.
    pub repair_moves: u64,
    /// Bytes moved by repairs.
    pub repair_bytes: u64,
    /// Nodes lost to injected faults.
    pub node_losses: u64,
    /// Losses whose repair never regained feasibility.
    pub unrecovered_losses: u64,
    /// Outstanding accumulated loss summed over scopes (bytes).
    pub accumulated_loss: f64,
    /// Final placement cost under the current estimated weights.
    pub final_cost: f64,
    /// Whether the final placement fits the surviving capacities under
    /// the configured slack.
    pub final_feasible: bool,
}

impl ControllerReport {
    /// The gate-accounting invariant: every evaluation reached exactly
    /// one verdict.
    #[must_use]
    pub fn counters_consistent(&self) -> bool {
        self.evaluated
            == self.migrations + self.rejected_not_worthwhile + self.rejected_not_robust
    }

    /// Whether the run deviated from the ideal path (degraded solves or
    /// node losses) — maps to CLI exit code 2.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degradations > 0 || self.node_losses > 0
    }

    /// Multi-line human summary (the machine format lives in
    /// [`crate::persist::format_controller_report`]).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "epochs: {} ({} queries)\n",
            self.epochs, self.queries
        ));
        s.push_str(&format!(
            "evaluated: {} -> migrated {} / not worthwhile {} / not robust {}\n",
            self.evaluated, self.migrations, self.rejected_not_worthwhile, self.rejected_not_robust
        ));
        s.push_str(&format!(
            "moved: {} objects, {} bytes; outstanding loss {:.1} bytes\n",
            self.objects_moved, self.migrated_bytes, self.accumulated_loss
        ));
        s.push_str(&format!(
            "faults: {} node losses, {} repairs ({} retries, {} unrecovered)\n",
            self.node_losses, self.repairs, self.repair_retries, self.unrecovered_losses
        ));
        s.push_str(&format!(
            "solves: {} degraded, {} retried\n",
            self.degradations, self.solve_retries
        ));
        s.push_str(&format!(
            "final: cost {:.2}, feasible {}\n",
            self.final_cost, self.final_feasible
        ));
        s
    }
}

/// The long-running re-optimization controller. See the module docs for
/// the control loop; construct with [`Controller::new`], drive with
/// [`Controller::step`] (and [`Controller::inject_fault`] for chaos), and
/// summarize with [`Controller::report`].
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    /// The base problem: object table, sizes, names, canonical edge set
    /// and original capacities. Never cost-evaluated under sharding (its
    /// weights are not dyadic); estimates are indexed by its `EdgeId`s.
    base: CcaProblem,
    /// Surviving per-node capacities (zero once a node is lost).
    live_capacities: Vec<u64>,
    dead: Vec<bool>,
    placement: Placement,
    /// EWMA correlation estimate per base edge, on the 2⁻²⁰ grid.
    est_r: Vec<f64>,
    /// Correlation snapshot the current placement was last solved
    /// against, per base edge (drift is measured relative to this).
    placed_r: Vec<f64>,
    /// Communication cost per base edge (fixed).
    comm_cost: Vec<f64>,
    /// `(min, max)` object-index pair → base edge index.
    edge_of_pair: HashMap<(u32, u32), u32>,
    /// Scope of each object (contiguous ranges).
    scope_of: Vec<usize>,
    /// Edge indices owned by each scope (by smaller endpoint).
    scope_edges: Vec<Vec<u32>>,
    scopes: Vec<ScopeState>,
    epoch: u64,
    queries_total: u64,
    /// Scratch: per-edge observed correlation for the current epoch.
    obs_scratch: Vec<f64>,
    /// An accepted migration still being shipped slice by slice
    /// (only under `migration_budget_per_epoch`).
    pending_migration: Option<MigrationSchedule>,
    /// Schedules abandoned because a slice stalled (every pending object
    /// over budget or capacity-blocked).
    abandoned_migrations: u64,
    // Counters (see ControllerReport).
    evaluated: u64,
    migrations: u64,
    objects_moved: u64,
    migrated_bytes: u64,
    rejected_not_worthwhile: u64,
    rejected_not_robust: u64,
    degradations: u64,
    solve_retries: u64,
    repairs: u64,
    repair_retries: u64,
    repair_moves: u64,
    repair_bytes: u64,
    node_losses: u64,
    unrecovered_losses: u64,
}

impl Controller {
    /// Builds a controller over `problem` starting from `placement`.
    /// Estimates start at the problem's own (quantized) correlations with
    /// zero drift.
    ///
    /// # Panics
    ///
    /// Panics when the placement does not match the problem's dimensions
    /// or the configuration is degenerate (`ewma_alpha` outside `(0, 1]`,
    /// zero `evaluate_every`/`scope_count`/`scope_top`, slack below 1).
    #[must_use]
    pub fn new(problem: &CcaProblem, placement: Placement, config: ControllerConfig) -> Self {
        assert_eq!(placement.num_objects(), problem.num_objects());
        assert_eq!(placement.num_nodes(), problem.num_nodes());
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        assert!(config.evaluate_every >= 1, "evaluate_every must be >= 1");
        assert!(config.scope_count >= 1, "scope_count must be >= 1");
        assert!(config.scope_top >= 1, "scope_top must be >= 1");
        assert!(config.capacity_slack >= 1.0, "capacity_slack must be >= 1");

        let n = problem.num_objects();
        let scope_count = config.scope_count.min(n.max(1));
        let mut scope_of = vec![0usize; n];
        for s in 0..scope_count {
            let (start, end) = (s * n / scope_count, (s + 1) * n / scope_count);
            for o in scope_of.iter_mut().take(end).skip(start) {
                *o = s;
            }
        }

        let pairs = problem.pairs();
        let mut est_r = Vec::with_capacity(pairs.len());
        let mut comm_cost = Vec::with_capacity(pairs.len());
        let mut edge_of_pair = HashMap::with_capacity(pairs.len());
        let mut scope_edges = vec![Vec::new(); scope_count];
        for (e, p) in pairs.iter().enumerate() {
            est_r.push(quantize_estimate(p.correlation));
            comm_cost.push(p.comm_cost);
            let (a, b) = (p.a.0.min(p.b.0), p.a.0.max(p.b.0));
            edge_of_pair.insert((a, b), e as u32);
            scope_edges[scope_of[a as usize]].push(e as u32);
        }
        let placed_r = est_r.clone();
        let obs_scratch = vec![0.0; pairs.len()];

        Controller {
            live_capacities: (0..problem.num_nodes()).map(|k| problem.capacity(k)).collect(),
            dead: vec![false; problem.num_nodes()],
            base: problem.clone(),
            placement,
            est_r,
            placed_r,
            comm_cost,
            edge_of_pair,
            scope_of,
            scope_edges,
            scopes: vec![ScopeState::default(); scope_count],
            epoch: 0,
            queries_total: 0,
            obs_scratch,
            pending_migration: None,
            abandoned_migrations: 0,
            evaluated: 0,
            migrations: 0,
            objects_moved: 0,
            migrated_bytes: 0,
            rejected_not_worthwhile: 0,
            rejected_not_robust: 0,
            degradations: 0,
            solve_retries: 0,
            repairs: 0,
            repair_retries: 0,
            repair_moves: 0,
            repair_bytes: 0,
            node_losses: 0,
            unrecovered_losses: 0,
            config,
        }
    }

    /// The live placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Epochs stepped so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Surviving node count.
    #[must_use]
    pub fn alive_nodes(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Accumulated loss of one scope (bytes of forgone savings).
    ///
    /// # Panics
    ///
    /// Panics if `scope` is out of range.
    #[must_use]
    pub fn accumulated_loss(&self, scope: usize) -> f64 {
        self.scopes[scope].accumulated_loss
    }

    /// The current EWMA correlation estimate of base edge `e` (in
    /// [`EdgeId`](crate::graph::EdgeId) order).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn estimate(&self, e: usize) -> f64 {
        self.est_r[e]
    }

    /// Ingests one epoch of observations and, on the evaluation cadence,
    /// runs the drift-detect → scoped-solve → gate → migrate pipeline.
    pub fn step(&mut self, obs: &EpochObservation) -> EpochOutcome {
        self.epoch += 1;
        self.queries_total = self.queries_total.saturating_add(obs.queries);
        self.update_estimates(obs);

        if !self.epoch.is_multiple_of(self.config.evaluate_every) {
            return EpochOutcome::Idle;
        }
        if self.pending_migration.is_some() {
            // One migration in flight at a time: evaluation pauses until
            // the staged schedule drains (or is abandoned) through
            // `advance_migration`, so a half-shipped placement is never
            // measured for drift or re-solved against.
            return EpochOutcome::Idle;
        }
        let Some((scope, drift)) = self.pick_scope() else {
            return EpochOutcome::Idle; // every scope is backing off
        };
        if drift < self.config.drift_threshold {
            return EpochOutcome::NoDrift { scope, drift };
        }
        self.evaluate_scope(scope)
    }

    /// Ships one byte-budgeted slice of the staged migration (if any),
    /// mutating the live placement in place. The live runtime calls this
    /// once per epoch *before* the serving window, so the placement swap
    /// is atomic between windows and the slice's bytes are the epoch's
    /// migration traffic.
    ///
    /// Returns `None` when no migration is staged. A stalled slice
    /// (nothing movable under the budget and surviving capacities)
    /// abandons the schedule — counted by
    /// [`abandoned_migrations`](Controller::abandoned_migrations) — so
    /// the loop can never wedge on an unshippable candidate.
    pub fn advance_migration(&mut self) -> Option<MigrationSlice> {
        let mut schedule = self.pending_migration.take()?;
        let budget = self
            .config
            .migration_budget_per_epoch
            .unwrap_or(u64::MAX);
        let est = self.estimated_problem();
        let slice = schedule.advance(&est, &mut self.placement, budget);
        self.objects_moved += slice.moves;
        self.migrated_bytes += slice.bytes;
        if slice.stalled {
            self.abandoned_migrations += 1;
        } else if !slice.complete {
            self.pending_migration = Some(schedule);
        }
        Some(slice)
    }

    /// Whether an accepted migration is still being shipped.
    #[must_use]
    pub fn migration_in_progress(&self) -> bool {
        self.pending_migration.is_some()
    }

    /// Staged migrations abandoned because a slice stalled.
    #[must_use]
    pub fn abandoned_migrations(&self) -> u64 {
        self.abandoned_migrations
    }

    /// Drops `plan.drop_nodes` surviving nodes (chosen by `plan.seed`,
    /// never the last one) and repairs the placement onto the survivors
    /// with bounded escalating-slack retries. The loop continues even
    /// when repair cannot regain feasibility (`recovered == false`);
    /// [`ControllerReport::final_feasible`] and the CLI exit taxonomy
    /// surface it. Returns `None` when the plan drops no nodes or only
    /// one node survives.
    pub fn inject_fault(&mut self, plan: &FaultPlan) -> Option<FaultRecovery> {
        if plan.drop_nodes == 0 {
            return None;
        }
        let mut alive: Vec<usize> = (0..self.dead.len()).filter(|&k| !self.dead[k]).collect();
        if alive.len() <= 1 {
            return None;
        }
        // Seeded partial Fisher–Yates over the surviving nodes, mirroring
        // the resilience harness's pick; at least one node survives.
        let kill = plan.drop_nodes.min(alive.len() - 1);
        let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x6e6f6465);
        for i in 0..kill {
            let j = rng.random_range(i..alive.len());
            alive.swap(i, j);
        }
        let mut dropped: Vec<usize> = alive[..kill].to_vec();
        dropped.sort_unstable();
        for &k in &dropped {
            self.dead[k] = true;
            self.live_capacities[k] = 0;
            self.node_losses += 1;
        }

        // Repair against the estimated weights (dyadic, shard-exact):
        // survive_node_loss re-packs the displaced objects and polishes
        // in place; slack escalates by ¼ per retry.
        let est = self.estimated_problem();
        let mut retries = 0u32;
        let (repaired, moves, bytes, recovered) = loop {
            let slack = self.config.capacity_slack + 0.25 * f64::from(retries);
            let (degraded, repaired, info) =
                survive_node_loss(&est, &self.placement, &dropped, slack);
            let ok = repaired.within_all_capacities(&degraded, self.config.capacity_slack);
            if ok || retries >= self.config.max_repair_retries {
                break (repaired, info.moves as u64, info.migrated_bytes, ok);
            }
            retries += 1;
        };
        self.placement = repaired;
        self.repairs += 1;
        self.repair_retries += u64::from(retries);
        self.repair_moves += moves;
        self.repair_bytes += bytes;
        if !recovered {
            self.unrecovered_losses += 1;
        }
        Some(FaultRecovery {
            dropped_nodes: dropped,
            retries,
            moves,
            bytes,
            recovered,
        })
    }

    /// End-of-run account; cheap enough to call at any epoch.
    #[must_use]
    pub fn report(&self) -> ControllerReport {
        let est = self.estimated_problem();
        let final_cost = est.eval_cost(&self.placement, self.config.threads);
        let final_feasible = self
            .placement
            .within_all_capacities(&est, self.config.capacity_slack);
        ControllerReport {
            epochs: self.epoch,
            queries: self.queries_total,
            evaluated: self.evaluated,
            migrations: self.migrations,
            objects_moved: self.objects_moved,
            migrated_bytes: self.migrated_bytes,
            rejected_not_worthwhile: self.rejected_not_worthwhile,
            rejected_not_robust: self.rejected_not_robust,
            degradations: self.degradations,
            solve_retries: self.solve_retries,
            repairs: self.repairs,
            repair_retries: self.repair_retries,
            repair_moves: self.repair_moves,
            repair_bytes: self.repair_bytes,
            node_losses: self.node_losses,
            unrecovered_losses: self.unrecovered_losses,
            accumulated_loss: self.scopes.iter().map(|s| s.accumulated_loss).sum(),
            final_cost,
            final_feasible,
        }
    }

    /// EWMA update: every base edge decays toward its observed
    /// correlation (zero when unobserved) and is re-quantized onto the
    /// dyadic grid. Order-independent per edge, so observation order and
    /// map iteration order never matter.
    fn update_estimates(&mut self, obs: &EpochObservation) {
        if obs.queries == 0 {
            return;
        }
        let q = obs.queries as f64;
        let mut touched: Vec<u32> = Vec::with_capacity(obs.pair_counts.len());
        for &(a, b, count) in &obs.pair_counts {
            let key = (a.0.min(b.0), a.0.max(b.0));
            if let Some(&e) = self.edge_of_pair.get(&key) {
                if self.obs_scratch[e as usize] == 0.0 {
                    touched.push(e);
                }
                self.obs_scratch[e as usize] += count as f64 / q;
            }
        }
        let alpha = self.config.ewma_alpha;
        for (e, est) in self.est_r.iter_mut().enumerate() {
            let observed = self.obs_scratch[e].min(1.0);
            *est = quantize_estimate((1.0 - alpha) * *est + alpha * observed);
        }
        for e in touched {
            self.obs_scratch[e as usize] = 0.0;
        }
    }

    /// Relative L1 drift of a scope's estimated weights against the
    /// placed-against snapshot.
    fn scope_drift(&self, s: usize) -> f64 {
        let mut gap = 0.0;
        let mut base = 0.0;
        for &e in &self.scope_edges[s] {
            let e = e as usize;
            let w = self.comm_cost[e];
            gap += (self.est_r[e] - self.placed_r[e]).abs() * w;
            base += self.placed_r[e] * w;
        }
        gap / base.max(1.0)
    }

    /// The eligible (not backing off, non-empty) scope with the largest
    /// drift; ties break toward the smaller index.
    fn pick_scope(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for s in 0..self.scopes.len() {
            if self.scopes[s].backoff_until > self.epoch || self.scope_edges[s].is_empty() {
                continue;
            }
            let d = self.scope_drift(s);
            if best.is_none_or(|(_, bd)| d > bd) {
                best = Some((s, d));
            }
        }
        best
    }

    /// Rebuilds the estimated problem: base objects and edges with the
    /// current (dyadic) correlation estimates and the surviving
    /// capacities. Zero estimates drop out of the built edge set, which
    /// is harmless — `est_r`/`placed_r` stay indexed by base edges.
    fn estimated_problem(&self) -> CcaProblem {
        let mut b = CcaProblem::builder();
        for o in self.base.objects() {
            b.add_object(self.base.name(o), self.base.size(o));
        }
        for (e, p) in self.base.pairs().iter().enumerate() {
            b.add_pair(p.a, p.b, self.est_r[e], p.comm_cost)
                .expect("base pairs stay valid under quantized estimates");
        }
        let mut est = b
            .capacities(self.live_capacities.clone())
            .build()
            .expect("estimated problem mirrors the valid base problem");
        if self.config.shards > 0 {
            est.set_sharding(self.config.shards, self.config.threads);
        }
        est
    }

    /// Top `scope_top` objects of scope `s` by incident estimated weight
    /// (ties toward the smaller id), ascending by id.
    fn scope_selection(&self, s: usize) -> Vec<ObjectId> {
        let mut incident: HashMap<u32, f64> = HashMap::new();
        for &e in &self.scope_edges[s] {
            let p = &self.base.pairs()[e as usize];
            let w = self.est_r[e as usize] * self.comm_cost[e as usize];
            for o in [p.a.0, p.b.0] {
                if self.scope_of[o as usize] == s {
                    *incident.entry(o).or_insert(0.0) += w;
                }
            }
        }
        let mut ranked: Vec<(u32, f64)> = incident.into_iter().collect();
        // `total_cmp`, not `partial_cmp(..).unwrap()`: the weights are
        // non-negative finite sums so the order is unchanged, and a NaN
        // benefit estimate can no longer panic the controller mid-run.
        ranked.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        ranked.truncate(self.config.scope_top);
        let mut keep: Vec<ObjectId> = ranked.into_iter().map(|(o, _)| ObjectId(o)).collect();
        keep.sort_unstable();
        keep
    }

    /// The drift-triggered evaluation: scoped resilient re-solve, batched
    /// scoring, accrual, and the worthwhile / robust gates.
    fn evaluate_scope(&mut self, s: usize) -> EpochOutcome {
        let cfg = self.config.clone();
        let est = self.estimated_problem();
        let keep = self.scope_selection(s);
        if keep.is_empty() {
            return EpochOutcome::NoDrift { scope: s, drift: 0.0 };
        }

        // Out-of-scope objects keep their nodes; the subproblem sees only
        // the capacity they leave behind.
        let mut residual: Vec<u64> = self.placement.loads(&est);
        for &o in &keep {
            residual[self.placement.node_of(o)] -= est.size(o);
        }
        let sub_caps: Vec<u64> = self
            .live_capacities
            .iter()
            .zip(&residual)
            .map(|(&cap, &used)| cap.saturating_sub(used))
            .collect();
        let (sub, ids) = est.restrict_to(&keep);
        let mut sub = sub.with_capacities(sub_caps);
        if cfg.shards > 0 {
            sub.set_sharding(cfg.shards, cfg.threads);
        }

        let options = ResilienceOptions {
            budget: cfg.budget.clone(),
            start: cfg.start,
            floor: cfg.floor,
            threads: cfg.threads,
            ..ResilienceOptions::default()
        };
        let solved = solve_resilient(&sub, &options);
        if solved.report.degraded {
            self.degradations += 1;
            let state = &mut self.scopes[s];
            if state.consecutive_degraded < cfg.max_solve_retries {
                // Bounded exponential backoff, then retry; the scope never
                // stalls silently — after max_solve_retries the degraded
                // candidate proceeds to the gates below.
                let shift = state.consecutive_degraded.min(6);
                let retry_at = self.epoch + (cfg.backoff_epochs << shift).max(1);
                state.consecutive_degraded += 1;
                state.backoff_until = retry_at;
                self.solve_retries += 1;
                return EpochOutcome::SolveDegraded { scope: s, retry_at };
            }
        }
        self.scopes[s].consecutive_degraded = 0;

        let mut candidate = self.placement.clone();
        for (sub_idx, &orig) in ids.iter().enumerate() {
            candidate.assign(orig, solved.placement.node_of(ObjectId(sub_idx as u32)));
        }

        // One batched CSR walk scores incumbent and candidate together.
        let mut batch = PlacementBatch::new(est.num_objects(), est.num_nodes());
        batch.push(&self.placement);
        batch.push(&candidate);
        let costs = est.eval_cost_batch(&batch, cfg.threads);
        let saving_per_query = (costs[0] - costs[1]).max(0.0);
        let bytes = migration_bytes(&est, &self.placement, &candidate);

        // Accrue the loss incurred since this scope's last verdict, then
        // gate: the migration must amortize within the horizon counting
        // what rejecting has already cost us (SkyPie MigrationOptimizer).
        let mean_queries = self.queries_total as f64 / self.epoch as f64;
        let per_epoch_saving = saving_per_query * mean_queries;
        let since = self.epoch - self.scopes[s].last_eval;
        self.scopes[s].accumulated_loss += per_epoch_saving * since as f64;
        self.scopes[s].last_eval = self.epoch;
        self.evaluated += 1;

        let projected =
            self.scopes[s].accumulated_loss + per_epoch_saving * cfg.horizon_epochs as f64;
        if saving_per_query <= 0.0 || projected <= bytes as f64 {
            self.rejected_not_worthwhile += 1;
            return EpochOutcome::RejectedNotWorthwhile {
                scope: s,
                projected,
                migration_bytes: bytes,
                accumulated_loss: self.scopes[s].accumulated_loss,
            };
        }

        if !self.candidate_is_robust(&est, &candidate) {
            self.rejected_not_robust += 1;
            return EpochOutcome::RejectedNotRobust { scope: s };
        }

        let migrate = MigrateOptions {
            capacity_slack: cfg.capacity_slack,
            ..MigrateOptions::default()
        };
        // Acceptance bookkeeping is identical either way: the migration
        // counts, the regret ledger resets, and the drift baseline snaps
        // to the estimates the candidate was solved against.
        self.migrations += 1;
        self.scopes[s].accumulated_loss = 0.0;
        for &e in &self.scope_edges[s] {
            self.placed_r[e as usize] = self.est_r[e as usize];
        }
        if cfg.migration_budget_per_epoch.is_some() {
            self.pending_migration = Some(MigrationSchedule::new(candidate, migrate));
            return EpochOutcome::MigrationScheduled {
                scope: s,
                total_bytes: bytes,
                saving_per_query,
            };
        }
        let outcome = reconcile(&est, &self.placement, &candidate, u64::MAX, &migrate);
        self.placement = outcome.placement;
        self.objects_moved += outcome.moves as u64;
        self.migrated_bytes += outcome.migrated_bytes;
        EpochOutcome::Migrated {
            scope: s,
            moves: outcome.moves as u64,
            bytes: outcome.migrated_bytes,
            saving_per_query,
        }
    }

    /// The robustness gate: the candidate must fit the surviving
    /// capacities outright, and — when at least two nodes (or, with a
    /// [`ControllerConfig::domains`] tree, two alive leaf domains)
    /// survive — a [`survive_node_loss`] probe dropping the
    /// heaviest-loaded surviving node (or every alive node of the
    /// heaviest-loaded surviving domain) must repair back to feasibility
    /// under the configured slack. A flat tree selects exactly the
    /// single-node probe, so `domains: None` and `domains: Some(flat)`
    /// gate identically.
    fn candidate_is_robust(&self, est: &CcaProblem, candidate: &Placement) -> bool {
        if !candidate.within_all_capacities(est, self.config.capacity_slack) {
            return false;
        }
        let loads = candidate.loads(est);
        let probe_nodes: Vec<usize> = match &self.config.domains {
            None => {
                let probe = (0..loads.len())
                    .filter(|&k| !self.dead[k])
                    .max_by(|&a, &b| loads[a].cmp(&loads[b]).then(b.cmp(&a)));
                let Some(probe) = probe else { return false };
                if self.dead.iter().filter(|&&d| !d).count() <= 1 {
                    return true; // no second node to lose
                }
                vec![probe]
            }
            Some(tree) => {
                // Heaviest-loaded surviving domain, summing alive
                // members; ties toward the smaller domain id (matches
                // the single-node rule under the flat tree).
                let alive_load = |d: usize| -> Option<u64> {
                    let alive: Vec<&usize> = tree
                        .nodes_in(d)
                        .iter()
                        .filter(|&&n| !self.dead[n])
                        .collect();
                    if alive.is_empty() {
                        None
                    } else {
                        Some(alive.iter().map(|&&n| loads[n]).sum())
                    }
                };
                let probe = (0..tree.num_domains())
                    .filter_map(|d| alive_load(d).map(|l| (d, l)))
                    .max_by(|&(da, la), &(db, lb)| la.cmp(&lb).then(db.cmp(&da)));
                let Some((probe, _)) = probe else { return false };
                let alive_domains = (0..tree.num_domains())
                    .filter(|&d| alive_load(d).is_some())
                    .count();
                if alive_domains <= 1 {
                    return true; // no second domain to lose
                }
                tree.nodes_in(probe)
                    .iter()
                    .copied()
                    .filter(|&n| !self.dead[n])
                    .collect()
            }
        };
        let (degraded, repaired, _info) =
            survive_node_loss(est, candidate, &probe_nodes, self.config.capacity_slack);
        repaired.within_all_capacities(&degraded, self.config.capacity_slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 objects on 3 nodes, two natural clusters per scope half.
    fn base_problem() -> CcaProblem {
        let mut b = CcaProblem::builder();
        for i in 0..8 {
            b.add_object(format!("o{i}"), 4);
        }
        let o = |i: u32| ObjectId(i);
        // Strong intra-cluster edges, weak cross edges (all tracked).
        b.add_pair(o(0), o(1), 0.5, 8.0).unwrap();
        b.add_pair(o(2), o(3), 0.5, 8.0).unwrap();
        b.add_pair(o(0), o(2), 0.03125, 8.0).unwrap();
        b.add_pair(o(1), o(3), 0.03125, 8.0).unwrap();
        b.add_pair(o(4), o(5), 0.5, 8.0).unwrap();
        b.add_pair(o(6), o(7), 0.5, 8.0).unwrap();
        b.add_pair(o(4), o(6), 0.03125, 8.0).unwrap();
        b.add_pair(o(5), o(7), 0.03125, 8.0).unwrap();
        b.uniform_capacities(3, 16).build().unwrap()
    }

    fn config() -> ControllerConfig {
        ControllerConfig {
            evaluate_every: 4,
            horizon_epochs: 64,
            scope_count: 2,
            scope_top: 8,
            ..ControllerConfig::default()
        }
    }

    /// Observations that flip the first cluster: (0,2)/(1,3) become the
    /// strong pairs, (0,1)/(2,3) go quiet.
    fn flipped_obs() -> EpochObservation {
        let o = |i: u32| ObjectId(i);
        EpochObservation {
            pair_counts: vec![
                (o(0), o(2), 32),
                (o(1), o(3), 32),
                (o(4), o(5), 32),
                (o(6), o(7), 32),
            ],
            queries: 64,
        }
    }

    /// Steady observations matching the base correlations exactly
    /// (strong pairs at 32/64 = 0.5, weak pairs at 2/64 = 0.03125), so
    /// the EWMA estimates are fixed points and drift stays zero.
    fn steady_obs() -> EpochObservation {
        let o = |i: u32| ObjectId(i);
        EpochObservation {
            pair_counts: vec![
                (o(0), o(1), 32),
                (o(2), o(3), 32),
                (o(0), o(2), 2),
                (o(1), o(3), 2),
                (o(4), o(5), 32),
                (o(6), o(7), 32),
                (o(4), o(6), 2),
                (o(5), o(7), 2),
            ],
            queries: 64,
        }
    }

    fn start_placement(problem: &CcaProblem) -> Placement {
        crate::greedy::greedy_placement(problem)
    }

    #[test]
    fn quantize_snaps_to_dyadic_grid() {
        let q = quantize_estimate(0.1);
        assert_eq!(q, (0.1f64 * EST_GRID).round() / EST_GRID);
        assert_eq!((q * EST_GRID).fract(), 0.0, "estimate is on the grid");
        assert_eq!(quantize_estimate(0.0), 0.0);
        assert_eq!(quantize_estimate(1.0), 1.0);
        assert_eq!(quantize_estimate(0.25), 0.25, "dyadic values are fixed points");
    }

    #[test]
    fn steady_traffic_never_migrates() {
        let p = base_problem();
        let mut c = Controller::new(&p, start_placement(&p), config());
        for _ in 0..64 {
            let out = c.step(&steady_obs());
            assert!(
                matches!(out, EpochOutcome::Idle | EpochOutcome::NoDrift { .. }),
                "steady traffic must not trigger solves: {out:?}"
            );
        }
        let r = c.report();
        assert_eq!(r.migrations, 0);
        assert_eq!(r.evaluated, 0);
        assert!(r.counters_consistent());
        assert!(r.final_feasible);
    }

    #[test]
    fn drift_triggers_gated_migration_and_counters_stay_consistent() {
        let p = base_problem();
        let mut c = Controller::new(&p, start_placement(&p), config());
        let mut migrated = false;
        for _ in 0..128 {
            if let EpochOutcome::Migrated { saving_per_query, .. } = c.step(&flipped_obs()) {
                migrated = true;
                assert!(saving_per_query > 0.0);
            }
        }
        assert!(migrated, "a persistent flip must eventually migrate");
        let r = c.report();
        assert!(r.migrations >= 1);
        assert!(r.counters_consistent(), "{r:?}");
        assert!(r.final_feasible);
        // The migrated placement co-locates the new strong pairs.
        let pl = c.placement();
        assert_eq!(pl.node_of(ObjectId(0)), pl.node_of(ObjectId(2)));
        assert_eq!(pl.node_of(ObjectId(1)), pl.node_of(ObjectId(3)));
    }

    #[test]
    fn accumulated_loss_is_monotone_and_resets_on_migration() {
        let p = base_problem();
        // A huge horizon denominator: force rejections first by making
        // migration look expensive (tiny horizon).
        let cfg = ControllerConfig {
            horizon_epochs: 1,
            ..config()
        };
        let mut c = Controller::new(&p, start_placement(&p), cfg);
        let mut last = [0.0f64; 2];
        let mut saw_reject = false;
        let mut saw_reset = false;
        for _ in 0..256 {
            match c.step(&flipped_obs()) {
                EpochOutcome::RejectedNotWorthwhile {
                    scope,
                    accumulated_loss,
                    ..
                } => {
                    saw_reject = true;
                    assert!(
                        accumulated_loss + 1e-12 >= last[scope],
                        "accumulated loss decreased without a migration: \
                         {accumulated_loss} < {}",
                        last[scope]
                    );
                    last[scope] = accumulated_loss;
                }
                EpochOutcome::Migrated { scope, .. } => {
                    saw_reset = true;
                    assert_eq!(c.accumulated_loss(scope), 0.0, "loss resets on acceptance");
                    last[scope] = 0.0;
                }
                _ => {}
            }
        }
        assert!(saw_reject, "the 1-epoch horizon must reject at least once");
        assert!(saw_reset, "accrued loss must eventually pay for the migration");
        assert!(c.report().counters_consistent());
    }

    #[test]
    fn node_loss_repairs_and_loop_continues() {
        let p = base_problem();
        let mut c = Controller::new(&p, start_placement(&p), config());
        for _ in 0..8 {
            c.step(&steady_obs());
        }
        let plan = FaultPlan {
            drop_nodes: 1,
            seed: 7,
            ..FaultPlan::default()
        };
        let rec = c.inject_fault(&plan).expect("three nodes: a loss is injectable");
        assert_eq!(rec.dropped_nodes.len(), 1);
        assert!(rec.recovered, "24 spare bytes: repair must converge");
        assert_eq!(c.alive_nodes(), 2);
        // The dead node holds nothing.
        let dead = rec.dropped_nodes[0];
        let loads = c.placement().loads(&p);
        assert_eq!(loads[dead], 0);
        for _ in 0..32 {
            c.step(&steady_obs());
        }
        let r = c.report();
        assert_eq!(r.node_losses, 1);
        assert_eq!(r.repairs, 1);
        assert_eq!(r.unrecovered_losses, 0);
        assert!(r.final_feasible);
        assert!(r.degraded(), "a node loss marks the run degraded");
        assert!(r.counters_consistent());
    }

    #[test]
    fn unrecoverable_loss_is_flagged_but_never_panics() {
        // 2 nodes at exactly total size: losing one cannot fit.
        let mut b = CcaProblem::builder();
        for i in 0..4 {
            b.add_object(format!("o{i}"), 4);
        }
        b.add_pair(ObjectId(0), ObjectId(1), 0.5, 4.0).unwrap();
        let p = b.uniform_capacities(2, 8).build().unwrap();
        let mut c = Controller::new(&p, start_placement(&p), config());
        let plan = FaultPlan {
            drop_nodes: 1,
            seed: 3,
            ..FaultPlan::default()
        };
        let rec = c.inject_fault(&plan).expect("two nodes: one may die");
        assert!(!rec.recovered, "16 bytes cannot fit one 8-byte node");
        let out = c.step(&steady_obs());
        assert!(matches!(out, EpochOutcome::Idle | EpochOutcome::NoDrift { .. }));
        let r = c.report();
        assert_eq!(r.unrecovered_losses, 1);
        assert!(!r.final_feasible);
        assert!(r.counters_consistent());
    }

    #[test]
    fn fragile_cluster_rejects_not_robust() {
        // 2 nodes filled to the brim: any migration candidate fails the
        // survive-one-node-loss probe (8 surviving bytes cannot hold 16),
        // so worthwhile flips are still rejected as not robust.
        let mut b = CcaProblem::builder();
        for i in 0..4 {
            b.add_object(format!("o{i}"), 4);
        }
        let o = |i: u32| ObjectId(i);
        b.add_pair(o(0), o(1), 0.5, 8.0).unwrap();
        b.add_pair(o(2), o(3), 0.5, 8.0).unwrap();
        b.add_pair(o(0), o(2), 0.03125, 8.0).unwrap();
        b.add_pair(o(1), o(3), 0.03125, 8.0).unwrap();
        let p = b.uniform_capacities(2, 8).build().unwrap();
        let cfg = ControllerConfig {
            scope_count: 1,
            ..config()
        };
        let mut c = Controller::new(&p, start_placement(&p), cfg);
        let flip = EpochObservation {
            pair_counts: vec![(o(0), o(2), 32), (o(1), o(3), 32)],
            queries: 64,
        };
        let mut not_robust = 0;
        for _ in 0..64 {
            if matches!(c.step(&flip), EpochOutcome::RejectedNotRobust { .. }) {
                not_robust += 1;
            }
        }
        let r = c.report();
        assert!(not_robust > 0, "the flip must pass worthwhile and fail robust: {r:?}");
        assert_eq!(r.migrations, 0, "a fragile migration must never be applied");
        assert_eq!(r.rejected_not_robust, not_robust);
        assert!(r.counters_consistent());
    }

    #[test]
    fn fault_on_last_survivor_is_refused() {
        let p = base_problem();
        let mut c = Controller::new(&p, start_placement(&p), config());
        let plan = |seed| FaultPlan {
            drop_nodes: 1,
            seed,
            ..FaultPlan::default()
        };
        assert!(c.inject_fault(&plan(1)).is_some());
        assert!(c.inject_fault(&plan(2)).is_some());
        assert_eq!(c.alive_nodes(), 1);
        assert!(c.inject_fault(&plan(3)).is_none(), "the last node survives");
    }

    #[test]
    fn shard_and_thread_config_do_not_change_decisions() {
        let p = base_problem();
        let mut reference: Option<(Vec<u32>, u64, u64)> = None;
        for (threads, shards) in [(1, 0), (2, 2), (8, 7), (2, 1)] {
            let cfg = ControllerConfig {
                threads,
                shards,
                ..config()
            };
            let mut c = Controller::new(&p, start_placement(&p), cfg);
            for _ in 0..96 {
                c.step(&flipped_obs());
            }
            let r = c.report();
            let key = (
                c.placement().as_slice().to_vec(),
                r.migrations,
                r.evaluated,
            );
            match &reference {
                None => reference = Some(key),
                Some(want) => assert_eq!(
                    &key, want,
                    "threads={threads} shards={shards} diverged from the reference run"
                ),
            }
        }
    }

    #[test]
    fn budgeted_migration_ships_in_bounded_slices() {
        let p = base_problem();
        let budget = 8u64; // objects are 4 bytes: at most two per slice
        let cfg = ControllerConfig {
            migration_budget_per_epoch: Some(budget),
            ..config()
        };
        let mut c = Controller::new(&p, start_placement(&p), cfg);
        let mut scheduled = false;
        let mut shipped = 0u64;
        for _ in 0..128 {
            // The live-runtime driving order: slice first, then step.
            if let Some(slice) = c.advance_migration() {
                assert!(slice.bytes <= budget, "slice over budget: {slice:?}");
                assert!(!slice.stalled, "feasible schedule stalled: {slice:?}");
                shipped += slice.bytes;
            }
            match c.step(&flipped_obs()) {
                EpochOutcome::MigrationScheduled {
                    total_bytes,
                    saving_per_query,
                    ..
                } => {
                    scheduled = true;
                    assert!(total_bytes > 0);
                    assert!(saving_per_query > 0.0);
                }
                EpochOutcome::Migrated { .. } => {
                    panic!("a budgeted controller must stage, never bulk-apply")
                }
                _ => {}
            }
        }
        while c.migration_in_progress() {
            shipped += c.advance_migration().expect("in progress").bytes;
        }
        assert!(scheduled, "a persistent flip must eventually stage a migration");
        let r = c.report();
        assert!(r.migrations >= 1);
        assert_eq!(r.migrated_bytes, shipped, "report accrues exactly the slices");
        assert!(r.counters_consistent());
        assert_eq!(c.abandoned_migrations(), 0);
        assert!(r.final_feasible);
        // The shipped schedule co-locates the new strong pairs.
        let pl = c.placement();
        assert_eq!(pl.node_of(ObjectId(0)), pl.node_of(ObjectId(2)));
        assert_eq!(pl.node_of(ObjectId(1)), pl.node_of(ObjectId(3)));
    }

    #[test]
    fn evaluation_pauses_while_a_migration_is_in_flight() {
        let p = base_problem();
        let cfg = ControllerConfig {
            migration_budget_per_epoch: Some(4), // one object per slice
            ..config()
        };
        let mut c = Controller::new(&p, start_placement(&p), cfg);
        let mut pending_evals = 0;
        for _ in 0..256 {
            if c.migration_in_progress() {
                // Deliberately never advance: the schedule stays pending,
                // so even evaluation-cadence epochs must stay Idle.
                let out = c.step(&flipped_obs());
                assert_eq!(out, EpochOutcome::Idle);
                pending_evals += 1;
                if pending_evals >= 8 {
                    break;
                }
            } else {
                let _ = c.step(&flipped_obs());
            }
        }
        assert!(pending_evals >= 8, "a migration must have been staged");
        while c.migration_in_progress() {
            let slice = c.advance_migration().expect("in progress");
            assert!(slice.bytes <= 4);
            assert!(!slice.stalled);
        }
        assert!(c.report().counters_consistent());
    }

    #[test]
    fn observations_for_unknown_pairs_are_ignored() {
        let p = base_problem();
        let mut c = Controller::new(&p, start_placement(&p), config());
        let obs = EpochObservation {
            pair_counts: vec![(ObjectId(0), ObjectId(7), 64)], // not a base edge
            queries: 64,
        };
        let before: Vec<f64> = (0..p.pairs().len()).map(|e| c.estimate(e)).collect();
        c.step(&obs);
        // Known edges decayed toward zero; the unknown pair changed nothing else.
        for (e, &b) in before.iter().enumerate() {
            assert!(c.estimate(e) <= b);
        }
        assert!(c.report().counters_consistent());
    }
}
