//! Serving-side accounting: the dyadic latency histogram and the
//! end-of-run serving report (DESIGN.md §13).
//!
//! The async serving front (the root crate's `serve` module) answers
//! queries under a **virtual-time** cost model so its report is a pure
//! function of the workload and the placement — independent of thread
//! count, shard count, and admission-window size. This module holds the
//! placement-system side of that contract: the histogram whose bucket
//! bounds are powers of two (so every persisted value is an exact `u64`
//! and the report round-trips bit for bit through
//! [`crate::persist::format_serving_report`]) and the counter partition
//! mirroring the controller's gate accounting — every offered query is
//! accounted served, degraded, or shed; nothing is dropped silently.

use std::fmt::Write as _;

/// Number of histogram buckets: bucket 0 holds exact-zero latencies and
/// bucket `i ≥ 1` holds latencies in `[2^(i-1), 2^i)`, so 64 dyadic
/// buckets cover the whole `u64` range.
pub const NUM_BUCKETS: usize = 65;

/// A latency histogram with dyadic (power-of-two) bucket bounds.
///
/// Bucket bounds are chosen for bit-exact persistence: every quantile
/// this histogram reports is a bucket **upper bound** — an integer, not
/// an interpolation — so `p50/p95/p99` survive a text round-trip
/// unchanged and are identical on every host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; NUM_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `latency_ns`: 0 for an exact zero, otherwise
    /// `1 + floor(log2(latency_ns))` (the position of the highest set
    /// bit), so bucket `i ≥ 1` covers `[2^(i-1), 2^i)`.
    #[must_use]
    pub fn bucket_of(latency_ns: u64) -> usize {
        if latency_ns == 0 {
            0
        } else {
            64 - latency_ns.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (the largest latency the
    /// bucket can hold). Bucket 0 is exactly zero; bucket 64 saturates
    /// at `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one latency.
    pub fn record(&mut self, latency_ns: u64) {
        self.counts[Self::bucket_of(latency_ns)] += 1;
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Iterator over `(bucket, count)` for every non-empty bucket, in
    /// ascending bucket order — the persistence order.
    pub fn nonempty(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Adds `count` samples to bucket `i` (used by the report reader).
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    pub fn add_bucket(&mut self, i: usize, count: u64) {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        self.counts[i] += count;
    }

    /// The `q`-quantile as a bucket upper bound: the smallest bucket
    /// bound below which at least `ceil(q × total)` samples fall.
    /// Returns 0 for an empty histogram. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total) with a floor of 1: the rank of the sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(NUM_BUCKETS - 1)
    }
}

/// End-of-run account of one serving run — the serving analogue of
/// [`crate::controller::ControllerReport`].
///
/// The counters partition the offered queries exactly:
///
/// ```text
/// queries == served + degraded + shed_admission + shed_overload + shed_deadline
/// ```
///
/// Every field is either a `u64` or a hex digest, so the v1 text format
/// ([`crate::persist::format_serving_report`]) round-trips bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// Queries offered to the admission queue.
    pub queries: u64,
    /// Queries executed in full within their latency budget.
    pub served: u64,
    /// Queries executed in full but over their latency budget (the
    /// admission estimate is a lower bound, so a query can clear the
    /// gate and still run long).
    pub degraded: u64,
    /// Queries shed at admission: the batched pre-execution estimate
    /// already exceeded the per-query budget, so the query was answered
    /// from the estimate alone, without touching posting lists.
    pub shed_admission: u64,
    /// Queries shed because the bounded admission queue was full when
    /// they arrived (open-loop overload only; a closed loop never
    /// overflows).
    pub shed_overload: u64,
    /// Queries shed mid-batch by the wall-clock `DeadlineGate` liveness
    /// backstop (never silently dropped — answered from the estimate
    /// and counted here).
    pub shed_deadline: u64,
    /// Total communication bytes of fully executed queries.
    pub executed_bytes: u64,
    /// Total estimated bytes of shed queries (their degraded answers).
    pub estimated_bytes: u64,
    /// Virtual-latency p50 (a dyadic bucket upper bound, in ns).
    pub p50_ns: u64,
    /// Virtual-latency p95 (a dyadic bucket upper bound, in ns).
    pub p95_ns: u64,
    /// Virtual-latency p99 (a dyadic bucket upper bound, in ns).
    pub p99_ns: u64,
    /// Histogram of virtual service latencies of executed queries.
    pub histogram: LatencyHistogram,
    /// MD5 over every response record in arrival order — byte-identity
    /// of the full response stream across threads, shards, and
    /// admission windows.
    pub digest: String,
}

impl ServingReport {
    /// True when the shed/served counters exactly partition the offered
    /// queries and the histogram holds one sample per executed query.
    #[must_use]
    pub fn counters_consistent(&self) -> bool {
        self.queries
            == self.served
                + self.degraded
                + self.shed_admission
                + self.shed_overload
                + self.shed_deadline
            && self.histogram.total() == self.served + self.degraded
    }

    /// True when any query was answered degraded or shed — the exit-2
    /// condition of the `cca serve` taxonomy.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded + self.shed_admission + self.shed_overload + self.shed_deadline > 0
    }

    /// Recomputes the persisted quantiles from the histogram.
    pub fn refresh_quantiles(&mut self) {
        self.p50_ns = self.histogram.quantile_upper_bound(0.50);
        self.p95_ns = self.histogram.quantile_upper_bound(0.95);
        self.p99_ns = self.histogram.quantile_upper_bound(0.99);
    }

    /// Human-readable summary (stderr companion of the machine report).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "served {}/{} queries ({} degraded, {} shed: {} admission / {} overload / {} deadline)",
            self.served,
            self.queries,
            self.degraded,
            self.shed_admission + self.shed_overload + self.shed_deadline,
            self.shed_admission,
            self.shed_overload,
            self.shed_deadline,
        );
        let _ = writeln!(
            out,
            "virtual latency p50/p95/p99: {}/{}/{} ns; executed {} bytes ({} estimated on shed paths)",
            self.p50_ns, self.p95_ns, self.p99_ns, self.executed_bytes, self.estimated_bytes
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_dyadic_and_exhaustive() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            let hi = LatencyHistogram::bucket_upper_bound(i);
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "upper bound of {i}");
            if i < 64 {
                assert_eq!(
                    LatencyHistogram::bucket_of(hi + 1),
                    i + 1,
                    "bound {i} is inclusive"
                );
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0, "empty histogram");
        // 90 fast samples (bucket of 100 = 7, bound 127), 10 slow
        // (bucket of 10_000 = 14, bound 16383).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile_upper_bound(0.50), 127);
        assert_eq!(h.quantile_upper_bound(0.90), 127);
        assert_eq!(h.quantile_upper_bound(0.95), 16383);
        assert_eq!(h.quantile_upper_bound(1.0), 16383);
        assert_eq!(h.quantile_upper_bound(0.0), 127, "rank floors at 1");
        let nonempty: Vec<_> = h.nonempty().collect();
        assert_eq!(nonempty, vec![(7, 90), (14, 10)]);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn report_partition_invariant() {
        let mut r = ServingReport {
            queries: 10,
            served: 6,
            degraded: 1,
            shed_admission: 2,
            shed_overload: 1,
            shed_deadline: 0,
            ..ServingReport::default()
        };
        for _ in 0..7 {
            r.histogram.record(50);
        }
        assert!(r.counters_consistent());
        assert!(r.degraded());
        r.served += 1;
        assert!(!r.counters_consistent(), "partition must be exact");
    }

    #[test]
    fn refresh_quantiles_reads_the_histogram() {
        let mut r = ServingReport::default();
        r.histogram.record(1000);
        r.refresh_quantiles();
        assert_eq!(r.p50_ns, LatencyHistogram::bucket_upper_bound(10));
        assert_eq!(r.p50_ns, 1023);
        assert_eq!(r.p99_ns, 1023);
        assert!(r.summary().contains("p50/p95/p99"));
    }
}
