//! Serving-side accounting: the dyadic latency histogram and the
//! end-of-run serving report (DESIGN.md §13).
//!
//! The async serving front (the root crate's `serve` module) answers
//! queries under a **virtual-time** cost model so its report is a pure
//! function of the workload and the placement — independent of thread
//! count, shard count, and admission-window size. This module holds the
//! placement-system side of that contract: the histogram whose bucket
//! bounds are powers of two (so every persisted value is an exact `u64`
//! and the report round-trips bit for bit through
//! [`crate::persist::format_serving_report`]) and the counter partition
//! mirroring the controller's gate accounting — every offered query is
//! accounted served, degraded, or shed; nothing is dropped silently.

use std::fmt::Write as _;

/// Number of histogram buckets: bucket 0 holds exact-zero latencies and
/// bucket `i ≥ 1` holds latencies in `[2^(i-1), 2^i)`, so 64 dyadic
/// buckets cover the whole `u64` range.
pub const NUM_BUCKETS: usize = 65;

/// A latency histogram with dyadic (power-of-two) bucket bounds.
///
/// Bucket bounds are chosen for bit-exact persistence: every quantile
/// this histogram reports is a bucket **upper bound** — an integer, not
/// an interpolation — so `p50/p95/p99` survive a text round-trip
/// unchanged and are identical on every host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; NUM_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `latency_ns`: 0 for an exact zero, otherwise
    /// `1 + floor(log2(latency_ns))` (the position of the highest set
    /// bit), so bucket `i ≥ 1` covers `[2^(i-1), 2^i)`.
    #[must_use]
    pub fn bucket_of(latency_ns: u64) -> usize {
        if latency_ns == 0 {
            0
        } else {
            64 - latency_ns.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (the largest latency the
    /// bucket can hold). Bucket 0 is exactly zero; bucket 64 saturates
    /// at `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one latency.
    pub fn record(&mut self, latency_ns: u64) {
        self.counts[Self::bucket_of(latency_ns)] += 1;
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Iterator over `(bucket, count)` for every non-empty bucket, in
    /// ascending bucket order — the persistence order.
    pub fn nonempty(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Adds `count` samples to bucket `i` (used by the report reader).
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_BUCKETS`.
    pub fn add_bucket(&mut self, i: usize, count: u64) {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        self.counts[i] += count;
    }

    /// Adds every bucket of `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// The `q`-quantile as a bucket upper bound: the smallest bucket
    /// bound below which at least `ceil(q × total)` samples fall.
    /// Returns 0 for an empty histogram. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total) with a floor of 1: the rank of the sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(NUM_BUCKETS - 1)
    }
}

/// End-of-run account of one serving run — the serving analogue of
/// [`crate::controller::ControllerReport`].
///
/// The counters partition the offered queries exactly:
///
/// ```text
/// queries == served + degraded + shed_admission + shed_overload + shed_deadline
/// ```
///
/// Every field is either a `u64` or a hex digest, so the v1 text format
/// ([`crate::persist::format_serving_report`]) round-trips bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// Queries offered to the admission queue.
    pub queries: u64,
    /// Queries executed in full within their latency budget.
    pub served: u64,
    /// Queries executed in full but over their latency budget (the
    /// admission estimate is a lower bound, so a query can clear the
    /// gate and still run long).
    pub degraded: u64,
    /// Queries shed at admission: the batched pre-execution estimate
    /// already exceeded the per-query budget, so the query was answered
    /// from the estimate alone, without touching posting lists.
    pub shed_admission: u64,
    /// Queries shed because the bounded admission queue was full when
    /// they arrived (open-loop overload only; a closed loop never
    /// overflows).
    pub shed_overload: u64,
    /// Queries shed mid-batch by the wall-clock `DeadlineGate` liveness
    /// backstop (never silently dropped — answered from the estimate
    /// and counted here).
    pub shed_deadline: u64,
    /// Total communication bytes of fully executed queries.
    pub executed_bytes: u64,
    /// Total estimated bytes of shed queries (their degraded answers).
    pub estimated_bytes: u64,
    /// Virtual-latency p50 (a dyadic bucket upper bound, in ns).
    pub p50_ns: u64,
    /// Virtual-latency p95 (a dyadic bucket upper bound, in ns).
    pub p95_ns: u64,
    /// Virtual-latency p99 (a dyadic bucket upper bound, in ns).
    pub p99_ns: u64,
    /// Histogram of virtual service latencies of executed queries.
    pub histogram: LatencyHistogram,
    /// MD5 over every response record in arrival order — byte-identity
    /// of the full response stream across threads, shards, and
    /// admission windows.
    pub digest: String,
}

impl ServingReport {
    /// True when the shed/served counters exactly partition the offered
    /// queries and the histogram holds one sample per executed query.
    #[must_use]
    pub fn counters_consistent(&self) -> bool {
        self.queries
            == self.served
                + self.degraded
                + self.shed_admission
                + self.shed_overload
                + self.shed_deadline
            && self.histogram.total() == self.served + self.degraded
    }

    /// True when any query was answered degraded or shed — the exit-2
    /// condition of the `cca serve` taxonomy.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded + self.shed_admission + self.shed_overload + self.shed_deadline > 0
    }

    /// Recomputes the persisted quantiles from the histogram.
    pub fn refresh_quantiles(&mut self) {
        self.p50_ns = self.histogram.quantile_upper_bound(0.50);
        self.p95_ns = self.histogram.quantile_upper_bound(0.95);
        self.p99_ns = self.histogram.quantile_upper_bound(0.99);
    }

    /// Human-readable summary (stderr companion of the machine report).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "served {}/{} queries ({} degraded, {} shed: {} admission / {} overload / {} deadline)",
            self.served,
            self.queries,
            self.degraded,
            self.shed_admission + self.shed_overload + self.shed_deadline,
            self.shed_admission,
            self.shed_overload,
            self.shed_deadline,
        );
        let _ = writeln!(
            out,
            "virtual latency p50/p95/p99: {}/{}/{} ns; executed {} bytes ({} estimated on shed paths)",
            self.p50_ns, self.p95_ns, self.p99_ns, self.executed_bytes, self.estimated_bytes
        );
        out
    }
}

/// End-of-run account of one **live** run — serving and the drift
/// controller in one epoch-structured loop (DESIGN.md §14). Aggregates
/// the per-epoch [`ServingReport`]s, records how much migration traffic
/// was interleaved and how it was paced, and splits the run into three
/// windows around the migration activity:
///
/// * **pre** — epochs strictly before the first epoch that shipped
///   migration bytes (with no migration at all, the whole run);
/// * **mid** — epochs from the first through the last shipping epoch;
/// * **post** — epochs strictly after the last shipping epoch.
///
/// `pre` vs `post` shipped-bytes-per-query is the paper's headline
/// measured end to end under load; the per-window histograms expose the
/// latency impact of the interleaved migration traffic.
///
/// Every field is a `u64`, a `bool`, or a hex digest, so the v1 text
/// format ([`crate::persist::format_live_report`]) round-trips bit for
/// bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LiveReport {
    /// Epochs driven.
    pub epochs: u64,
    /// Queries offered across all epochs.
    pub queries: u64,
    /// Queries executed in full within their latency budget.
    pub served: u64,
    /// Queries executed in full but over budget.
    pub degraded: u64,
    /// Queries shed at admission (estimate over budget).
    pub shed_admission: u64,
    /// Queries shed by a full admission queue.
    pub shed_overload: u64,
    /// Queries shed by the wall-clock liveness backstop.
    pub shed_deadline: u64,
    /// Communication bytes of fully executed queries.
    pub executed_bytes: u64,
    /// Estimated bytes of shed queries.
    pub estimated_bytes: u64,
    /// Controller gate evaluations that reached a verdict.
    pub evaluated: u64,
    /// Migrations the controller accepted (and staged).
    pub migrations: u64,
    /// Staged migrations abandoned because a slice stalled.
    pub abandoned_migrations: u64,
    /// Epochs that shipped at least one migration byte.
    pub migration_epochs: u64,
    /// Migration bytes shipped across the run.
    pub migrated_bytes: u64,
    /// The largest single-epoch migration traffic — must never exceed
    /// [`migration_budget`](Self::migration_budget).
    pub max_epoch_migrated_bytes: u64,
    /// The per-epoch migration byte budget the run was configured with.
    pub migration_budget: u64,
    /// Epochs in the pre-migration window.
    pub pre_epochs: u64,
    /// Executed (served + degraded) queries in the pre window.
    pub pre_queries: u64,
    /// Communication bytes of executed queries in the pre window.
    pub pre_executed_bytes: u64,
    /// Epochs in the post-migration window.
    pub post_epochs: u64,
    /// Executed queries in the post window.
    pub post_queries: u64,
    /// Communication bytes of executed queries in the post window.
    pub post_executed_bytes: u64,
    /// Whole-run virtual-latency p50 (dyadic bucket upper bound, ns).
    pub p50_ns: u64,
    /// Whole-run virtual-latency p95.
    pub p95_ns: u64,
    /// Whole-run virtual-latency p99.
    pub p99_ns: u64,
    /// Whether the final placement fits the surviving capacities under
    /// the controller's slack.
    pub final_feasible: bool,
    /// MD5 over `epoch\tmigrated_bytes\t<epoch serving digest>` lines in
    /// epoch order — byte-identity of the whole interleaved run across
    /// threads, shards, and admission windows.
    pub digest: String,
    /// Executed-query latencies in the pre window.
    pub pre_histogram: LatencyHistogram,
    /// Executed-query latencies in the mid (migration) window.
    pub mid_histogram: LatencyHistogram,
    /// Executed-query latencies in the post window.
    pub post_histogram: LatencyHistogram,
}

impl LiveReport {
    /// True when the serving counters exactly partition the offered
    /// stream even with migrations interleaved, the three window
    /// histograms partition the executed queries, and the per-window
    /// query scalars match their histograms.
    #[must_use]
    pub fn counters_consistent(&self) -> bool {
        let executed = self.served + self.degraded;
        self.queries
            == executed + self.shed_admission + self.shed_overload + self.shed_deadline
            && self.pre_histogram.total()
                + self.mid_histogram.total()
                + self.post_histogram.total()
                == executed
            && self.pre_histogram.total() == self.pre_queries
            && self.post_histogram.total() == self.post_queries
    }

    /// True when the per-epoch pacing contract held: no epoch shipped
    /// more than the configured budget.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.max_epoch_migrated_bytes <= self.migration_budget
    }

    /// Mean shipped bytes per executed query in the pre-migration
    /// window; `None` when the window executed nothing.
    #[must_use]
    pub fn pre_bytes_per_query(&self) -> Option<f64> {
        (self.pre_queries > 0).then(|| self.pre_executed_bytes as f64 / self.pre_queries as f64)
    }

    /// Mean shipped bytes per executed query in the post-migration
    /// window; `None` when the window executed nothing.
    #[must_use]
    pub fn post_bytes_per_query(&self) -> Option<f64> {
        (self.post_queries > 0).then(|| self.post_executed_bytes as f64 / self.post_queries as f64)
    }

    /// True when both windows executed queries and the post-migration
    /// window ships strictly fewer bytes per query — the end-to-end
    /// payoff the migration was accepted for.
    #[must_use]
    pub fn improved(&self) -> bool {
        matches!(
            (self.pre_bytes_per_query(), self.post_bytes_per_query()),
            (Some(pre), Some(post)) if post < pre
        )
    }

    /// True when any query was answered degraded or shed, or a staged
    /// migration was abandoned — the exit-2 condition of the `cca live`
    /// taxonomy.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded + self.shed_admission + self.shed_overload + self.shed_deadline > 0
            || self.abandoned_migrations > 0
    }

    /// Recomputes the whole-run quantiles from the merged window
    /// histograms.
    pub fn refresh_quantiles(&mut self) {
        let mut merged = self.pre_histogram.clone();
        merged.merge(&self.mid_histogram);
        merged.merge(&self.post_histogram);
        self.p50_ns = merged.quantile_upper_bound(0.50);
        self.p95_ns = merged.quantile_upper_bound(0.95);
        self.p99_ns = merged.quantile_upper_bound(0.99);
    }

    /// Human-readable summary (stderr companion of the machine report).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} epochs: served {}/{} queries ({} degraded, {} shed: {} admission / {} overload / {} deadline)",
            self.epochs,
            self.served,
            self.queries,
            self.degraded,
            self.shed_admission + self.shed_overload + self.shed_deadline,
            self.shed_admission,
            self.shed_overload,
            self.shed_deadline,
        );
        let _ = writeln!(
            out,
            "migrations: {} staged, {} abandoned; {} bytes over {} epochs (max {}/epoch, budget {})",
            self.migrations,
            self.abandoned_migrations,
            self.migrated_bytes,
            self.migration_epochs,
            self.max_epoch_migrated_bytes,
            self.migration_budget,
        );
        match (self.pre_bytes_per_query(), self.post_bytes_per_query()) {
            (Some(pre), Some(post)) => {
                let _ = writeln!(
                    out,
                    "shipped bytes/query: {pre:.1} pre-migration -> {post:.1} post-migration ({:+.1}%)",
                    (post / pre - 1.0) * 100.0
                );
            }
            (Some(pre), None) => {
                let _ = writeln!(out, "shipped bytes/query: {pre:.1} (no post-migration window)");
            }
            _ => {}
        }
        let _ = writeln!(
            out,
            "virtual latency p50/p95/p99: {}/{}/{} ns; final feasible {}",
            self.p50_ns, self.p95_ns, self.p99_ns, self.final_feasible
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_dyadic_and_exhaustive() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            let hi = LatencyHistogram::bucket_upper_bound(i);
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "upper bound of {i}");
            if i < 64 {
                assert_eq!(
                    LatencyHistogram::bucket_of(hi + 1),
                    i + 1,
                    "bound {i} is inclusive"
                );
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0, "empty histogram");
        // 90 fast samples (bucket of 100 = 7, bound 127), 10 slow
        // (bucket of 10_000 = 14, bound 16383).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile_upper_bound(0.50), 127);
        assert_eq!(h.quantile_upper_bound(0.90), 127);
        assert_eq!(h.quantile_upper_bound(0.95), 16383);
        assert_eq!(h.quantile_upper_bound(1.0), 16383);
        assert_eq!(h.quantile_upper_bound(0.0), 127, "rank floors at 1");
        let nonempty: Vec<_> = h.nonempty().collect();
        assert_eq!(nonempty, vec![(7, 90), (14, 10)]);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn report_partition_invariant() {
        let mut r = ServingReport {
            queries: 10,
            served: 6,
            degraded: 1,
            shed_admission: 2,
            shed_overload: 1,
            shed_deadline: 0,
            ..ServingReport::default()
        };
        for _ in 0..7 {
            r.histogram.record(50);
        }
        assert!(r.counters_consistent());
        assert!(r.degraded());
        r.served += 1;
        assert!(!r.counters_consistent(), "partition must be exact");
    }

    #[test]
    fn refresh_quantiles_reads_the_histogram() {
        let mut r = ServingReport::default();
        r.histogram.record(1000);
        r.refresh_quantiles();
        assert_eq!(r.p50_ns, LatencyHistogram::bucket_upper_bound(10));
        assert_eq!(r.p50_ns, 1023);
        assert_eq!(r.p99_ns, 1023);
        assert!(r.summary().contains("p50/p95/p99"));
    }

    #[test]
    fn merge_sums_bucket_wise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        a.record(100);
        b.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.nonempty().collect::<Vec<_>>(), vec![(7, 3), (14, 1)]);
    }

    #[test]
    fn live_report_partition_and_window_invariants() {
        let mut r = LiveReport {
            epochs: 3,
            queries: 12,
            served: 8,
            degraded: 1,
            shed_admission: 2,
            shed_overload: 1,
            shed_deadline: 0,
            pre_queries: 4,
            post_queries: 3,
            migration_budget: 64,
            max_epoch_migrated_bytes: 64,
            ..LiveReport::default()
        };
        for _ in 0..4 {
            r.pre_histogram.record(50);
        }
        for _ in 0..2 {
            r.mid_histogram.record(50);
        }
        for _ in 0..3 {
            r.post_histogram.record(50);
        }
        assert!(r.counters_consistent());
        assert!(r.within_budget());
        assert!(r.degraded(), "shed queries mark the run degraded");
        r.max_epoch_migrated_bytes = 65;
        assert!(!r.within_budget(), "one over-budget epoch must trip the gate");
        r.max_epoch_migrated_bytes = 64;
        r.pre_queries += 1;
        assert!(!r.counters_consistent(), "window scalars must match histograms");
    }

    #[test]
    fn live_report_improvement_requires_both_windows() {
        let mut r = LiveReport {
            pre_queries: 10,
            pre_executed_bytes: 1000,
            ..LiveReport::default()
        };
        assert_eq!(r.pre_bytes_per_query(), Some(100.0));
        assert_eq!(r.post_bytes_per_query(), None);
        assert!(!r.improved(), "no post window: no improvement claim");
        r.post_queries = 10;
        r.post_executed_bytes = 800;
        assert!(r.improved());
        r.post_executed_bytes = 1000;
        assert!(!r.improved(), "equality is not strict improvement");
        assert!(r.summary().contains("shipped bytes/query"));
    }

    #[test]
    fn live_report_abandoned_migration_marks_degraded() {
        let r = LiveReport {
            abandoned_migrations: 1,
            ..LiveReport::default()
        };
        assert!(r.degraded());
        assert!(!LiveReport::default().degraded());
    }
}
