//! Correlation-aware object placement for multi-object operations.
//!
//! Rust reproduction of the core contribution of *Zhong, Shen, Seiferas,
//! "Correlation-Aware Object Placement for Multi-Object Operations",
//! ICDCS 2008*: the **Capacity-Constrained Assignment (CCA)** problem and a
//! polynomial-time randomized solution whose expected communication cost is
//! optimal.
//!
//! # The problem
//!
//! Given objects with sizes, nodes with capacities, and pair correlations
//! (probability two objects are requested together), find a placement
//! minimising the total communication cost of split pairs
//! (`Σ_{f(i)≠f(j)} r(i,j)·w(i,j)`) subject to per-node capacity. The
//! problem is NP-hard (it embeds minimum n-way cut).
//!
//! # The solution
//!
//! 1. Formulate the integer program of the paper's Figure 4
//!    ([`figure4::Figure4Lp`]).
//! 2. Relax to a linear program and solve it — here via an equivalent
//!    cutting-plane formulation that stays compact ([`relax`]).
//! 3. Round the fractional solution with the paper's Algorithm 2.1
//!    ([`rounding`]), whose expected cost equals the LP optimum (Theorem 2)
//!    and whose expected loads respect the capacities (Theorem 3).
//!
//! Baselines ([`greedy`], [`random`]), the important-object partial
//! optimization of §3.1 ([`scope`]), and an exact branch-and-bound oracle
//! for small instances ([`exact`]) complete the reproduction.
//!
//! # Quickstart
//!
//! ```
//! use cca_core::{place, CcaProblem, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CcaProblem::builder();
//! let car = b.add_object("car", 100);
//! let dealer = b.add_object("dealer", 80);
//! let software = b.add_object("software", 90);
//! let download = b.add_object("download", 70);
//! b.add_pair(car, dealer, 0.30, 80.0)?;       // strongly correlated
//! b.add_pair(software, download, 0.25, 70.0)?; // strongly correlated
//! b.add_pair(car, download, 0.01, 70.0)?;      // weakly correlated
//! let problem = b.uniform_capacities(2, 200).build()?;
//!
//! let report = place(&problem, &Strategy::lprr())?;
//! // LPRR co-locates the strong pairs: only the weak pair may be split.
//! assert!(report.cost <= 0.7 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Index-based loops over matrix rows/nodes are the clearest idiom for the
// numeric code in this crate; the iterator rewrites clippy suggests obscure
// the row/column arithmetic.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod controller;
pub mod error;
pub mod exact;
pub mod figure4;
pub mod fractional;
pub mod graph;
pub mod greedy;
pub mod migrate;
pub mod persist;
pub mod placement;
pub mod problem;
pub mod random;
pub mod relax;
pub mod replica;
pub mod repair;
pub mod resilience;
pub mod resources;
pub mod rounding;
pub mod scope;
pub mod serving;
pub mod shard;
pub mod solver;

pub use audit::{audit_placement, CapacityViolation, PlacementAudit, SplitPair};
pub use cluster::{capacity_bounded_clusters, inter_cluster_weight};
pub use controller::{
    quantize_estimate, Controller, ControllerConfig, ControllerReport, EpochObservation,
    EpochOutcome, FaultRecovery,
};
pub use exact::{exact_placement, ExactOptions};
pub use fractional::FractionalPlacement;
pub use graph::{CorrelationGraph, Edge, EdgeId, IncrementalCost, PlacementBatch};
pub use greedy::greedy_placement;
pub use migrate::{
    drain_node, improve_in_place, improve_replicas_in_place, migration_bytes, reconcile,
    replica_migration_bytes, MigrateOptions, MigrationOutcome, MigrationSchedule, MigrationSlice,
    ReplicaMigrationOutcome,
};
pub use persist::{
    format_controller_report, format_live_report, format_placement, format_replica_placement,
    format_serving_report, read_controller_report, read_live_report, read_placement,
    read_replica_placement, read_serving_report, write_controller_report, write_live_report,
    write_placement, write_replica_placement, write_serving_report,
};
pub use placement::Placement;
pub use problem::{CcaProblem, CcaProblemBuilder, ObjectId, Pair, ProblemError};
pub use random::random_hash_placement;
pub use replica::{spread_copies, validate_replica_spec, DomainTree, ReplicaPlacement};
pub use relax::{
    construct_clustered_vertex, construct_optimal_vertex, solve_relaxation, RelaxMethod, RelaxOptions, RelaxOutcome,
    StopReason,
};
pub use repair::{repair_capacity, repair_replica_spread, RepairOutcome, ReplicaRepairOutcome};
pub use resilience::{
    solve_resilient, solve_resilient_replicated, solve_resilient_with_faults, survive_domain_loss,
    survive_node_loss, DegradationReport, DomainLossReport, FaultPlan, NodeLossReport,
    ResilienceOptions, ResilientPlacement, ResilientReplicaPlacement, Rung, RungAttempt,
    RungOutcome, SolveBudget, LADDER,
};
pub use resources::{Resource, ResourceError};
pub use error::{CcaError, PlaceError};
pub use rounding::{
    round_best_of, round_best_of_within, round_once, round_samples, round_samples_scored,
    RoundingOutcome,
};
pub use scope::{compose_with_hashed_rest, importance_ranking, scope_subproblem};
pub use serving::{LatencyHistogram, LiveReport, ServingReport};
pub use shard::ShardedGraph;
pub use solver::{place, place_partial, place_partial_with, LprrOptions, PlacementReport, Strategy};
