//! The greedy correlation-aware baseline (paper §4.1).
//!
//! "We examine keyword pairs in the descending order of their query
//! correlations and always place the most correlated pair on the same node
//! as long as the node capacity permits it."

use crate::placement::Placement;
use crate::problem::{CcaProblem, ObjectId};
use cca_hash::hash_placement;

/// Computes the greedy correlation-aware placement.
///
/// Pairs are visited in descending correlation (ties broken by pair id for
/// determinism):
///
/// * both endpoints unplaced → place both on the node with the most free
///   space that fits both (skip if none fits);
/// * one endpoint placed → co-locate the other if its node has room;
/// * both placed → nothing to do.
///
/// Objects left unplaced afterwards (never co-requested, or skipped for
/// capacity) are assigned by MD5 hash, falling back to the least-loaded
/// node with room, and finally to the overall least-loaded node, so the
/// function always returns a complete placement.
///
/// ```
/// use cca_core::{greedy_placement, CcaProblem};
/// # fn main() -> Result<(), cca_core::ProblemError> {
/// let mut b = CcaProblem::builder();
/// let a = b.add_object("a", 10);
/// let c = b.add_object("b", 10);
/// b.add_pair(a, c, 0.9, 5.0)?;
/// let problem = b.uniform_capacities(2, 20).build()?;
/// let placement = greedy_placement(&problem);
/// assert_eq!(placement.node_of(a), placement.node_of(c));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn greedy_placement(problem: &CcaProblem) -> Placement {
    let t = problem.num_objects();
    let n = problem.num_nodes();
    let mut assignment = vec![u32::MAX; t];
    // free[node][dim]: dimension 0 is storage, then secondary resources.
    let mut free: Vec<Vec<i128>> = (0..n)
        .map(|k| {
            let mut v = vec![problem.capacity(k) as i128];
            for res in problem.resources() {
                v.push(res.capacity(k) as i128);
            }
            v
        })
        .collect();
    let demands: Vec<Vec<i128>> = problem
        .objects()
        .map(|o| {
            problem
                .demand_vector(o)
                .into_iter()
                .map(|d| d as i128)
                .collect()
        })
        .collect();
    let fits = |free_k: &[i128], demand: &[i128]| {
        free_k.iter().zip(demand).all(|(&f, &d)| f >= d)
    };

    let place = |assignment: &mut Vec<u32>, free: &mut Vec<Vec<i128>>, i: ObjectId, k: usize| {
        assignment[i.index()] = k as u32;
        for (f, d) in free[k].iter_mut().zip(&demands[i.index()]) {
            *f -= d;
        }
    };

    // The graph precomputes the (descending correlation, ties (a, b))
    // visit order once at build; the unique (a, b) tie-break makes it a
    // total order, so it equals the per-call sort this replaces.
    for &e in problem.graph().edges_by_correlation() {
        let pair = &problem.pairs()[e.index()];
        let (a, b) = (pair.a, pair.b);
        let (pa, pb) = (assignment[a.index()], assignment[b.index()]);
        match (pa, pb) {
            (u32::MAX, u32::MAX) => {
                let need: Vec<i128> = demands[a.index()]
                    .iter()
                    .zip(&demands[b.index()])
                    .map(|(&x, &y)| x + y)
                    .collect();
                // Most free storage first, ties by node id.
                if let Some(k) = (0..n)
                    .filter(|&k| fits(&free[k], &need))
                    .max_by_key(|&k| (free[k][0], std::cmp::Reverse(k)))
                {
                    place(&mut assignment, &mut free, a, k);
                    place(&mut assignment, &mut free, b, k);
                }
            }
            (k, u32::MAX)
                if fits(&free[k as usize], &demands[b.index()]) => {
                    place(&mut assignment, &mut free, b, k as usize);
                }
            (u32::MAX, k)
                if fits(&free[k as usize], &demands[a.index()]) => {
                    place(&mut assignment, &mut free, a, k as usize);
                }
            _ => {}
        }
    }

    // Complete the placement for objects the greedy pass never placed.
    for i in problem.objects() {
        if assignment[i.index()] != u32::MAX {
            continue;
        }
        let demand = &demands[i.index()];
        let hashed = hash_placement(problem.name(i), n);
        let k = if fits(&free[hashed], demand) {
            hashed
        } else if let Some(k) = (0..n)
            .filter(|&k| fits(&free[k], demand))
            .max_by_key(|&k| (free[k][0], std::cmp::Reverse(k)))
        {
            k
        } else {
            // Nothing fits: overflow onto the least-loaded node.
            (0..n)
                .max_by_key(|&k| (free[k][0], std::cmp::Reverse(k)))
                .expect("n > 0")
        };
        place(&mut assignment, &mut free, i, k);
    }

    Placement::new(assignment, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_correlated_pair_is_colocated() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.9, 1.0).unwrap();
        b.add_pair(o[2], o[3], 0.8, 1.0).unwrap();
        b.add_pair(o[1], o[2], 0.1, 1.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let pl = greedy_placement(&p);
        assert_eq!(pl.node_of(o[0]), pl.node_of(o[1]));
        assert_eq!(pl.node_of(o[2]), pl.node_of(o[3]));
        assert!(pl.within_capacity(&p, 1.0));
        // Cost: only the weak (o1,o2) pair can be split.
        assert!(pl.communication_cost(&p) <= 0.1 + 1e-12);
    }

    #[test]
    fn capacity_prevents_colocation() {
        let mut b = CcaProblem::builder();
        let a = b.add_object("a", 10);
        let c = b.add_object("b", 10);
        b.add_pair(a, c, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let pl = greedy_placement(&p);
        assert_ne!(pl.node_of(a), pl.node_of(c));
        assert!(pl.within_capacity(&p, 1.0));
    }

    #[test]
    fn uncorrelated_objects_still_get_placed() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..6).map(|i| b.add_object(format!("lonely{i}"), 5)).collect();
        let p = b.uniform_capacities(3, 15).build().unwrap();
        let pl = greedy_placement(&p);
        assert_eq!(pl.num_objects(), 6);
        assert!(pl.within_capacity(&p, 1.0));
        let _ = o;
    }

    #[test]
    fn greedy_chains_onto_existing_groups() {
        // (a,b) strongest, then (b,c): c should join a,b's node.
        let mut b = CcaProblem::builder();
        let oa = b.add_object("a", 5);
        let ob = b.add_object("b", 5);
        let oc = b.add_object("c", 5);
        b.add_pair(oa, ob, 0.9, 1.0).unwrap();
        b.add_pair(ob, oc, 0.8, 1.0).unwrap();
        let p = b.uniform_capacities(2, 15).build().unwrap();
        let pl = greedy_placement(&p);
        assert_eq!(pl.node_of(oa), pl.node_of(ob));
        assert_eq!(pl.node_of(ob), pl.node_of(oc));
    }

    #[test]
    fn greedy_is_deterministic() {
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..8).map(|i| b.add_object(format!("o{i}"), 3 + i as u64)).collect();
        for i in 0..8 {
            for j in i + 1..8 {
                b.add_pair(o[i], o[j], ((i * 7 + j) % 5) as f64 / 5.0 + 0.01, 2.0)
                    .unwrap();
            }
        }
        let p = b.uniform_capacities(3, 30).build().unwrap();
        assert_eq!(greedy_placement(&p), greedy_placement(&p));
    }

    #[test]
    fn overflow_fallback_places_everything() {
        // Capacities too small for everything: greedy must still return a
        // complete placement (mirroring the paper's tolerance of slight
        // overflow under conservative capacities).
        let mut b = CcaProblem::builder();
        let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 10)).collect();
        b.add_pair(o[0], o[1], 0.5, 1.0).unwrap();
        let p = b.uniform_capacities(2, 12).build().unwrap();
        let pl = greedy_placement(&p);
        assert_eq!(pl.num_objects(), 4);
        // Not within strict capacity (40 > 24 total), but complete.
        assert!(pl.max_capacity_violation(&p) > 0);
    }
}
