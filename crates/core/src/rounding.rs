//! Randomized rounding — the paper's Algorithm 2.1.
//!
//! Repeatedly draw a node `k` and a threshold `r ∈ [0,1]`, and place every
//! not-yet-placed object `i` with `x_{i,k} >= r` at node `k`. This dependent
//! rounding (in the style of Kleinberg–Tardos) guarantees:
//!
//! * **Lemma 1** — object `i` lands on node `k` with probability exactly
//!   `x_{i,k}`;
//! * **Lemma 2** — `Prob[i, j split] <= z_{i,j}`;
//! * **Theorem 2** — the expected cost of the rounded placement equals the
//!   LP optimum;
//! * **Theorem 3** — the expected per-node load respects the capacities.
//!
//! All four are re-verified statistically in this module's tests and the
//! crate's property tests.

use crate::error::CcaError;
use crate::fractional::FractionalPlacement;
use crate::graph::PlacementBatch;
use crate::placement::Placement;
use crate::problem::CcaProblem;
use cca_par::{par_map_indexed, DeadlineGate};
use cca_rand::{Rng, StreamFamily};

/// Safety cap on rounding steps; with valid stochastic rows the loop
/// terminates long before this (each step places an object with probability
/// at least `1/|N|`).
const MAX_STEPS_PER_OBJECT: usize = 100_000;

/// Performs one run of Algorithm 2.1 on `fractional`.
///
/// # Errors
///
/// [`CcaError::NotStochastic`] if `fractional` is not (approximately)
/// row-stochastic — call [`FractionalPlacement::normalise`] first — and
/// [`CcaError::RoundingDiverged`] if the step cap is exhausted (indicating
/// invalid input despite the check).
pub fn round_once<R: Rng + ?Sized>(
    fractional: &FractionalPlacement,
    rng: &mut R,
) -> Result<Placement, CcaError> {
    if !fractional.is_stochastic(1e-6) {
        return Err(CcaError::NotStochastic);
    }
    round_unchecked(fractional, rng)
}

/// [`round_once`] minus the row-stochastic check, for the repetition loops
/// that validate the matrix once up front instead of once per repetition.
fn round_unchecked<R: Rng + ?Sized>(
    fractional: &FractionalPlacement,
    rng: &mut R,
) -> Result<Placement, CcaError> {
    let t = fractional.num_objects();
    let n = fractional.num_nodes();
    let mut assignment = vec![u32::MAX; t];
    let mut unplaced: Vec<u32> = (0..t as u32).collect();
    let mut steps = 0usize;
    let max_steps = MAX_STEPS_PER_OBJECT.saturating_mul(t.max(1));
    while !unplaced.is_empty() {
        if steps >= max_steps {
            return Err(CcaError::RoundingDiverged { steps });
        }
        steps += 1;
        let k = rng.random_range(0..n);
        let r: f64 = rng.random();
        unplaced.retain(|&i| {
            if r <= fractional.fraction(crate::problem::ObjectId(i), k) {
                assignment[i as usize] = k as u32;
                false
            } else {
                true
            }
        });
    }
    Ok(Placement::new(assignment, n))
}

/// Outcome of [`round_best_of`].
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// The selected placement.
    pub placement: Placement,
    /// Its communication cost on the problem.
    pub cost: f64,
    /// Whether it satisfies the capacities (with the slack used).
    pub within_capacity: bool,
    /// Number of rounding repetitions actually performed (may be fewer
    /// than requested when a deadline cuts the loop short).
    pub repetitions: usize,
    /// Worst load-to-raw-capacity ratio across storage and every
    /// secondary resource (1.0 = exactly full; `INFINITY` if a
    /// zero-capacity node carries load). Lets callers rank candidates
    /// even when none is feasible.
    pub max_load_ratio: f64,
}

/// Worst per-node load divided by *raw* (un-slacked) capacity, across the
/// storage dimension and every secondary resource. A node with zero
/// capacity and non-zero load yields `INFINITY`; with zero load it
/// contributes nothing.
pub(crate) fn max_load_ratio(problem: &CcaProblem, placement: &Placement) -> f64 {
    fn worst(loads: &[u64], capacity: impl Fn(usize) -> u64) -> f64 {
        loads
            .iter()
            .enumerate()
            .map(|(k, &load)| {
                let cap = capacity(k);
                if load == 0 {
                    0.0
                } else if cap == 0 {
                    f64::INFINITY
                } else {
                    load as f64 / cap as f64
                }
            })
            .fold(0.0, f64::max)
    }
    let mut ratio = worst(&placement.loads(problem), |k| problem.capacity(k));
    for (r, resource) in problem.resources().iter().enumerate() {
        ratio = ratio.max(worst(&placement.resource_loads(problem, r), |k| {
            resource.capacity(k)
        }));
    }
    ratio
}

/// Runs Algorithm 2.1 `repetitions` times and keeps the best placement, as
/// the paper suggests: "To achieve a high confidence … we can repeat the
/// randomized rounding several times and pick the best solution."
///
/// Capacity-respecting placements (within `capacity_slack`, e.g. `1.0` for
/// strict) are preferred over violating ones; among feasible candidates
/// lower communication cost wins, and among infeasible ones the *least
/// overloaded* (smallest [`RoundingOutcome::max_load_ratio`], ties broken
/// by cost) wins, so even an all-infeasible run hands back the most
/// repairable placement instead of an arbitrary one.
///
/// Repetition `i` always draws from substream `i` of `seed` (via
/// [`StreamFamily`]) and candidates are compared in repetition order, so
/// the selected placement is **byte-identical for every `threads` value**
/// — `threads = 1` runs inline with no pool at all.
///
/// # Errors
///
/// [`CcaError::NoRepetitions`] if `repetitions == 0`,
/// [`CcaError::DimensionMismatch`] if the placement/problem dimensions
/// disagree, plus anything [`round_once`] reports.
pub fn round_best_of(
    fractional: &FractionalPlacement,
    problem: &CcaProblem,
    repetitions: usize,
    capacity_slack: f64,
    seed: u64,
) -> Result<RoundingOutcome, CcaError> {
    round_best_of_within(
        fractional,
        problem,
        repetitions,
        capacity_slack,
        None,
        seed,
        1,
    )
}

/// Deadline-aware, parallel [`round_best_of`]: repetitions run across up to
/// `threads` workers, each drawing from its own per-repetition substream of
/// `seed`. A shared [`DeadlineGate`] is checked between *individual*
/// repetitions on every worker (repetition 0 is exempt, so at least one
/// candidate always exists), and [`RoundingOutcome::repetitions`] records
/// how many runs actually happened. `deadline = None` behaves exactly like
/// [`round_best_of`] plus the fan-out.
///
/// Determinism: when the deadline does not fire, the result is
/// byte-identical for every `threads` value, because repetition `i`'s
/// randomness depends only on `(seed, i)` and ties are broken by
/// repetition index — never by completion order.
pub fn round_best_of_within(
    fractional: &FractionalPlacement,
    problem: &CcaProblem,
    repetitions: usize,
    capacity_slack: f64,
    deadline: Option<std::time::Instant>,
    seed: u64,
    threads: usize,
) -> Result<RoundingOutcome, CcaError> {
    if repetitions == 0 {
        return Err(CcaError::NoRepetitions);
    }
    if fractional.num_objects() != problem.num_objects() {
        return Err(CcaError::DimensionMismatch {
            what: "object count",
            expected: problem.num_objects(),
            actual: fractional.num_objects(),
        });
    }
    if fractional.num_nodes() != problem.num_nodes() {
        return Err(CcaError::DimensionMismatch {
            what: "node count",
            expected: problem.num_nodes(),
            actual: fractional.num_nodes(),
        });
    }
    if !fractional.is_stochastic(1e-6) {
        return Err(CcaError::NotStochastic);
    }
    let family = StreamFamily::new(seed);
    let gate = DeadlineGate::new(deadline);
    let candidates: Vec<Option<Result<Placement, CcaError>>> =
        par_map_indexed(threads, repetitions, |i| {
            // The deadline fires between individual repetitions on every
            // worker; repetition 0 is exempt so a candidate always exists.
            if i > 0 && gate.expired() {
                return None;
            }
            let mut rng = family.stream(i as u64);
            Some(round_unchecked(fractional, &mut rng))
        });
    // Collect survivors strictly in repetition-index order: with a fixed
    // seed the selection below is a pure function of the candidate list,
    // so thread scheduling cannot influence which placement wins.
    let mut produced: Vec<Placement> = Vec::with_capacity(repetitions);
    for candidate in candidates.into_iter().flatten() {
        produced.push(candidate?);
    }
    // The gate also guards scoring: a k-wide batch cost walk must not
    // *start* after the deadline trips (the same sticky-atomic contract
    // that gates repetition generation). Only the exempt first candidate
    // is kept and scored late.
    if produced.len() > 1 && gate.expired() {
        produced.truncate(1);
    }
    // One CSR edge walk scores every surviving candidate; column i is
    // bit-identical to `produced[i].communication_cost(problem)` (with
    // sharding enabled the walk runs shard-parallel on the same workers,
    // with the single-shard case preserving those exact bits).
    let costs = problem.eval_cost_batch(&PlacementBatch::from_placements(&produced), threads);
    let performed = produced.len();
    let mut best: Option<(bool, f64, f64, usize)> = None;
    for (idx, p) in produced.iter().enumerate() {
        let cost = costs[idx];
        let feasible = p.within_all_capacities(problem, capacity_slack);
        let ratio = max_load_ratio(problem, p);
        let better = match &best {
            None => true,
            Some((bf, bc, br, _)) => match (feasible, *bf) {
                (true, false) => true,
                (false, true) => false,
                // Both feasible: cheapest wins.
                (true, true) => cost < *bc,
                // Both infeasible: least overloaded wins, ties by cost.
                (false, false) => ratio < *br || (ratio == *br && cost < *bc),
            },
        };
        if better {
            best = Some((feasible, cost, ratio, idx));
        }
    }
    let (within_capacity, cost, max_load_ratio, best_idx) = best.expect("repetition 0 runs");
    let placement = produced.swap_remove(best_idx);
    Ok(RoundingOutcome {
        placement,
        cost,
        within_capacity,
        repetitions: performed,
        max_load_ratio,
    })
}

/// Draws `repetitions` independent Algorithm 2.1 samples, one per
/// substream of `seed`, across up to `threads` workers. Sample `i` is a
/// pure function of `(fractional, seed, i)`, so the returned vector is
/// identical for every `threads` value — this is the statistical raw
/// material for the Lemma 1 / Lemma 2 test batteries, which need the *full*
/// sample rather than the best-of selection.
///
/// # Errors
///
/// [`CcaError::NotStochastic`] / [`CcaError::RoundingDiverged`] as for
/// [`round_once`].
pub fn round_samples(
    fractional: &FractionalPlacement,
    repetitions: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<Placement>, CcaError> {
    if !fractional.is_stochastic(1e-6) {
        return Err(CcaError::NotStochastic);
    }
    let family = StreamFamily::new(seed);
    par_map_indexed(threads, repetitions, |i| {
        let mut rng = family.stream(i as u64);
        round_unchecked(fractional, &mut rng)
    })
    .into_iter()
    .collect()
}

/// [`round_samples`] plus a cost per sample from **one** batched CSR walk
/// (`crate::CorrelationGraph::cost_batch`) instead of a full edge scan per
/// sample. `costs[i]` is bit-identical to
/// `samples[i].communication_cost(problem)`, and the samples are the same
/// thread-invariant vector [`round_samples`] returns.
///
/// # Errors
///
/// [`CcaError::DimensionMismatch`] if `fractional` and `problem` disagree
/// on dimensions, plus anything [`round_samples`] reports.
pub fn round_samples_scored(
    fractional: &FractionalPlacement,
    problem: &CcaProblem,
    repetitions: usize,
    seed: u64,
    threads: usize,
) -> Result<(Vec<Placement>, Vec<f64>), CcaError> {
    if fractional.num_objects() != problem.num_objects() {
        return Err(CcaError::DimensionMismatch {
            what: "object count",
            expected: problem.num_objects(),
            actual: fractional.num_objects(),
        });
    }
    if fractional.num_nodes() != problem.num_nodes() {
        return Err(CcaError::DimensionMismatch {
            what: "node count",
            expected: problem.num_nodes(),
            actual: fractional.num_nodes(),
        });
    }
    let samples = round_samples(fractional, repetitions, seed, threads)?;
    if samples.is_empty() {
        return Ok((samples, Vec::new()));
    }
    let costs = problem.eval_cost_batch(&PlacementBatch::from_placements(&samples), threads);
    Ok((samples, costs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CcaProblem, ObjectId};
    use cca_rand::rngs::StdRng;
    use cca_rand::SeedableRng;

    fn frac(x: Vec<f64>, t: usize, n: usize) -> FractionalPlacement {
        FractionalPlacement::new(x, t, n)
    }

    #[test]
    fn integral_input_rounds_to_itself() {
        let f = FractionalPlacement::from_integral(&[1, 0, 2], 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let p = round_once(&f, &mut rng).unwrap();
            assert_eq!(p.as_slice(), &[1, 0, 2]);
        }
    }

    /// Lemma 1: marginal placement probabilities equal the fractions.
    #[test]
    fn lemma1_marginals_match_fractions() {
        let f = frac(vec![0.7, 0.3, 0.2, 0.8], 2, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut count = [[0usize; 2]; 2];
        for _ in 0..trials {
            let p = round_once(&f, &mut rng).unwrap();
            count[0][p.node_of(ObjectId(0))] += 1;
            count[1][p.node_of(ObjectId(1))] += 1;
        }
        for i in 0..2 {
            for k in 0..2 {
                let emp = count[i][k] as f64 / trials as f64;
                let want = f.fraction(ObjectId(i as u32), k);
                assert!(
                    (emp - want).abs() < 0.02,
                    "object {i} node {k}: empirical {emp}, expected {want}"
                );
            }
        }
    }

    /// Lemma 2: split probability bounded by the split indicator, and
    /// identical rows are never split.
    #[test]
    fn lemma2_split_probability_bounded() {
        // Identical fractional rows -> never split (the crux of dependent
        // rounding; independent per-object rounding would split them half
        // the time).
        let same = frac(vec![0.5, 0.5, 0.5, 0.5], 2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let p = round_once(&same, &mut rng).unwrap();
            assert_eq!(
                p.node_of(ObjectId(0)),
                p.node_of(ObjectId(1)),
                "identical rows were split"
            );
        }

        // Partially overlapping rows: empirical split rate <= z + noise.
        let f = frac(vec![0.7, 0.3, 0.3, 0.7], 2, 2);
        let z = f.split_indicator(ObjectId(0), ObjectId(1)); // 0.4
        let trials = 20_000;
        let mut split = 0;
        for _ in 0..trials {
            let p = round_once(&f, &mut rng).unwrap();
            if p.node_of(ObjectId(0)) != p.node_of(ObjectId(1)) {
                split += 1;
            }
        }
        let emp = split as f64 / trials as f64;
        assert!(emp <= z + 0.02, "split rate {emp} exceeds z = {z}");
    }

    /// Theorem 2: expected rounded cost ≈ fractional expected cost.
    #[test]
    fn theorem2_expected_cost_matches() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 1);
        let o1 = b.add_object("b", 1);
        let o2 = b.add_object("c", 1);
        b.add_pair(o0, o1, 1.0, 10.0).unwrap();
        b.add_pair(o1, o2, 0.5, 4.0).unwrap();
        let p = b.uniform_capacities(2, 3).build().unwrap();
        let f = frac(vec![0.6, 0.4, 0.6, 0.4, 0.1, 0.9], 3, 2);
        let expected = f.expected_cost(&p);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 30_000;
        let total: f64 = (0..trials)
            .map(|_| round_once(&f, &mut rng).unwrap().communication_cost(&p))
            .sum();
        let emp = total / trials as f64;
        // Lemma 2 gives <= z per pair; for two-node problems the bound is
        // tight, so the empirical mean should be close to (and not above)
        // the expectation.
        assert!(
            (emp - expected).abs() < 0.15,
            "empirical {emp} vs expected {expected}"
        );
    }

    /// Theorem 3: expected loads within capacity.
    #[test]
    fn theorem3_expected_loads() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 10);
        b.add_pair(o0, o1, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 12).build().unwrap();
        let f = frac(vec![0.6, 0.4, 0.4, 0.6], 2, 2);
        // Expected loads are 10*(0.6+0.4) = 10 <= 12 on each node.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let mut sums = [0.0f64; 2];
        for _ in 0..trials {
            let pl = round_once(&f, &mut rng).unwrap();
            let loads = pl.loads(&p);
            sums[0] += loads[0] as f64;
            sums[1] += loads[1] as f64;
        }
        for k in 0..2 {
            let mean = sums[k] / trials as f64;
            assert!(
                mean <= p.capacity(k) as f64 + 0.3,
                "node {k} expected load {mean} exceeds capacity"
            );
        }
    }

    #[test]
    fn identical_rows_always_colocate() {
        // A subtle consequence of dependent rounding: identical fractional
        // rows are NEVER split, even when co-location violates capacity.
        // (This is why the solver pairs rounding with a repair pass.)
        let f = frac(vec![0.5, 0.5, 0.5, 0.5], 2, 2);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let p = round_once(&f, &mut rng).unwrap();
            assert_eq!(p.node_of(ObjectId(0)), p.node_of(ObjectId(1)));
        }
    }

    #[test]
    fn best_of_prefers_feasible_then_cheap() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 10);
        b.add_pair(o0, o1, 1.0, 5.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        // Asymmetric rows: rounding sometimes co-locates (infeasible, load
        // 20 > 10) and sometimes splits (feasible, cost 5). Best-of must
        // select the feasible split even though the infeasible outcome has
        // cost 0.
        let f = frac(vec![0.9, 0.1, 0.1, 0.9], 2, 2);
        let out = round_best_of(&f, &p, 64, 1.0, 6).unwrap();
        // Split probability is z = 0.8 per draw, so 64 tries find one.
        assert!(out.within_capacity);
        assert!((out.cost - 5.0).abs() < 1e-12);
        assert_eq!(out.repetitions, 64);
    }

    #[test]
    fn all_infeasible_selects_least_overloaded() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 10);
        b.add_pair(o0, o1, 1.0, 5.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        // With zero slack no outcome is "feasible": co-location loads one
        // node to 20/10 (ratio 2.0, cost 0) while a split loads both to
        // 10/10 (ratio 1.0, cost 5). The least-overloaded rule must pick
        // the split despite its higher cost.
        let f = frac(vec![0.9, 0.1, 0.1, 0.9], 2, 2);
        let out = round_best_of(&f, &p, 64, 0.0, 6).unwrap();
        assert!(!out.within_capacity);
        assert!((out.max_load_ratio - 1.0).abs() < 1e-12);
        assert!((out.cost - 5.0).abs() < 1e-12);
        assert_ne!(
            out.placement.node_of(ObjectId(0)),
            out.placement.node_of(ObjectId(1))
        );
    }

    #[test]
    fn expired_deadline_still_yields_one_candidate() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 1);
        let o1 = b.add_object("b", 1);
        b.add_pair(o0, o1, 1.0, 1.0).unwrap();
        let p = b.uniform_capacities(2, 2).build().unwrap();
        let f = frac(vec![0.5, 0.5, 0.5, 0.5], 2, 2);
        for threads in [1, 4] {
            let out = round_best_of_within(
                &f,
                &p,
                64,
                1.0,
                Some(std::time::Instant::now()),
                10,
                threads,
            )
            .unwrap();
            // The gate fires between individual repetitions on every
            // worker; only the exempt repetition 0 runs.
            assert_eq!(out.repetitions, 1, "threads = {threads}");
        }
    }

    #[test]
    fn best_of_is_thread_count_invariant() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 10);
        b.add_pair(o0, o1, 1.0, 5.0).unwrap();
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let f = frac(vec![0.9, 0.1, 0.1, 0.9], 2, 2);
        let serial = round_best_of_within(&f, &p, 48, 1.0, None, 0x5eed, 1).unwrap();
        for threads in [2, 8] {
            let par = round_best_of_within(&f, &p, 48, 1.0, None, 0x5eed, threads).unwrap();
            assert_eq!(
                par.placement.as_slice(),
                serial.placement.as_slice(),
                "threads = {threads}"
            );
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
            assert_eq!(par.max_load_ratio.to_bits(), serial.max_load_ratio.to_bits());
            assert_eq!(par.repetitions, serial.repetitions);
            assert_eq!(par.within_capacity, serial.within_capacity);
        }
    }

    #[test]
    fn samples_are_thread_count_invariant() {
        let f = frac(vec![0.7, 0.3, 0.3, 0.7], 2, 2);
        let serial = round_samples(&f, 100, 42, 1).unwrap();
        for threads in [2, 8] {
            let par = round_samples(&f, 100, 42, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn scored_samples_match_per_sample_costs() {
        let mut b = CcaProblem::builder();
        let o0 = b.add_object("a", 10);
        let o1 = b.add_object("b", 10);
        b.add_pair(o0, o1, 1.0, 5.0).unwrap();
        let p = b.uniform_capacities(2, 20).build().unwrap();
        let f = frac(vec![0.7, 0.3, 0.3, 0.7], 2, 2);
        for threads in [1, 4] {
            let (samples, costs) = round_samples_scored(&f, &p, 40, 42, threads).unwrap();
            assert_eq!(samples, round_samples(&f, 40, 42, threads).unwrap());
            assert_eq!(costs.len(), samples.len());
            for (s, c) in samples.iter().zip(&costs) {
                assert_eq!(c.to_bits(), s.communication_cost(&p).to_bits());
            }
        }
    }

    #[test]
    fn load_ratio_handles_zero_capacity_nodes() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 5);
        b.add_object("b", 5);
        let p = b.uniform_capacities(2, 10).build().unwrap();
        let dead = p.with_capacities(vec![10, 0]);
        let on_live = Placement::new(vec![0, 0], 2);
        let on_dead = Placement::new(vec![0, 1], 2);
        assert!((max_load_ratio(&dead, &on_live) - 1.0).abs() < 1e-12);
        assert!(max_load_ratio(&dead, &on_dead).is_infinite());
    }

    #[test]
    fn non_stochastic_input_is_rejected() {
        let f = frac(vec![0.9, 0.9, 0.1, 0.1], 2, 2);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(round_once(&f, &mut rng), Err(CcaError::NotStochastic));
    }

    #[test]
    fn zero_repetitions_is_an_error() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        let p = b.uniform_capacities(1, 1).build().unwrap();
        let f = frac(vec![1.0], 1, 1);
        assert!(matches!(
            round_best_of(&f, &p, 0, 1.0, 8),
            Err(CcaError::NoRepetitions)
        ));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut b = CcaProblem::builder();
        b.add_object("a", 1);
        b.add_object("b", 1);
        let p = b.uniform_capacities(2, 10).build().unwrap();
        // One object where the problem has two.
        let f = frac(vec![0.5, 0.5], 1, 2);
        assert!(matches!(
            round_best_of(&f, &p, 4, 1.0, 9),
            Err(CcaError::DimensionMismatch {
                what: "object count",
                expected: 2,
                actual: 1,
            })
        ));
    }
}
