//! End-to-end golden pin: the full LPRR pipeline (relaxation → rounding →
//! repair) on a small fixed instance must produce the exact same placement
//! cost for a fixed seed. Guards the determinism chain through `cca-rand`,
//! the LP solver's pivoting, and the rounding order all at once.

use cca_core::{place, CcaProblem, LprrOptions, RelaxOptions, Strategy};

/// A fixed 6-object, 3-node instance with two strongly correlated clusters
/// and one loner. Capacities force a real decision (no node can hold
/// everything).
fn golden_problem() -> CcaProblem {
    let mut b = CcaProblem::builder();
    let o: Vec<_> = (0..6)
        .map(|i| b.add_object(format!("o{i}"), 4 + (i % 3) as u64))
        .collect();
    // Cluster A: o0-o1-o2, cluster B: o3-o4, loner: o5.
    b.add_pair(o[0], o[1], 0.9, 4.0).unwrap();
    b.add_pair(o[1], o[2], 0.8, 3.0).unwrap();
    b.add_pair(o[0], o[2], 0.7, 2.0).unwrap();
    b.add_pair(o[3], o[4], 0.95, 5.0).unwrap();
    b.add_pair(o[2], o[3], 0.1, 1.0).unwrap();
    b.add_pair(o[4], o[5], 0.05, 1.0).unwrap();
    b.uniform_capacities(3, 14).build().unwrap()
}

#[test]
fn lprr_pipeline_cost_is_pinned() {
    let problem = golden_problem();
    let opts = LprrOptions {
        relax: RelaxOptions::default(),
        repetitions: 16,
        capacity_slack: 1.0,
        seed_with_greedy: true,
        repair: true,
        rng_seed: 20080617,
        threads: 1,
    };
    let report = place(&problem, &Strategy::Lprr(opts)).expect("lprr");

    // The LP lower bound and the realized rounded cost for this seed.
    let lb = report.lp_lower_bound.expect("lprr reports a bound");
    assert!(
        (lb - GOLDEN_LP_LOWER_BOUND).abs() < 1e-9,
        "LP lower bound drifted: got {lb}, want {GOLDEN_LP_LOWER_BOUND}"
    );
    assert!(
        (report.cost - GOLDEN_LPRR_COST).abs() < 1e-9,
        "LPRR cost drifted: got {}, want {GOLDEN_LPRR_COST}",
        report.cost
    );
    assert_eq!(report.placement.num_objects(), 6);
    assert!(report.placement.within_capacity(&problem, 1.0));
    // Both clusters co-located: the rounded solution keeps the strongly
    // correlated pairs together.
    assert_eq!(
        report.placement.node_of(cca_core::ObjectId(0)),
        report.placement.node_of(cca_core::ObjectId(1))
    );
    assert_eq!(
        report.placement.node_of(cca_core::ObjectId(3)),
        report.placement.node_of(cca_core::ObjectId(4))
    );
}

#[test]
fn deterministic_across_runs() {
    let problem = golden_problem();
    let a = place(&problem, &Strategy::lprr()).expect("lprr");
    let b = place(&problem, &Strategy::lprr()).expect("lprr");
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.cost, b.cost);
}

/// The LP optimum for [`golden_problem`]: cluster A (15 units) cannot fit
/// a 14-capacity node, so the relaxation pays to split one member off.
const GOLDEN_LP_LOWER_BOUND: f64 = 3.95;
/// The rounded cost for seed 20080617 — here the relaxation is integral,
/// so rounding recovers the LP optimum exactly.
const GOLDEN_LPRR_COST: f64 = 3.95;
