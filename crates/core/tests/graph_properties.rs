//! Property tests for the canonical CSR correlation graph and the
//! incremental move-delta accumulator.
//!
//! Every equality here is **exact** (`==` on `f64`, often on raw bits),
//! not epsilon-tolerant: the generator draws dyadic-rational weights
//! (multiples of 1/8 with small magnitudes), so every partial sum is
//! exactly representable and any summation-order discrepancy the graph
//! layer introduced would show up as a hard mismatch, not as noise under
//! a tolerance.

use cca_check::{gen, prop_assert, prop_assert_eq, Checker, Rng, Shrink, StdRng};
use cca_core::{
    improve_in_place, reconcile, CcaProblem, IncrementalCost, MigrateOptions, ObjectId, Placement,
};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/graph_properties.regressions");

/// Shrinkable description of a random CCA instance with dyadic weights
/// plus a placement and a move script over it.
#[derive(Debug, Clone)]
struct GraphCase {
    sizes: Vec<u8>,
    nodes: usize,
    /// (a, b, correlation eighths in 1..=8, cost in 1..=16)
    pairs: Vec<(usize, usize, u8, u8)>,
    /// Initial assignment, reduced modulo `nodes`.
    assignment: Vec<u8>,
    /// Move script: (object, target node), reduced modulo the dimensions.
    moves: Vec<(usize, usize)>,
}

impl Shrink for GraphCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for moves in self.moves.shrink() {
            out.push(GraphCase { moves, ..self.clone() });
        }
        for pairs in self.pairs.shrink() {
            out.push(GraphCase { pairs, ..self.clone() });
        }
        // The assignment must keep one entry per object.
        for nodes in self.nodes.shrink() {
            if nodes >= 1 {
                out.push(GraphCase { nodes, ..self.clone() });
            }
        }
        out
    }
}

fn graph_case(rng: &mut StdRng) -> GraphCase {
    let t = rng.random_range(2usize..10);
    let sizes = (0..t).map(|_| rng.random_range(1u8..12)).collect();
    let pairs = gen::vec(rng, 0..t * 3, |r| {
        (
            r.random_range(0..t),
            r.random_range(0..t),
            r.random_range(1u8..=8),  // correlation = eighths/8 — dyadic
            r.random_range(1u8..=16), // integral cost
        )
    });
    let nodes = rng.random_range(1usize..5);
    let assignment = (0..t).map(|_| rng.random_range(0u8..16)).collect();
    let moves = gen::vec(rng, 0..24, |r| {
        (r.random_range(0..t), r.random_range(0usize..16))
    });
    GraphCase {
        sizes,
        nodes,
        pairs,
        assignment,
        moves,
    }
}

fn build(c: &GraphCase) -> CcaProblem {
    let mut b = CcaProblem::builder();
    let objs: Vec<_> = c
        .sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| b.add_object(format!("o{i}"), u64::from(s.max(1))))
        .collect();
    for &(a, d, eighths, cost) in &c.pairs {
        let (a, d) = (a % objs.len(), d % objs.len());
        if a != d {
            // correlation k/8 with k in 1..=8 and integral cost: the pair
            // weight r·w is an exact multiple of 1/8, so all cost sums in
            // these tests are exact in f64.
            b.add_pair(
                objs[a],
                objs[d],
                f64::from(eighths.clamp(1, 8)) / 8.0,
                f64::from(cost.max(1)),
            )
            .expect("valid pair");
        }
    }
    let nodes = c.nodes.max(1);
    let total: u64 = c.sizes.iter().map(|&s| u64::from(s.max(1))).sum();
    b.uniform_capacities(nodes, total + 8)
        .build()
        .expect("valid problem")
}

fn placement(c: &GraphCase, p: &CcaProblem) -> Placement {
    let n = p.num_nodes();
    Placement::new(
        c.assignment
            .iter()
            .take(p.num_objects())
            .map(|&k| u32::from(k) % n as u32)
            .collect(),
        n,
    )
}

/// `move_delta(i, a→b)` equals the full-recompute cost difference — to the
/// bit, for every (object, target) combination of the instance.
#[test]
fn move_delta_equals_full_recompute_difference() {
    Checker::new("move_delta_equals_full_recompute_difference")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let pl = placement(c, &p);
            let before = pl.communication_cost(&p);
            for o in p.objects() {
                for k in 0..p.num_nodes() {
                    let delta = graph.move_delta(&pl, o, k);
                    let mut moved = pl.clone();
                    moved.assign(o, k);
                    let after = moved.communication_cost(&p);
                    prop_assert_eq!(
                        after - before,
                        delta,
                        "object {o:?} -> node {k}: recompute diff {} != delta {}",
                        after - before,
                        delta
                    );
                }
            }
            Ok(())
        });
}

/// An [`IncrementalCost`] driven through an arbitrary move script agrees
/// with the full recompute after **every** step, exactly; each `apply`
/// returns exactly the cost change it caused. Post-apply comparisons use
/// `f64 ==` (still exact — dyadic weights): the one bit a running
/// accumulator cannot track is the sign of zero (`2.0 + (-2.0)` is `+0.0`
/// while the recompute's empty fold is `-0.0`), and `==` treats ±0.0 as
/// equal without admitting any magnitude error.
#[test]
fn incremental_cost_tracks_multi_move_sequences() {
    Checker::new("incremental_cost_tracks_multi_move_sequences")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let mut pl = placement(c, &p);
            let mut inc = IncrementalCost::new(graph, &pl);
            prop_assert_eq!(inc.cost().to_bits(), pl.communication_cost(&p).to_bits());
            for &(o, k) in &c.moves {
                let o = ObjectId((o % p.num_objects()) as u32);
                let k = k % p.num_nodes();
                let before = pl.communication_cost(&p);
                let predicted = inc.delta(&pl, o, k);
                let applied = inc.apply(&mut pl, o, k);
                prop_assert_eq!(predicted, applied, "delta() and apply() disagree");
                let after = pl.communication_cost(&p);
                prop_assert_eq!(
                    applied,
                    after - before,
                    "apply returned {applied} but the cost moved by {}",
                    after - before
                );
                prop_assert_eq!(
                    inc.cost(),
                    after,
                    "running cost {} != recompute {} after ({o:?} -> {k})",
                    inc.cost(),
                    after
                );
            }
            Ok(())
        });
}

/// `resync` re-anchors the accumulator after out-of-band placement edits:
/// scramble the placement behind the accumulator's back, resync, and the
/// running cost must again equal the recompute to the bit.
#[test]
fn resync_recovers_from_external_edits() {
    Checker::new("resync_recovers_from_external_edits")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let mut pl = placement(c, &p);
            let mut inc = IncrementalCost::new(graph, &pl);
            // Out-of-band edits the accumulator never sees.
            for &(o, k) in &c.moves {
                pl.assign(ObjectId((o % p.num_objects()) as u32), k % p.num_nodes());
            }
            // `resync` is a full walk, so it must match to the bit.
            inc.resync(&pl);
            prop_assert_eq!(inc.cost().to_bits(), pl.communication_cost(&p).to_bits());
            // And the re-anchored accumulator keeps tracking exactly
            // (`==`: the running sum may lose only the sign of zero).
            if p.num_objects() > 0 {
                let o = ObjectId(0);
                let k = p.num_nodes() - 1;
                inc.apply(&mut pl, o, k);
                prop_assert_eq!(inc.cost(), pl.communication_cost(&p));
            }
            Ok(())
        });
}

/// The delta-driven migration paths report costs that equal the full
/// recompute on their returned placements, exactly: `improve_in_place`
/// (which runs on the accumulator internally) and `reconcile` must never
/// drift from the canonical cost.
#[test]
fn migration_outcomes_report_exact_costs() {
    Checker::new("migration_outcomes_report_exact_costs")
        .cases(64)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let pl = placement(c, &p);
            let options = MigrateOptions::default();
            let improved = improve_in_place(&p, &pl, &options);
            prop_assert_eq!(
                improved.comm_cost.to_bits(),
                improved.placement.communication_cost(&p).to_bits(),
                "improve_in_place reported a cost that is not the recompute"
            );
            prop_assert!(
                improved.comm_cost <= pl.communication_cost(&p),
                "improve_in_place made the placement worse"
            );
            // Reconcile towards a scrambled desired placement.
            let desired = {
                let mut d = pl.clone();
                for &(o, k) in &c.moves {
                    d.assign(ObjectId((o % p.num_objects()) as u32), k % p.num_nodes());
                }
                d
            };
            let out = reconcile(&p, &pl, &desired, u64::MAX, &options);
            prop_assert_eq!(
                out.comm_cost.to_bits(),
                out.placement.communication_cost(&p).to_bits(),
                "reconcile reported a cost that is not the recompute"
            );
            Ok(())
        });
}

/// Structural CSR invariants: the `EdgeId` back-map onto `pairs()`, row
/// symmetry, and weighted degrees as exact row sums.
#[test]
fn csr_structure_matches_pair_list() {
    Checker::new("csr_structure_matches_pair_list")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let graph = p.graph();
            prop_assert_eq!(graph.num_edges(), p.pairs().len());
            prop_assert_eq!(graph.num_objects(), p.num_objects());
            // Back-map: edge `e` of the graph is `pairs()[e]`, same weight
            // bits (the graph precomputes the identical r·w multiply).
            for (e, pair) in p.pairs().iter().enumerate() {
                let edge = graph.edge(cca_core::EdgeId(e as u32));
                prop_assert_eq!(edge.a, pair.a);
                prop_assert_eq!(edge.b, pair.b);
                prop_assert_eq!(edge.weight.to_bits(), pair.weight().to_bits());
            }
            // Each edge appears in exactly both endpoint rows; rows are
            // symmetric and weighted degrees are the row sums.
            let mut row_hits = vec![0usize; p.pairs().len()];
            for o in p.objects() {
                let mut row_sum = -0.0f64;
                for (other, w, e) in graph.neighbor_edges(o) {
                    row_hits[e.index()] += 1;
                    row_sum += w;
                    prop_assert!(
                        graph.neighbors(other).any(|(back, bw)| back == o && bw == w),
                        "row of {other:?} is missing the back-edge to {o:?}"
                    );
                }
                prop_assert_eq!(graph.degree(o), graph.neighbors(o).count());
                prop_assert_eq!(
                    row_sum.to_bits(),
                    graph.weighted_degree(o).to_bits(),
                    "weighted degree of {o:?} is not its row sum"
                );
            }
            prop_assert!(
                row_hits.iter().all(|&h| h == 2),
                "every edge must sit in exactly its two endpoint rows: {row_hits:?}"
            );
            Ok(())
        });
}

/// The graph cost is bit-identical to the historic dense pair scan
/// (`filter · map · sum` over the pair list), including the `-0.0` that
/// scan produces for fully co-located placements.
#[test]
fn graph_cost_is_bitwise_pair_scan() {
    Checker::new("graph_cost_is_bitwise_pair_scan")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(graph_case, |c| {
            let p = build(c);
            let pl = placement(c, &p);
            let scan: f64 = p
                .pairs()
                .iter()
                .filter(|pr| pl.node_of(pr.a) != pl.node_of(pr.b))
                .map(|pr| pr.weight())
                .sum();
            prop_assert_eq!(
                p.graph().cost(&pl).to_bits(),
                scan.to_bits(),
                "graph cost {} != pair scan {}",
                p.graph().cost(&pl),
                scan
            );
            let everyone_home = Placement::new(vec![0; p.num_objects()], p.num_nodes());
            prop_assert_eq!(
                p.graph().cost(&everyone_home).to_bits(),
                (-0.0f64).to_bits(),
                "all-colocated cost must be the sum-fold identity -0.0"
            );
            Ok(())
        });
}
