//! Exact-equality property tests for the batched placement-evaluation
//! kernel: one CSR edge walk scoring `k` candidate columns must be
//! **bit-identical** to `k` independent serial walks, for every batch
//! width, chunking, and thread count.
//!
//! As in `graph_properties`, the generator draws dyadic-rational weights
//! (multiples of 1/8 with small magnitudes), so every partial sum is
//! exactly representable in `f64` and all comparisons here are on raw
//! bits — any summation-order drift the batch layer introduced would be a
//! hard failure, not noise under a tolerance.

use cca_check::{gen, prop_assert, prop_assert_eq, Checker, Rng, SeedableRng, Shrink, StdRng};
use cca_core::{
    round_best_of_within, round_samples, CcaProblem, CorrelationGraph, FractionalPlacement,
    IncrementalCost, ObjectId, Pair, Placement, PlacementBatch,
};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/batch_properties.regressions");

/// Shrinkable description of a random CCA instance with dyadic weights
/// plus a batch of candidate assignment columns over it.
#[derive(Debug, Clone)]
struct BatchCase {
    sizes: Vec<u8>,
    nodes: usize,
    /// (a, b, correlation eighths in 1..=8, cost in 1..=16)
    pairs: Vec<(usize, usize, u8, u8)>,
    /// Candidate columns, each entry reduced modulo `nodes`.
    columns: Vec<Vec<u8>>,
    /// Per-node capacity in sixteenths of the total size — below 16 the
    /// instance is tight and some candidates are infeasible, which is
    /// exactly the regime the best-of selection rules must agree in.
    cap_sixteenths: u8,
    /// Seed for the fractional matrix and the rounding streams.
    seed: u64,
}

impl Shrink for BatchCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for columns in self.columns.shrink() {
            out.push(BatchCase { columns, ..self.clone() });
        }
        for pairs in self.pairs.shrink() {
            out.push(BatchCase { pairs, ..self.clone() });
        }
        for nodes in self.nodes.shrink() {
            if nodes >= 1 {
                out.push(BatchCase { nodes, ..self.clone() });
            }
        }
        out
    }
}

fn batch_case(rng: &mut StdRng) -> BatchCase {
    let t = rng.random_range(2usize..10);
    let sizes = (0..t).map(|_| rng.random_range(1u8..12)).collect();
    let pairs = gen::vec(rng, 0..t * 3, |r| {
        (
            r.random_range(0..t),
            r.random_range(0..t),
            r.random_range(1u8..=8),  // correlation = eighths/8 — dyadic
            r.random_range(1u8..=16), // integral cost
        )
    });
    let nodes = rng.random_range(1usize..5);
    let width = rng.random_range(0usize..7);
    let columns = (0..width)
        .map(|_| (0..t).map(|_| rng.random_range(0u8..16)).collect())
        .collect();
    BatchCase {
        sizes,
        nodes,
        pairs,
        columns,
        cap_sixteenths: rng.random_range(6u8..=24),
        seed: rng.random(),
    }
}

fn build(c: &BatchCase) -> CcaProblem {
    let mut b = CcaProblem::builder();
    let objs: Vec<_> = c
        .sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| b.add_object(format!("o{i}"), u64::from(s.max(1))))
        .collect();
    for &(a, d, eighths, cost) in &c.pairs {
        let (a, d) = (a % objs.len(), d % objs.len());
        if a != d {
            b.add_pair(
                objs[a],
                objs[d],
                f64::from(eighths.clamp(1, 8)) / 8.0,
                f64::from(cost.max(1)),
            )
            .expect("valid pair");
        }
    }
    let nodes = c.nodes.max(1);
    let total: u64 = c.sizes.iter().map(|&s| u64::from(s.max(1))).sum();
    let cap = (total * u64::from(c.cap_sixteenths.max(1))) / 16 + 1;
    b.uniform_capacities(nodes, cap).build().expect("valid problem")
}

fn candidates(c: &BatchCase, p: &CcaProblem) -> Vec<Placement> {
    let n = p.num_nodes();
    c.columns
        .iter()
        .map(|col| {
            Placement::new(
                col.iter()
                    .take(p.num_objects())
                    .map(|&k| u32::from(k) % n as u32)
                    .collect(),
                n,
            )
        })
        .collect()
}

fn batch_of(p: &CcaProblem, pls: &[Placement]) -> PlacementBatch {
    let mut batch = PlacementBatch::new(p.num_objects(), p.num_nodes());
    for pl in pls {
        batch.push(pl);
    }
    batch
}

/// Column `i` of one batched edge walk carries exactly the bits of the
/// serial `cost(placement_i)` fold — for every batch width including 0
/// and 1, so a batch-of-1 is indistinguishable from the single-candidate
/// path.
#[test]
fn cost_batch_columns_bit_equal_serial_cost() {
    Checker::new("cost_batch_columns_bit_equal_serial_cost")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(batch_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let pls = candidates(c, &p);
            let costs = graph.cost_batch(&batch_of(&p, &pls));
            prop_assert_eq!(costs.len(), pls.len());
            for (i, pl) in pls.iter().enumerate() {
                prop_assert_eq!(
                    costs[i].to_bits(),
                    graph.cost(pl).to_bits(),
                    "column {i}: batch {} != serial {}",
                    costs[i],
                    graph.cost(pl)
                );
                prop_assert_eq!(costs[i].to_bits(), pl.communication_cost(&p).to_bits());
                // A batch of exactly this one candidate is the same walk.
                let solo = graph.cost_batch(&batch_of(&p, std::slice::from_ref(pl)));
                prop_assert_eq!(solo[0].to_bits(), costs[i].to_bits());
            }
            Ok(())
        });
}

/// The chunk-parallel batch walk returns the same bits for every thread
/// count; these instances fit one edge chunk, so the bits also equal the
/// serial batch walk exactly (the `-0.0` fold identity).
#[test]
fn cost_batch_chunked_is_thread_and_chunk_invariant() {
    Checker::new("cost_batch_chunked_is_thread_and_chunk_invariant")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(batch_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let batch = batch_of(&p, &candidates(c, &p));
            let serial = graph.cost_batch(&batch);
            for threads in [1usize, 2, 4, 8] {
                let chunked = graph.cost_batch_chunked(&batch, threads);
                prop_assert_eq!(chunked.len(), serial.len());
                for (i, (a, b)) in chunked.iter().zip(&serial).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "threads {threads}, column {i}: chunked {a} != serial {b}"
                    );
                }
            }
            Ok(())
        });
}

/// One CSR row walk scoring all targets of one object equals the
/// per-target `move_delta` recomputation to the bit, both on the raw
/// graph and through [`IncrementalCost::delta_batch`].
#[test]
fn move_delta_batch_bit_equals_per_move_delta() {
    Checker::new("move_delta_batch_bit_equals_per_move_delta")
        .cases(128)
        .regressions(REGRESSIONS)
        .run(batch_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let Some(pl) = candidates(c, &p).into_iter().next() else {
                return Ok(());
            };
            let targets: Vec<usize> = (0..p.num_nodes()).collect();
            let inc = IncrementalCost::new(graph, &pl);
            for o in p.objects() {
                let deltas = graph.move_delta_batch(&pl, o, &targets);
                let via_inc = inc.delta_batch(&pl, o, &targets);
                prop_assert_eq!(deltas.len(), targets.len());
                for (&k, (&d, &di)) in targets.iter().zip(deltas.iter().zip(&via_inc)) {
                    let serial = graph.move_delta(&pl, o, k);
                    prop_assert_eq!(
                        d.to_bits(),
                        serial.to_bits(),
                        "object {o:?} -> node {k}: batch {d} != serial {serial}"
                    );
                    prop_assert_eq!(di.to_bits(), serial.to_bits());
                }
                prop_assert_eq!(
                    deltas[pl.node_of(o)].to_bits(),
                    0.0f64.to_bits(),
                    "moving onto the source node must be exactly +0.0"
                );
            }
            Ok(())
        });
}

/// The batch-scored best-of selection picks the same winner as a
/// sequential reference loop that recomputes each candidate's cost with
/// its own serial walk, for thread counts 1, 2, 4 and 8 — on tight
/// instances this exercises the infeasible (least-overloaded) branch of
/// the selection rules too.
#[test]
fn batched_best_of_matches_sequential_reference() {
    Checker::new("batched_best_of_matches_sequential_reference")
        .cases(64)
        .regressions(REGRESSIONS)
        .run(batch_case, |c| {
            let p = build(c);
            let (t, n) = (p.num_objects(), p.num_nodes());
            // A strictly positive dyadic matrix, normalised row-stochastic.
            let mut frng = StdRng::seed_from_u64(c.seed);
            let x: Vec<f64> = (0..t * n)
                .map(|_| f64::from(frng.random_range(1u32..=16)))
                .collect();
            let mut fractional = FractionalPlacement::new(x, t, n);
            fractional.normalise();
            let repetitions = 16;
            let slack = 1.0;

            // Sequential reference: same substreams, one serial cost walk
            // and one selection pass per candidate, in repetition order.
            let samples =
                round_samples(&fractional, repetitions, c.seed, 1).map_err(|e| e.to_string())?;
            let mut best: Option<(bool, f64, f64, usize)> = None;
            for (idx, s) in samples.iter().enumerate() {
                let cost = s.communication_cost(&p);
                let feasible = s.within_all_capacities(&p, slack);
                // Storage-only worst ratio: these instances carry no
                // secondary resources, so this equals the library's rule.
                let ratio = s
                    .loads(&p)
                    .iter()
                    .enumerate()
                    .map(|(k, &load)| {
                        if load == 0 {
                            0.0
                        } else {
                            load as f64 / p.capacity(k) as f64
                        }
                    })
                    .fold(0.0, f64::max);
                let better = match &best {
                    None => true,
                    Some((bf, bc, br, _)) => match (feasible, *bf) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => cost < *bc,
                        (false, false) => ratio < *br || (ratio == *br && cost < *bc),
                    },
                };
                if better {
                    best = Some((feasible, cost, ratio, idx));
                }
            }
            let (feasible, cost, ratio, idx) = best.expect("repetitions >= 1");

            for threads in [1usize, 2, 4, 8] {
                let out = round_best_of_within(
                    &fractional,
                    &p,
                    repetitions,
                    slack,
                    None,
                    c.seed,
                    threads,
                )
                .map_err(|e| e.to_string())?;
                prop_assert_eq!(
                    out.placement.as_slice(),
                    samples[idx].as_slice(),
                    "threads {threads}: batched winner differs from sequential reference"
                );
                prop_assert_eq!(out.cost.to_bits(), cost.to_bits(), "threads {threads}");
                prop_assert_eq!(out.within_capacity, feasible, "threads {threads}");
                prop_assert_eq!(out.max_load_ratio.to_bits(), ratio.to_bits());
                prop_assert_eq!(out.repetitions, repetitions);
            }
            Ok(())
        });
}

/// Node counts past `2^24` take the wide (`f64`) interleaved layout —
/// `f32` could not hold those ids exactly — and the batch columns must
/// still carry the serial fold's bits. A `Placement` stores the node
/// count without allocating per node, so the huge count costs nothing.
#[test]
fn wide_interleave_fallback_bit_equals_serial() {
    let huge = (1usize << 24) + 7;
    let pairs: Vec<Pair> = (0..5u32)
        .map(|i| Pair {
            a: ObjectId(i),
            b: ObjectId(i + 1),
            correlation: f64::from(i % 8 + 1) / 8.0,
            comm_cost: f64::from(i + 1),
        })
        .collect();
    let graph = CorrelationGraph::build(6, &pairs);
    // Columns straddling the f32-exactness boundary: ids around 2^24
    // where consecutive u32s collapse to the same f32.
    let cols = [
        vec![0, 1 << 24, (1 << 24) + 1, 2, (1 << 24) + 3, 5],
        vec![(1 << 24) + 1, 1 << 24, (1 << 24) + 1, 2, (1 << 24) + 3, 5],
        vec![0; 6],
    ];
    let pls: Vec<Placement> = cols
        .iter()
        .map(|c| Placement::new(c.clone(), huge))
        .collect();
    let mut batch = PlacementBatch::new(6, huge);
    for pl in &pls {
        batch.push(pl);
    }
    let costs = graph.cost_batch(&batch);
    for (i, pl) in pls.iter().enumerate() {
        assert_eq!(
            costs[i].to_bits(),
            graph.cost(pl).to_bits(),
            "column {i}: wide-layout batch diverged from serial walk"
        );
    }
    for threads in [1usize, 3] {
        let chunked = graph.cost_batch_chunked(&batch, threads);
        for (a, b) in chunked.iter().zip(&costs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Pins the f32/f64 interleave width switch at its exact boundary
/// (`num_nodes <= 2^24` takes the narrow layout): at `2^24 - 1`, `2^24`
/// and `2^24 + 1` nodes, every batch column must carry the serial fold's
/// bits, and columns differing only in top-of-range node ids must stay
/// distinguishable. The switch is conservative by exactly one: every id
/// `<= 2^24` is f32-exact (the first unrepresentable integer is
/// `2^24 + 1`), so correctness needs wide only from `2^24 + 2` nodes on —
/// this test keeps the cheaper-but-sufficient boundary from drifting in
/// either direction.
#[test]
fn interleave_width_switch_is_exact_at_the_boundary() {
    let pairs: Vec<Pair> = (0..6u32)
        .map(|i| Pair {
            a: ObjectId(i),
            b: ObjectId(i + 1),
            correlation: f64::from(i % 8 + 1) / 8.0,
            comm_cost: f64::from(i + 1),
        })
        .collect();
    let graph = CorrelationGraph::build(7, &pairs);
    for num_nodes in [(1usize << 24) - 1, 1 << 24, (1 << 24) + 1] {
        let top = (num_nodes - 1) as u32;
        // Columns exercising the extreme ids of this node count: all
        // placements split some edges across ids only the exact layout
        // can tell apart (top vs top-1 vs 0).
        let cols: [Vec<u32>; 4] = [
            vec![top, top - 1, top, top - 1, top, top - 1, top],
            vec![top, top, top, top - 1, top - 1, top - 1, 0],
            vec![0, top, 0, top, 0, top, 0],
            vec![top; 7],
        ];
        let pls: Vec<Placement> = cols
            .iter()
            .map(|c| Placement::new(c.clone(), num_nodes))
            .collect();
        let mut batch = PlacementBatch::new(7, num_nodes);
        for pl in &pls {
            batch.push(pl);
        }
        let costs = graph.cost_batch(&batch);
        for (i, pl) in pls.iter().enumerate() {
            assert_eq!(
                costs[i].to_bits(),
                graph.cost(pl).to_bits(),
                "column {i}: batch diverged from serial walk at {num_nodes} nodes"
            );
        }
        // The all-on-top column never splits an edge: the fold identity
        // must survive the width switch (and the branchless fix-up).
        assert_eq!(costs[3].to_bits(), (-0.0f64).to_bits());
        // Adjacent top ids must not collapse: column 0 splits every edge.
        let every_edge: f64 = pairs.iter().map(|p| p.weight()).sum();
        assert_eq!(costs[0].to_bits(), every_edge.to_bits());
    }
}

/// Empty and degenerate batches: width 0 scores nothing, and a batch over
/// a fully co-located column reproduces the `-0.0` sum-fold identity in
/// every column.
#[test]
fn degenerate_batches_keep_fold_identities() {
    Checker::new("degenerate_batches_keep_fold_identities")
        .cases(64)
        .regressions(REGRESSIONS)
        .run(batch_case, |c| {
            let p = build(c);
            let graph = p.graph();
            let empty = PlacementBatch::new(p.num_objects(), p.num_nodes());
            prop_assert!(graph.cost_batch(&empty).is_empty());
            let home = Placement::new(vec![0; p.num_objects()], p.num_nodes());
            let batch = batch_of(&p, &[home.clone(), home]);
            for (i, cost) in graph.cost_batch(&batch).into_iter().enumerate() {
                prop_assert_eq!(
                    cost.to_bits(),
                    (-0.0f64).to_bits(),
                    "column {i}: all-colocated batch column must be -0.0"
                );
            }
            Ok(())
        });
}
