//! Property-based tests of the CCA core: problem/placement invariants,
//! clustering, rounding guarantees, repair, and the exact-oracle sandwich.

use cca_check::{gen, prop_assert, prop_assert_eq, prop_assert_ne, Checker, Rng, Shrink, StdRng};
use cca_core::Strategy as PlacementStrategy;
use cca_core::{
    capacity_bounded_clusters, construct_clustered_vertex, construct_optimal_vertex,
    exact_placement, greedy_placement, place, random_hash_placement, repair_capacity,
    round_best_of_within, round_once, round_samples, CcaProblem, ExactOptions, LprrOptions,
    ObjectId, Placement,
};
use cca_rand::SeedableRng;

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/property.regressions");

/// Shrinkable description of a random CCA instance.
#[derive(Debug, Clone)]
struct RandomCca {
    sizes: Vec<u8>,
    nodes: usize,
    capacity_headroom: u8,
    pairs: Vec<(usize, usize, u8, u8)>, // (a, b, correlation%, cost)
}

impl Shrink for RandomCca {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Pairs shrink freely: `build` indexes objects modulo the count and
        // clamps correlation/cost back into the generator's domain.
        for pairs in self.pairs.shrink() {
            out.push(RandomCca { pairs, ..self.clone() });
        }
        // At least one object must survive so modulo indexing stays total.
        for sizes in self.sizes.shrink() {
            if !sizes.is_empty() {
                out.push(RandomCca { sizes, ..self.clone() });
            }
        }
        for nodes in self.nodes.shrink() {
            if nodes >= 1 {
                out.push(RandomCca { nodes, ..self.clone() });
            }
        }
        for capacity_headroom in self.capacity_headroom.shrink() {
            out.push(RandomCca {
                capacity_headroom,
                ..self.clone()
            });
        }
        out
    }
}

fn random_cca(rng: &mut StdRng) -> RandomCca {
    let t = rng.random_range(2usize..9);
    let sizes = (0..t).map(|_| rng.random_range(1u8..12)).collect();
    let pairs = gen::vec(rng, 0..t * 2, |r| {
        (
            r.random_range(0..t),
            r.random_range(0..t),
            r.random_range(1u8..=100),
            r.random_range(1u8..20),
        )
    });
    RandomCca {
        sizes,
        nodes: rng.random_range(1usize..4),
        capacity_headroom: rng.random_range(0u8..30),
        pairs,
    }
}

fn build(r: &RandomCca) -> CcaProblem {
    let mut b = CcaProblem::builder();
    let objs: Vec<_> = r
        .sizes
        .iter()
        .enumerate()
        // Clamps keep shrunk cases inside the generator's domain
        // (sizes >= 1, correlation in (0, 1], cost >= 1, nodes >= 1).
        .map(|(i, &s)| b.add_object(format!("o{i}"), u64::from(s.max(1))))
        .collect();
    for &(a, c, corr, cost) in &r.pairs {
        let (a, c) = (a % objs.len(), c % objs.len());
        if a != c {
            b.add_pair(
                objs[a],
                objs[c],
                f64::from(corr.max(1)) / 100.0,
                f64::from(cost.max(1)),
            )
            .expect("valid pair");
        }
    }
    let nodes = r.nodes.max(1);
    let total: u64 = r.sizes.iter().map(|&s| u64::from(s.max(1))).sum();
    // Capacity: enough in aggregate, plus some headroom.
    let cap = (total / nodes as u64 + 1) + u64::from(r.capacity_headroom);
    b.uniform_capacities(nodes, cap).build().expect("valid problem")
}

/// Costs are within [0, total weight]; co-locating everything on one
/// node (capacity aside) always yields zero cost.
#[test]
fn cost_bounds() {
    Checker::new("cost_bounds")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            let all_zero = Placement::new(vec![0; p.num_objects()], p.num_nodes());
            prop_assert_eq!(all_zero.communication_cost(&p), 0.0);
            let hash = random_hash_placement(&p);
            let cost = hash.communication_cost(&p);
            prop_assert!(cost >= 0.0);
            prop_assert!(cost <= p.total_pair_weight() + 1e-9);
            Ok(())
        });
}

/// The baselines and LPRR always produce complete placements, and any
/// cost they report matches an independent recomputation.
#[test]
fn strategies_produce_consistent_reports() {
    Checker::new("strategies_produce_consistent_reports")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            for strategy in [
                PlacementStrategy::RandomHash,
                PlacementStrategy::Greedy,
                PlacementStrategy::lprr(),
            ] {
                if let Ok(report) = place(&p, &strategy) {
                    prop_assert_eq!(report.placement.num_objects(), p.num_objects());
                    let recomputed = report.placement.communication_cost(&p);
                    prop_assert!((report.cost - recomputed).abs() < 1e-9);
                }
            }
            Ok(())
        });
}

/// Clusters partition the objects and respect the size budget (unless
/// a single object already exceeds it).
#[test]
fn clusters_partition_and_fit() {
    Checker::new("clusters_partition_and_fit")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_cca(rng), rng.random_range(1u64..60)),
            |(r, budget)| {
                let budget = (*budget).max(1); // shrinking may drive it to 0
                let p = build(r);
                let clusters = capacity_bounded_clusters(&p, budget);
                let mut seen = vec![false; p.num_objects()];
                for cluster in &clusters {
                    let size: u64 = cluster.iter().map(|&o| p.size(o)).sum();
                    prop_assert!(
                        size <= budget || cluster.len() == 1,
                        "oversized multi-object cluster: {cluster:?} ({size} > {budget})"
                    );
                    for &o in cluster {
                        prop_assert!(!seen[o.index()], "object {o} in two clusters");
                        seen[o.index()] = true;
                    }
                }
                prop_assert!(seen.iter().all(|&s| s), "some object missing from clusters");
                Ok(())
            },
        );
}

/// Both vertex constructions yield stochastic fractional placements
/// whose expected loads respect the capacities, and the degenerate one
/// attains objective 0.
#[test]
fn vertex_constructions_are_feasible() {
    Checker::new("vertex_constructions_are_feasible")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            let optimal = construct_optimal_vertex(&p).expect("aggregate capacity suffices");
            prop_assert!(optimal.objective.abs() < 1e-9);
            let clustered = construct_clustered_vertex(&p).expect("aggregate capacity suffices");
            for out in [&optimal, &clustered] {
                prop_assert!(out.fractional.is_stochastic(1e-6));
                for (k, load) in out.fractional.expected_loads(&p).iter().enumerate() {
                    prop_assert!(
                        *load <= p.capacity(k) as f64 + 1e-6,
                        "node {k}: expected load {load} > capacity {}",
                        p.capacity(k)
                    );
                }
            }
            prop_assert!(clustered.objective >= -1e-9);
            prop_assert!(clustered.objective <= p.total_pair_weight() + 1e-9);
            Ok(())
        });
}

/// Rounding an integral fractional placement reproduces it exactly.
#[test]
fn rounding_is_identity_on_integral() {
    Checker::new("rounding_is_identity_on_integral")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_cca(rng), rng.random::<u64>()),
            |(r, seed)| {
                let p = build(r);
                let hash = random_hash_placement(&p);
                let frac =
                    cca_core::FractionalPlacement::from_integral(hash.as_slice(), p.num_nodes());
                let mut rng = StdRng::seed_from_u64(*seed);
                prop_assert_eq!(round_once(&frac, &mut rng), Ok(hash));
                Ok(())
            },
        );
}

/// Repair never breaks completeness and reaches feasibility whenever
/// feasibility is achievable by it (generous aggregate headroom).
#[test]
fn repair_terminates_and_reports() {
    Checker::new("repair_terminates_and_reports")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            let mut placement = Placement::new(vec![0; p.num_objects()], p.num_nodes());
            let outcome = repair_capacity(&p, &mut placement, 1.0);
            prop_assert_eq!(placement.num_objects(), p.num_objects());
            if outcome.feasible {
                prop_assert!(placement.within_capacity(&p, 1.0 + 1e-9));
            }
            Ok(())
        });
}

/// Reconcile never exceeds its migration budget and never worsens the
/// model cost under default options.
#[test]
fn reconcile_respects_budget() {
    Checker::new("reconcile_respects_budget")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_cca(rng), rng.random_range(0u64..60)),
            |(r, budget)| {
                let budget = *budget;
                let p = build(r);
                let current = random_hash_placement(&p);
                let desired = greedy_placement(&p);
                let out = cca_core::reconcile(
                    &p,
                    &current,
                    &desired,
                    budget,
                    &cca_core::MigrateOptions::default(),
                );
                prop_assert!(out.migrated_bytes <= budget);
                prop_assert!(out.comm_cost <= current.communication_cost(&p) + 1e-9);
                // migrated bytes equal the size of actually-moved objects.
                let moved: u64 = p
                    .objects()
                    .filter(|&o| out.placement.node_of(o) != current.node_of(o))
                    .map(|o| p.size(o))
                    .sum();
                prop_assert_eq!(moved, out.migrated_bytes);
                Ok(())
            },
        );
}

/// Draining empties the node or reports None; on success every other
/// node stays within the slackened capacity.
#[test]
fn drain_empties_node_or_fails() {
    Checker::new("drain_empties_node_or_fails")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            if p.num_nodes() < 2 {
                return Ok(());
            }
            let start = greedy_placement(&p);
            if !start.within_all_capacities(&p, 1.0) {
                return Ok(());
            }
            let node = 0usize;
            // `None` means legitimately undrainable.
            if let Some(out) = cca_core::drain_node(
                &p,
                &start,
                node,
                &cca_core::MigrateOptions {
                    capacity_slack: 2.0,
                    ..cca_core::MigrateOptions::default()
                },
            ) {
                for o in p.objects() {
                    prop_assert_ne!(out.placement.node_of(o), node);
                }
                prop_assert!(out.placement.within_all_capacities(&p, 2.0 + 1e-9));
            }
            Ok(())
        });
}

/// Placement persistence round-trips on random problems.
#[test]
fn persistence_round_trips() {
    Checker::new("persistence_round_trips")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            let placement = random_hash_placement(&p);
            let text = cca_core::format_placement(&p, &placement);
            let parsed = cca_core::read_placement(text.as_bytes(), &p);
            prop_assert!(parsed.is_ok(), "{:?}", parsed.err().map(|e| e.to_string()));
            prop_assert_eq!(parsed.unwrap(), placement);
            Ok(())
        });
}

/// Sandwich: LP optimum (0) <= exact optimum <= every heuristic's cost,
/// on instances small enough for branch and bound.
#[test]
fn exact_oracle_sandwich() {
    // The exact oracle is exponential; keep the case count low.
    Checker::new("exact_oracle_sandwich")
        .cases(40)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            if p.num_objects() <= 7 && p.num_nodes() <= 3 {
                if let Some((exact, exact_cost)) = exact_placement(&p, &ExactOptions::default()) {
                    prop_assert!(exact.within_capacity(&p, 1.0));
                    prop_assert!(exact_cost >= -1e-12);
                    // Exact is a lower bound for every capacity-feasible
                    // placement the heuristics produce.
                    let greedy = greedy_placement(&p);
                    if greedy.within_capacity(&p, 1.0) {
                        prop_assert!(
                            greedy.communication_cost(&p) >= exact_cost - 1e-9,
                            "greedy {} below exact {exact_cost}",
                            greedy.communication_cost(&p)
                        );
                    }
                    if let Ok(lprr) = place(&p, &PlacementStrategy::lprr()) {
                        if lprr.placement.within_capacity(&p, 1.0) {
                            prop_assert!(
                                lprr.cost >= exact_cost - 1e-9,
                                "lprr {} below exact {exact_cost}",
                                lprr.cost
                            );
                        }
                    }
                }
            }
            Ok(())
        });
}

/// Input hardening: malformed instances are rejected as typed errors,
/// never accepted and never panics.
#[test]
fn builder_rejects_malformed_instances() {
    Checker::new("builder_rejects_malformed_instances")
        .cases(100)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            // Zero-size object: poison one size.
            let mut b = CcaProblem::builder();
            for (i, &s) in r.sizes.iter().enumerate() {
                b.add_object(format!("o{i}"), if i == 0 { 0 } else { u64::from(s.max(1)) });
            }
            let nodes = r.nodes.max(1);
            prop_assert_eq!(
                b.uniform_capacities(nodes, 100).build().unwrap_err(),
                cca_core::ProblemError::ZeroSizeObject(ObjectId(0))
            );

            // All-zero capacities.
            let mut b = CcaProblem::builder();
            b.add_object("a", 1);
            prop_assert_eq!(
                b.uniform_capacities(nodes, 0).build().unwrap_err(),
                cca_core::ProblemError::ZeroCapacity
            );

            // Non-finite and negative pair weights.
            let mut b = CcaProblem::builder();
            let a = b.add_object("a", 1);
            let c = b.add_object("c", 1);
            for (corr, cost) in [
                (f64::NAN, 1.0),
                (1.0, f64::NAN),
                (-0.5, 1.0),
                (1.0, -2.0),
                (f64::INFINITY, 1.0),
            ] {
                prop_assert!(matches!(
                    b.add_pair(a, c, corr, cost),
                    Err(cca_core::ProblemError::InvalidNumber(_))
                ));
            }
            Ok(())
        });
}

/// The degradation ladder always answers: a complete placement that is
/// audit-feasible or explicitly flagged, identically across repeat runs.
#[test]
fn resilient_solve_always_answers() {
    Checker::new("resilient_solve_always_answers")
        .cases(60)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            let opts = cca_core::ResilienceOptions::default();
            let a = cca_core::solve_resilient(&p, &opts);
            prop_assert_eq!(a.placement.num_objects(), p.num_objects());
            prop_assert!(
                a.audit.feasible() || a.report.degraded,
                "unflagged infeasible result: {}",
                a.report.summary()
            );
            let b = cca_core::solve_resilient(&p, &opts);
            prop_assert_eq!(a.placement.as_slice(), b.placement.as_slice());
            prop_assert_eq!(a.report.selected, b.report.selected);
            Ok(())
        });
}

/// Thread-count invariance of the rounding fan-out: for any instance and
/// seed, `round_best_of_within` selects a byte-identical outcome at 1, 2,
/// and 8 threads, and `round_samples` returns the identical sample vector —
/// repetition `i` depends only on `(seed, i)`, never on scheduling.
#[test]
fn rounding_is_thread_count_invariant() {
    Checker::new("rounding_is_thread_count_invariant")
        .cases(60)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_cca(rng), rng.random::<u64>()),
            |(r, seed)| {
                let p = build(r);
                let vertex = construct_clustered_vertex(&p).expect("aggregate capacity suffices");
                let serial =
                    round_best_of_within(&vertex.fractional, &p, 24, 1.05, None, *seed, 1)
                        .expect("stochastic vertex rounds");
                let serial_samples =
                    round_samples(&vertex.fractional, 24, *seed, 1).expect("samples");
                for threads in [2usize, 8] {
                    let par =
                        round_best_of_within(&vertex.fractional, &p, 24, 1.05, None, *seed, threads)
                            .expect("stochastic vertex rounds");
                    prop_assert_eq!(par.placement.as_slice(), serial.placement.as_slice());
                    prop_assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
                    prop_assert_eq!(par.max_load_ratio.to_bits(), serial.max_load_ratio.to_bits());
                    prop_assert_eq!(par.repetitions, serial.repetitions);
                    prop_assert_eq!(par.within_capacity, serial.within_capacity);
                    let par_samples =
                        round_samples(&vertex.fractional, 24, *seed, threads).expect("samples");
                    prop_assert_eq!(&par_samples, &serial_samples);
                }
                Ok(())
            },
        );
}

/// Thread-count invariance end to end: the full LPRR solve returns the
/// same placement and bit-identical cost for 1, 2, and 8 worker threads.
#[test]
fn lprr_solve_is_thread_count_invariant() {
    Checker::new("lprr_solve_is_thread_count_invariant")
        .cases(40)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_cca(rng), rng.random::<u64>()),
            |(r, seed)| {
                let p = build(r);
                let opts = |threads| {
                    PlacementStrategy::Lprr(LprrOptions {
                        rng_seed: *seed,
                        threads,
                        ..LprrOptions::default()
                    })
                };
                match place(&p, &opts(1)) {
                    Err(_) => Ok(()), // infeasible LP fails identically at any thread count
                    Ok(serial) => {
                        for threads in [2usize, 8] {
                            let par = place(&p, &opts(threads)).expect("same LP, same outcome");
                            prop_assert_eq!(
                                par.placement.as_slice(),
                                serial.placement.as_slice()
                            );
                            prop_assert_eq!(par.cost.to_bits(), serial.cost.to_bits());
                        }
                        Ok(())
                    }
                }
            },
        );
}

/// The parallel exact search agrees with the serial branch and bound on
/// the optimal cost, and any two parallel thread counts agree
/// byte-for-byte (they share one branch decomposition).
#[test]
fn exact_parallel_matches_serial() {
    Checker::new("exact_parallel_matches_serial")
        .cases(40)
        .regressions(REGRESSIONS)
        .run(random_cca, |r| {
            let p = build(r);
            if p.num_objects() > 7 || p.num_nodes() > 3 {
                return Ok(());
            }
            let with_threads = |threads| ExactOptions {
                threads,
                ..ExactOptions::default()
            };
            let serial = exact_placement(&p, &ExactOptions::default());
            let two = exact_placement(&p, &with_threads(2));
            let eight = exact_placement(&p, &with_threads(8));
            match (&serial, &two) {
                (Some((_, sc)), Some((_, pc))) => {
                    prop_assert!((sc - pc).abs() < 1e-9, "serial {sc} vs parallel {pc}")
                }
                (None, None) => {}
                other => prop_assert!(false, "serial/parallel disagree: {other:?}"),
            }
            match (&two, &eight) {
                (Some((p2, c2)), Some((p8, c8))) => {
                    prop_assert_eq!(p2.as_slice(), p8.as_slice());
                    prop_assert_eq!(c2.to_bits(), c8.to_bits());
                }
                (None, None) => {}
                other => prop_assert!(false, "2 vs 8 threads disagree: {other:?}"),
            }
            Ok(())
        });
}

/// Lemma 1 at the integration level: rounding the degenerate vertex places
/// each correlation component wholly on one node with the row's
/// probabilities.
#[test]
fn degenerate_vertex_rounds_components_together() {
    let mut b = CcaProblem::builder();
    let o: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 5)).collect();
    b.add_pair(o[0], o[1], 0.9, 3.0).unwrap();
    b.add_pair(o[2], o[3], 0.9, 3.0).unwrap();
    let p = b.uniform_capacities(2, 20).build().unwrap();
    let out = construct_optimal_vertex(&p).unwrap();
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..200 {
        let placement = round_once(&out.fractional, &mut rng).expect("stochastic vertex");
        assert_eq!(placement.node_of(o[0]), placement.node_of(o[1]));
        assert_eq!(placement.node_of(o[2]), placement.node_of(o[3]));
    }
    let _ = ObjectId(0);
}
