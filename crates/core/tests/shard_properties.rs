//! Shard-invariance property battery for [`cca_core::ShardedGraph`]
//! (DESIGN.md §11).
//!
//! Every equality here is **exact** (`==` on raw `f64` bits), not
//! epsilon-tolerant: the generator draws dyadic-rational weights
//! (multiples of 1/8 with small magnitudes), so every partial sum is
//! exactly representable and any reduction the sharded view performs —
//! for **any** shard count {1, 2, 7, num_objects} at **any** thread
//! count {1, 2, 8} — must reproduce the flat CSR's bits, not merely
//! approximate them. This is the same battery pattern as the PR-3
//! thread-invariance suite: the thread axis must never appear in any
//! result.

use cca_check::{gen, prop_assert, prop_assert_eq, Checker, Rng, Shrink, StdRng};
use cca_core::{CcaProblem, ObjectId, Placement, PlacementBatch, ShardedGraph};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/shard_properties.regressions");

/// Shrinkable description of a random CCA instance with dyadic weights
/// plus a batch of candidate placements over it.
#[derive(Debug, Clone)]
struct ShardCase {
    sizes: Vec<u8>,
    nodes: usize,
    /// (a, b, correlation eighths in 1..=8, cost in 1..=16)
    pairs: Vec<(usize, usize, u8, u8)>,
    /// Candidate assignments, each reduced modulo `nodes`.
    candidates: Vec<Vec<u8>>,
}

impl Shrink for ShardCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for pairs in self.pairs.shrink() {
            out.push(ShardCase { pairs, ..self.clone() });
        }
        for candidates in self.candidates.shrink() {
            if !candidates.is_empty() {
                out.push(ShardCase { candidates, ..self.clone() });
            }
        }
        for nodes in self.nodes.shrink() {
            if nodes >= 1 {
                out.push(ShardCase { nodes, ..self.clone() });
            }
        }
        out
    }
}

fn shard_case(rng: &mut StdRng) -> ShardCase {
    let t = rng.random_range(2usize..14);
    let sizes = (0..t).map(|_| rng.random_range(1u8..12)).collect();
    let pairs = gen::vec(rng, 0..t * 3, |r| {
        (
            r.random_range(0..t),
            r.random_range(0..t),
            r.random_range(1u8..=8),  // correlation = eighths/8 — dyadic
            r.random_range(1u8..=16), // integral cost
        )
    });
    let nodes = rng.random_range(1usize..5);
    let k = rng.random_range(1usize..7);
    let candidates = (0..k)
        .map(|_| (0..t).map(|_| rng.random_range(0u8..16)).collect())
        .collect();
    ShardCase {
        sizes,
        nodes,
        pairs,
        candidates,
    }
}

fn build(c: &ShardCase) -> CcaProblem {
    let mut b = CcaProblem::builder();
    let objs: Vec<_> = c
        .sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| b.add_object(format!("o{i}"), u64::from(s.max(1))))
        .collect();
    for &(a, d, eighths, cost) in &c.pairs {
        let (a, d) = (a % objs.len(), d % objs.len());
        if a != d {
            b.add_pair(
                objs[a],
                objs[d],
                f64::from(eighths.clamp(1, 8)) / 8.0,
                f64::from(cost.max(1)),
            )
            .expect("valid pair");
        }
    }
    let nodes = c.nodes.max(1);
    let total: u64 = c.sizes.iter().map(|&s| u64::from(s.max(1))).sum();
    b.uniform_capacities(nodes, total + 8)
        .build()
        .expect("valid problem")
}

fn candidate(c: &ShardCase, p: &CcaProblem, idx: usize) -> Placement {
    let n = p.num_nodes();
    Placement::new(
        c.candidates[idx]
            .iter()
            .take(p.num_objects())
            .map(|&k| u32::from(k) % n as u32)
            .collect(),
        n,
    )
}

/// The shard/thread axes to sweep: the ISSUE's required shard counts
/// (with `num_objects` substituted at run time) crossed with the PR-3
/// thread battery.
const THREADS: [usize; 3] = [1, 2, 8];

fn shard_counts(num_objects: usize) -> [usize; 4] {
    [1, 2, 7, num_objects]
}

/// `ShardedGraph::cost` is bit-identical to the flat serial
/// [`cca_core::CorrelationGraph::cost`] for every shard count at every
/// thread count, and the sharded view is structurally consistent
/// (clamped shard count, edge conservation).
#[test]
fn sharded_cost_is_bitwise_flat_cost() {
    Checker::new("sharded_cost_is_bitwise_flat_cost")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(shard_case, |c| {
            let p = build(c);
            let pl = candidate(c, &p, 0);
            let flat = p.graph().cost(&pl);
            for shards in shard_counts(p.num_objects()) {
                let sg = ShardedGraph::build(p.num_objects(), p.pairs(), shards, 2);
                prop_assert_eq!(sg.shard_count(), shards.clamp(1, p.num_objects()));
                prop_assert_eq!(sg.num_edges(), p.pairs().len());
                prop_assert_eq!(sg.num_objects(), p.num_objects());
                for threads in THREADS {
                    prop_assert_eq!(
                        sg.cost(&pl, threads).to_bits(),
                        flat.to_bits(),
                        "cost diverged at {shards} shards / {threads} threads: {} != {}",
                        sg.cost(&pl, threads),
                        flat
                    );
                }
            }
            Ok(())
        });
}

/// `ShardedGraph::cost_batch` column `c` is bit-identical to the flat
/// [`cca_core::CorrelationGraph::cost_batch`] column `c` (itself pinned
/// to the serial per-candidate walk) for every shard count at every
/// thread count — including the all-colocated `-0.0` identity column.
#[test]
fn sharded_cost_batch_is_bitwise_flat_batch() {
    Checker::new("sharded_cost_batch_is_bitwise_flat_batch")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(shard_case, |c| {
            let p = build(c);
            let mut batch = PlacementBatch::new(p.num_objects(), p.num_nodes());
            for idx in 0..c.candidates.len() {
                batch.push(&candidate(c, &p, idx));
            }
            // Pin the -0.0 identity column explicitly.
            batch.push(&Placement::new(vec![0; p.num_objects()], p.num_nodes()));
            let flat = p.graph().cost_batch(&batch);
            prop_assert_eq!(flat.last().copied().map(f64::to_bits), Some((-0.0f64).to_bits()));
            for shards in shard_counts(p.num_objects()) {
                let sg = ShardedGraph::build(p.num_objects(), p.pairs(), shards, 1);
                for threads in THREADS {
                    let got = sg.cost_batch(&batch, threads);
                    prop_assert_eq!(got.len(), flat.len());
                    for (col, (g, f)) in got.iter().zip(&flat).enumerate() {
                        prop_assert_eq!(
                            g.to_bits(),
                            f.to_bits(),
                            "column {col} diverged at {shards} shards / {threads} threads: {g} != {f}"
                        );
                    }
                }
            }
            Ok(())
        });
}

/// `ShardedGraph::move_delta` / `move_delta_batch` replicate the flat
/// row walks to the bit for any shard count — every (object, target)
/// combination of the instance.
#[test]
fn sharded_move_delta_is_bitwise_flat_row_walk() {
    Checker::new("sharded_move_delta_is_bitwise_flat_row_walk")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(shard_case, |c| {
            let p = build(c);
            let pl = candidate(c, &p, 0);
            let graph = p.graph();
            let targets: Vec<usize> = (0..p.num_nodes()).collect();
            for shards in shard_counts(p.num_objects()) {
                let sg = ShardedGraph::build(p.num_objects(), p.pairs(), shards, 2);
                for o in p.objects() {
                    let flat_batch = graph.move_delta_batch(&pl, o, &targets);
                    let shard_batch = sg.move_delta_batch(&pl, o, &targets);
                    for (t, (&f, &s)) in flat_batch.iter().zip(&shard_batch).enumerate() {
                        prop_assert_eq!(
                            s.to_bits(),
                            f.to_bits(),
                            "move_delta_batch[{t}] of {o:?} diverged at {shards} shards"
                        );
                        prop_assert_eq!(
                            sg.move_delta(&pl, o, t).to_bits(),
                            graph.move_delta(&pl, o, t).to_bits(),
                            "move_delta of {o:?} -> {t} diverged at {shards} shards"
                        );
                    }
                }
            }
            Ok(())
        });
}

/// The `CcaProblem::eval_*` dispatchers with sharding enabled agree with
/// the flat graph to the bit on dyadic instances, and sharding survives
/// `restrict_to` with the same guarantees on the subproblem.
#[test]
fn problem_dispatch_and_restriction_preserve_bits() {
    Checker::new("problem_dispatch_and_restriction_preserve_bits")
        .cases(64)
        .regressions(REGRESSIONS)
        .run(shard_case, |c| {
            let mut p = build(c);
            let pl = candidate(c, &p, 0);
            p.set_sharding(3, 2);
            for threads in THREADS {
                prop_assert_eq!(
                    p.eval_cost(&pl, threads).to_bits(),
                    p.graph().cost(&pl).to_bits()
                );
            }
            // Restrict to a prefix scope; the subproblem keeps sharding
            // and its dispatch still matches its own flat graph.
            let scope: Vec<ObjectId> = p.objects().take(p.num_objects().div_ceil(2)).collect();
            let (sub, _) = p.restrict_to(&scope);
            let sub_sharded = sub.sharded().expect("sharding must survive restrict_to");
            prop_assert_eq!(sub_sharded.num_edges(), sub.pairs().len());
            let sub_pl = Placement::new(
                (0..sub.num_objects() as u32).map(|i| i % sub.num_nodes() as u32).collect(),
                sub.num_nodes(),
            );
            for threads in THREADS {
                prop_assert_eq!(
                    sub.eval_cost(&sub_pl, threads).to_bits(),
                    sub.graph().cost(&sub_pl).to_bits(),
                    "restricted dispatch diverged at {threads} threads"
                );
            }
            Ok(())
        });
}

/// Sharded builds are a pure function of `(pairs, shard_count)`: the
/// build thread count never changes structure or any query result, and
/// shard memory accounting stays within a constant factor of the flat
/// CSR (each edge is stored once as a column entry and twice as row
/// entries, same as flat — only fixed per-shard overhead differs).
#[test]
fn build_threads_never_change_the_view() {
    Checker::new("build_threads_never_change_the_view")
        .cases(64)
        .regressions(REGRESSIONS)
        .run(shard_case, |c| {
            let p = build(c);
            let pl = candidate(c, &p, 0);
            for shards in [2usize, 7] {
                let reference = ShardedGraph::build(p.num_objects(), p.pairs(), shards, 1);
                for build_threads in [2usize, 8] {
                    let other =
                        ShardedGraph::build(p.num_objects(), p.pairs(), shards, build_threads);
                    prop_assert_eq!(other.shard_count(), reference.shard_count());
                    prop_assert_eq!(other.memory_bytes(), reference.memory_bytes());
                    prop_assert_eq!(
                        other.cost(&pl, 1).to_bits(),
                        reference.cost(&pl, 1).to_bits(),
                        "build threads changed a query result at {shards} shards"
                    );
                }
            }
            prop_assert!(
                ShardedGraph::build(p.num_objects(), p.pairs(), 1, 1).memory_bytes()
                    <= p.graph().memory_bytes(),
                "a single shard must not out-weigh the flat CSR (which also \
                 carries precomputed orders)"
            );
            Ok(())
        });
}
