//! Round-trip property battery over the shared report framing
//! (DESIGN.md §13/§14): every persisted report kind — controller,
//! serving, live — must re-read bit for bit from its own text format,
//! and formatting the parsed copy must be a fixed point. The reports
//! are randomized across the full field ranges (zeros, maxima, awkward
//! floats, sparse and dense histograms), so any asymmetry between the
//! shared writer and parser shows up as a shrunk counterexample.

use cca_check::{prop_assert, prop_assert_eq, Checker, Rng, SeedableRng, Shrink, StdRng};
use cca_core::{
    format_controller_report, format_live_report, format_serving_report, read_controller_report,
    read_live_report, read_serving_report, ControllerReport, LatencyHistogram, LiveReport,
    ServingReport,
};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/persist_properties.regressions");

#[derive(Debug, Clone)]
struct ReportCase {
    seed: u64,
}

impl Shrink for ReportCase {
    fn shrink(&self) -> Vec<Self> {
        self.seed
            .shrink()
            .into_iter()
            .map(|seed| ReportCase { seed })
            .collect()
    }
}

fn report_case(rng: &mut StdRng) -> ReportCase {
    ReportCase {
        seed: rng.random_range(0..u64::MAX),
    }
}

/// A u64 biased toward the edges (0, small, `u64::MAX`) where text
/// formats usually break.
fn edge_u64(rng: &mut StdRng) -> u64 {
    match rng.random_range(0u8..4) {
        0 => 0,
        1 => rng.random_range(0..1_000),
        2 => u64::MAX,
        _ => rng.random_range(0..u64::MAX),
    }
}

/// Floats that stress the shortest-decimal round trip: exact zeros,
/// dyadics, classic non-representable decimals, and huge/tiny ratios.
fn edge_f64(rng: &mut StdRng) -> f64 {
    match rng.random_range(0u8..5) {
        0 => 0.0,
        1 => rng.random_range(0..1_000_000) as f64 / 1024.0,
        2 => 0.1 + 0.2,
        3 => rng.random_range(0..u64::MAX) as f64 / 3.0,
        _ => rng.random_range(1..u64::MAX) as f64 * 1e-9,
    }
}

fn digest(rng: &mut StdRng) -> String {
    format!(
        "{:016x}{:016x}",
        rng.random_range(0..u64::MAX),
        rng.random_range(0..u64::MAX)
    )
}

fn histogram(rng: &mut StdRng) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for _ in 0..rng.random_range(0usize..8) {
        h.add_bucket(rng.random_range(0..65), rng.random_range(1..1_000_000));
    }
    h
}

fn controller_report(rng: &mut StdRng) -> ControllerReport {
    ControllerReport {
        epochs: edge_u64(rng),
        queries: edge_u64(rng),
        evaluated: edge_u64(rng),
        migrations: edge_u64(rng),
        objects_moved: edge_u64(rng),
        migrated_bytes: edge_u64(rng),
        rejected_not_worthwhile: edge_u64(rng),
        rejected_not_robust: edge_u64(rng),
        degradations: edge_u64(rng),
        solve_retries: edge_u64(rng),
        repairs: edge_u64(rng),
        repair_retries: edge_u64(rng),
        repair_moves: edge_u64(rng),
        repair_bytes: edge_u64(rng),
        node_losses: edge_u64(rng),
        unrecovered_losses: edge_u64(rng),
        accumulated_loss: edge_f64(rng),
        final_cost: edge_f64(rng),
        final_feasible: rng.random_range(0u8..2) == 1,
    }
}

fn serving_report(rng: &mut StdRng) -> ServingReport {
    ServingReport {
        queries: edge_u64(rng),
        served: edge_u64(rng),
        degraded: edge_u64(rng),
        shed_admission: edge_u64(rng),
        shed_overload: edge_u64(rng),
        shed_deadline: edge_u64(rng),
        executed_bytes: edge_u64(rng),
        estimated_bytes: edge_u64(rng),
        p50_ns: edge_u64(rng),
        p95_ns: edge_u64(rng),
        p99_ns: edge_u64(rng),
        histogram: histogram(rng),
        digest: digest(rng),
    }
}

fn live_report(rng: &mut StdRng) -> LiveReport {
    LiveReport {
        epochs: edge_u64(rng),
        queries: edge_u64(rng),
        served: edge_u64(rng),
        degraded: edge_u64(rng),
        shed_admission: edge_u64(rng),
        shed_overload: edge_u64(rng),
        shed_deadline: edge_u64(rng),
        executed_bytes: edge_u64(rng),
        estimated_bytes: edge_u64(rng),
        evaluated: edge_u64(rng),
        migrations: edge_u64(rng),
        abandoned_migrations: edge_u64(rng),
        migration_epochs: edge_u64(rng),
        migrated_bytes: edge_u64(rng),
        max_epoch_migrated_bytes: edge_u64(rng),
        migration_budget: edge_u64(rng),
        pre_epochs: edge_u64(rng),
        pre_queries: edge_u64(rng),
        pre_executed_bytes: edge_u64(rng),
        post_epochs: edge_u64(rng),
        post_queries: edge_u64(rng),
        post_executed_bytes: edge_u64(rng),
        p50_ns: edge_u64(rng),
        p95_ns: edge_u64(rng),
        p99_ns: edge_u64(rng),
        final_feasible: rng.random_range(0u8..2) == 1,
        digest: digest(rng),
        pre_histogram: histogram(rng),
        mid_histogram: histogram(rng),
        post_histogram: histogram(rng),
    }
}

/// Every report kind round-trips bit for bit and formatting the parsed
/// copy reproduces the exact bytes.
#[test]
fn every_report_kind_round_trips_bit_exact() {
    Checker::new("every_report_kind_round_trips_bit_exact")
        .cases(96)
        .regressions(REGRESSIONS)
        .run(report_case, |case| {
            let mut rng = StdRng::seed_from_u64(case.seed);

            let r = controller_report(&mut rng);
            let text = format_controller_report(&r);
            prop_assert!(
                text.starts_with("# cca-controller-report v1\n"),
                "controller header missing"
            );
            let parsed = read_controller_report(text.as_bytes())
                .map_err(|e| format!("controller report failed to parse: {e}"))?;
            prop_assert_eq!(&parsed, &r, "controller report changed in flight");
            prop_assert_eq!(
                format_controller_report(&parsed),
                text,
                "controller formatting is not a fixed point"
            );

            let r = serving_report(&mut rng);
            let text = format_serving_report(&r);
            prop_assert!(
                text.starts_with("# cca-serving-report v1\n"),
                "serving header missing"
            );
            let parsed = read_serving_report(text.as_bytes())
                .map_err(|e| format!("serving report failed to parse: {e}"))?;
            prop_assert_eq!(&parsed, &r, "serving report changed in flight");
            prop_assert_eq!(
                format_serving_report(&parsed),
                text,
                "serving formatting is not a fixed point"
            );

            let r = live_report(&mut rng);
            let text = format_live_report(&r);
            prop_assert!(
                text.starts_with("# cca-live-report v1\n"),
                "live header missing"
            );
            let parsed = read_live_report(text.as_bytes())
                .map_err(|e| format!("live report failed to parse: {e}"))?;
            prop_assert_eq!(&parsed, &r, "live report changed in flight");
            prop_assert_eq!(
                format_live_report(&parsed),
                text,
                "live formatting is not a fixed point"
            );

            Ok(())
        });
}

/// The three formats are mutually exclusive: a report parses only under
/// its own header.
#[test]
fn headers_are_mutually_exclusive() {
    let mut rng = StdRng::seed_from_u64(7);
    let controller = format_controller_report(&controller_report(&mut rng));
    let serving = format_serving_report(&serving_report(&mut rng));
    let live = format_live_report(&live_report(&mut rng));
    assert!(read_controller_report(serving.as_bytes()).is_err());
    assert!(read_controller_report(live.as_bytes()).is_err());
    assert!(read_serving_report(controller.as_bytes()).is_err());
    assert!(read_serving_report(live.as_bytes()).is_err());
    assert!(read_live_report(controller.as_bytes()).is_err());
    assert!(read_live_report(serving.as_bytes()).is_err());
}
