//! Integration tests of the §3.3 extension: secondary capacity
//! constraints (bandwidth/CPU) across every placement algorithm and both
//! LP formulations.

use cca_core::{
    capacity_bounded_clusters, exact_placement, greedy_placement, place, solve_relaxation,
    CcaProblem, ExactOptions, ObjectId, Placement, RelaxMethod, RelaxOptions, Resource,
};
use cca_core::Strategy as PlacementStrategy;

/// Two objects that fit together by storage but not by bandwidth.
fn bandwidth_bound_problem() -> (CcaProblem, ObjectId, ObjectId) {
    let mut b = CcaProblem::builder();
    let a = b.add_object("a", 10);
    let c = b.add_object("b", 10);
    b.add_pair(a, c, 1.0, 5.0).unwrap();
    b.uniform_capacities(2, 100); // storage is plentiful
    b.add_resource(Resource::new("bandwidth", vec![8, 8], vec![10, 10]));
    (b.build().unwrap(), a, c)
}

#[test]
fn builder_validates_resource_dimensions() {
    let mut b = CcaProblem::builder();
    b.add_object("a", 1);
    b.uniform_capacities(2, 10);
    b.add_resource(Resource::new("cpu", vec![1, 2, 3], vec![5, 5]));
    assert!(matches!(
        b.build(),
        Err(cca_core::ProblemError::Resource(_))
    ));
}

#[test]
fn placement_checks_all_dimensions() {
    let (p, a, c) = bandwidth_bound_problem();
    let together = Placement::new(vec![0, 0], 2);
    // Storage is fine, bandwidth (16 > 10) is not.
    assert!(together.within_capacity(&p, 1.0));
    assert!(!together.within_all_capacities(&p, 1.0));
    assert_eq!(together.resource_loads(&p, 0), vec![16, 0]);

    let split = Placement::new(vec![0, 1], 2);
    assert!(split.within_all_capacities(&p, 1.0));
    let _ = (a, c);
}

#[test]
fn greedy_respects_secondary_resources() {
    let (p, a, c) = bandwidth_bound_problem();
    let placement = greedy_placement(&p);
    // Greedy must refuse to co-locate the pair despite the correlation.
    assert_ne!(placement.node_of(a), placement.node_of(c));
    assert!(placement.within_all_capacities(&p, 1.0));
}

#[test]
fn clustering_respects_secondary_budgets() {
    let (p, _, _) = bandwidth_bound_problem();
    // Storage budget is huge, but bandwidth (8 + 8 > 10) forbids merging.
    let clusters = capacity_bounded_clusters(&p, 1000);
    assert_eq!(clusters.len(), 2);
}

#[test]
fn lprr_respects_secondary_resources() {
    let (p, a, c) = bandwidth_bound_problem();
    let report = place(&p, &PlacementStrategy::lprr()).unwrap();
    assert_ne!(report.placement.node_of(a), report.placement.node_of(c));
    assert!(report
        .placement
        .within_all_capacities(&p, 1.05 + 1e-9));
    assert!((report.cost - 5.0).abs() < 1e-9);
}

#[test]
fn exact_solver_respects_secondary_resources() {
    let (p, a, c) = bandwidth_bound_problem();
    let (placement, cost) = exact_placement(&p, &ExactOptions::default()).unwrap();
    assert_ne!(placement.node_of(a), placement.node_of(c));
    assert!((cost - 5.0).abs() < 1e-9);
}

#[test]
fn cutting_plane_lp_enforces_resource_rows() {
    // Fractionally, bandwidth still binds: each node takes at most 10/16
    // of the pair's total bandwidth, forcing genuine mass splitting and a
    // positive optimum (the degeneracy escape hatch: with resources, the
    // shared-row trick can violate the secondary constraint).
    let mut b = CcaProblem::builder();
    let a = b.add_object("a", 10);
    let c = b.add_object("b", 10);
    b.add_pair(a, c, 1.0, 5.0).unwrap();
    b.uniform_capacities(2, 100);
    // Identical rows x = (x0, x1) for both objects need 16·x_k <= 10 per
    // node => x_k <= 0.625, sum can still reach 1. So z = 0 remains
    // feasible here; assert the LP agrees and stays feasible.
    b.add_resource(Resource::new("bandwidth", vec![8, 8], vec![10, 10]));
    let p = b.build().unwrap();
    let out = solve_relaxation(
        &p,
        None,
        &RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            ..RelaxOptions::default()
        },
    )
    .unwrap();
    assert!(out.converged);
    assert!(out.objective >= -1e-9);
    // Expected bandwidth loads respect the constraint.
    for k in 0..2 {
        let load: f64 = [a, c]
            .iter()
            .map(|&o| 8.0 * out.fractional.fraction(o, k))
            .sum();
        assert!(load <= 10.0 + 1e-6, "node {k} bandwidth {load}");
    }

    // With heterogeneous nodes the degeneracy genuinely breaks: a
    // bandwidth-heavy object and a CPU-heavy object on a bandwidth-rich
    // and a CPU-rich node. The identical shared row would need
    // x_k <= min(cap_bw(k)/9, cap_cpu(k)/9) = 2/9 on both nodes — total
    // 4/9 < 1 — so the pair must genuinely split fractional mass and the
    // LP optimum is strictly positive, even though the integral placement
    // (a on node 0, c on node 1) is perfectly feasible.
    let mut b2 = CcaProblem::builder();
    let a2 = b2.add_object("a", 10);
    let c2 = b2.add_object("b", 10);
    b2.add_pair(a2, c2, 1.0, 5.0).unwrap();
    b2.uniform_capacities(2, 100);
    b2.add_resource(Resource::new("bandwidth", vec![8, 1], vec![9, 2]));
    b2.add_resource(Resource::new("cpu", vec![1, 8], vec![2, 9]));
    let p2 = b2.build().unwrap();
    let out2 = solve_relaxation(
        &p2,
        None,
        &RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            ..RelaxOptions::default()
        },
    )
    .unwrap();
    assert!(out2.converged);
    assert!(
        out2.objective > 0.1,
        "tight bandwidth must force a positive LP optimum, got {}",
        out2.objective
    );
}

#[test]
fn degenerate_vertex_refuses_resource_problems() {
    let (p, _, _) = bandwidth_bound_problem();
    let res = solve_relaxation(
        &p,
        None,
        &RelaxOptions {
            method: RelaxMethod::CombinatorialVertex,
            ..RelaxOptions::default()
        },
    );
    assert!(matches!(res, Err(cca_lp::LpError::InvalidModel(_))));
}

#[test]
fn aggregate_resource_infeasibility_is_detected() {
    let mut b = CcaProblem::builder();
    let a = b.add_object("a", 1);
    let c = b.add_object("b", 1);
    b.add_pair(a, c, 0.5, 1.0).unwrap();
    b.uniform_capacities(2, 10);
    b.add_resource(Resource::new("cpu", vec![9, 9], vec![4, 4]));
    let p = b.build().unwrap();
    assert!(matches!(
        solve_relaxation(&p, None, &RelaxOptions::default()),
        Err(cca_lp::LpError::Infeasible)
    ));
}

/// A heterogeneous scenario: a CPU-heavy and a storage-heavy object pair
/// must end up on different nodes than a naive storage-only fit would
/// choose, and figure-4 agrees with the cutting plane.
#[test]
fn figure4_and_cutting_plane_agree_with_resources() {
    let mut b = CcaProblem::builder();
    let objs: Vec<_> = (0..4).map(|i| b.add_object(format!("o{i}"), 4 + i as u64)).collect();
    b.add_pair(objs[0], objs[1], 0.8, 3.0).unwrap();
    b.add_pair(objs[2], objs[3], 0.6, 2.0).unwrap();
    b.add_pair(objs[1], objs[2], 0.3, 1.0).unwrap();
    b.uniform_capacities(2, 14);
    b.add_resource(Resource::new("cpu", vec![5, 1, 4, 2], vec![8, 8]));
    let p = b.build().unwrap();

    let fig4 = cca_core::figure4::Figure4Lp::build(&p)
        .solve(&Default::default())
        .unwrap();
    let cp = solve_relaxation(
        &p,
        None,
        &RelaxOptions {
            method: RelaxMethod::CuttingPlane,
            ..RelaxOptions::default()
        },
    )
    .unwrap();
    assert!(cp.converged);
    assert!(
        (fig4.1 - cp.objective).abs() < 1e-5 * (1.0 + fig4.1.abs()),
        "figure4 {} vs cutting-plane {}",
        fig4.1,
        cp.objective
    );
}
