//! First-party structured parallelism for the CCA reproduction.
//!
//! The workspace is hermetic (no rayon), so the parallel solve layer rests
//! on a deliberately small primitive: [`par_map_indexed`], a scoped,
//! fixed-size worker pool over [`std::thread::scope`] that maps a function
//! over `0..len` and returns the results **in index order**. Determinism is
//! the point: callers pair it with [`cca_rand::StreamFamily`]-style
//! per-index RNG substreams and index-ordered reductions, so the output is
//! byte-identical for any thread count — including `threads = 1`, which
//! runs inline on the calling thread with no pool at all.
//!
//! [`DeadlineGate`] is the companion cancellation primitive: a shared
//! wall-clock deadline latched through an atomic flag, checked by every
//! worker between work items, so one slow worker cannot overshoot a budget
//! by a whole batch.
//!
//! Panic semantics: a panic inside the mapped function tears down the pool
//! (the scope joins every worker) and then resumes the original panic on
//! the caller's thread — identical to the serial behavior, never a hang.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::Wake;
use std::time::Instant;

/// Number of hardware threads available to this process, with a floor of 1
/// (the standard query can fail on exotic platforms; 1 is always safe).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `0..len` on a scoped pool of at most `threads` workers and
/// returns the results in index order.
///
/// * `threads <= 1` (or `len <= 1`) runs inline on the calling thread —
///   bit-for-bit the plain serial loop, no threads spawned.
/// * Workers claim indices from a shared atomic counter (work stealing), so
///   an expensive item does not serialise the rest; each worker buffers
///   `(index, value)` pairs and the results are merged by index afterwards.
///   **Completion order never leaks into the output order.**
/// * If `f` panics for any index, every worker is joined and the first
///   observed panic resumes on the caller's thread.
///
/// Determinism contract: for a pure `f`, the returned vector is identical
/// for every `threads` value. For an `f` that consults shared state (e.g. a
/// [`DeadlineGate`]), only the items it gates may differ.
pub fn par_map_indexed<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(len).max(1);
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for bucket in buckets {
        for (i, v) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index in 0..len is claimed exactly once"))
        .collect()
}

/// A shared wall-clock deadline with a sticky atomic latch.
///
/// Workers call [`DeadlineGate::expired`] between work items; the first
/// observation of the deadline (or an explicit [`DeadlineGate::trip`])
/// latches the gate, so every subsequent check on every thread is a cheap
/// atomic load — and crucially, once tripped the gate **stays** tripped,
/// giving all workers a consistent stop signal.
#[derive(Debug)]
pub struct DeadlineGate {
    deadline: Option<Instant>,
    tripped: AtomicBool,
}

impl DeadlineGate {
    /// A gate over `deadline`; `None` never expires (unless tripped).
    #[must_use]
    pub fn new(deadline: Option<Instant>) -> Self {
        DeadlineGate {
            deadline,
            tripped: AtomicBool::new(false),
        }
    }

    /// The deadline this gate watches, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the deadline has passed or [`DeadlineGate::trip`] was
    /// called; sticky thereafter.
    #[must_use]
    pub fn expired(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.tripped.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Latches the gate manually (e.g. first error wins, stop the rest).
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::Relaxed);
    }
}

/// A one-bit [`std::task::Wake`] implementation: the waker primitive of the
/// first-party poll-based executor (the root crate's `serve` module).
///
/// Wrapped in an [`Arc`] it converts to a [`std::task::Waker`] via the
/// standard `Wake` machinery; the executor checks and clears the flag with
/// [`WakeFlag::take`] to decide whether a task needs re-polling. There is
/// no parking — the serving executor is cooperative and always has work to
/// do between polls (dispatching batches), so a boolean is the whole
/// story, and it keeps the crate `forbid(unsafe_code)`-clean (no hand-rolled
/// `RawWaker` vtable).
#[derive(Debug, Default)]
pub struct WakeFlag {
    woken: AtomicBool,
}

impl WakeFlag {
    /// A new flag, initially woken so the first poll always runs.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(WakeFlag {
            woken: AtomicBool::new(true),
        })
    }

    /// Raises the flag.
    pub fn set(&self) {
        self.woken.store(true, Ordering::Release);
    }

    /// Returns whether the flag was raised, clearing it.
    #[must_use]
    pub fn take(&self) -> bool {
        self.woken.swap(false, Ordering::AcqRel)
    }
}

impl Wake for WakeFlag {
    fn wake(self: Arc<Self>) {
        self.set();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.set();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn maps_in_index_order_for_every_thread_count() {
        let want: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_map_indexed(threads, 97, |i| i * i),
                want,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn handles_degenerate_lengths() {
        assert_eq!(par_map_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(8, 1, |i| i + 1), vec![1]);
        assert_eq!(par_map_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map_indexed(4, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early indices sleep; late indices finish first. Output order
        // must not care.
        let out = par_map_indexed(4, 8, |i| {
            if i < 2 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(4, 16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn gate_without_deadline_never_expires_until_tripped() {
        let gate = DeadlineGate::new(None);
        assert!(!gate.expired());
        gate.trip();
        assert!(gate.expired());
        assert!(gate.expired(), "trip is sticky");
    }

    #[test]
    fn gate_latches_a_past_deadline() {
        let gate = DeadlineGate::new(Some(Instant::now()));
        assert!(gate.expired());
        assert!(gate.expired());
        let future = DeadlineGate::new(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!future.expired());
        assert!(
            future.deadline().is_some(),
            "deadline accessor reports the configured instant"
        );
    }

    #[test]
    fn available_parallelism_is_at_least_one() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn wake_flag_starts_woken_and_take_clears() {
        let flag = WakeFlag::new();
        assert!(flag.take(), "fresh flag polls once");
        assert!(!flag.take(), "take clears");
        flag.set();
        assert!(flag.take());
        assert!(!flag.take());
    }

    #[test]
    fn wake_flag_drives_a_std_waker() {
        let flag = WakeFlag::new();
        assert!(flag.take());
        let waker = std::task::Waker::from(Arc::clone(&flag));
        waker.wake_by_ref();
        assert!(flag.take(), "wake_by_ref raises the flag");
        assert!(!flag.take());
        waker.wake();
        assert!(flag.take(), "wake (by value) raises the flag");
    }

    #[test]
    fn wake_flag_is_visible_across_threads() {
        let flag = WakeFlag::new();
        assert!(flag.take());
        let remote = Arc::clone(&flag);
        std::thread::scope(|s| {
            s.spawn(move || remote.set());
        });
        assert!(flag.take(), "set on another thread is observed");
    }
}
