//! Property-based tests of the LP solvers: the dense reference simplex and
//! the sparse revised simplex must agree on randomly generated models, and
//! every reported optimum must validate from first principles.

use cca_check::{gen, prop_assert, prop_assert_eq, Checker, Rng, Shrink, StdRng};
use cca_lp::{presolve, validate_solution, LpError, Model, Relation, SolverOptions};

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/property.regressions");

/// A random constraint row: `(relation code, rhs, coefficients)`.
type RandomRow = (u8, i8, Vec<(usize, i8)>);

/// A randomly generated model description the harness can shrink.
#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<i8>,
    rows: Vec<RandomRow>,
    maximize: bool,
}

impl Shrink for RandomLp {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Rows shrink freely (structurally and element-wise): `build` is
        // total for any row content.
        for rows in self.rows.shrink() {
            out.push(RandomLp { rows, ..self.clone() });
        }
        // The objective length fixes the variable count, so only same-length
        // (element-wise) candidates are valid.
        for objective in self.objective.shrink() {
            if objective.len() == self.objective.len() {
                out.push(RandomLp { objective, ..self.clone() });
            }
        }
        if self.maximize {
            out.push(RandomLp { maximize: false, ..self.clone() });
        }
        out
    }
}

fn random_lp(rng: &mut StdRng) -> RandomLp {
    let num_vars = rng.random_range(1usize..7);
    let objective = (0..num_vars).map(|_| rng.random_range(-4i8..=6)).collect();
    let rows = gen::vec(rng, 1..6, |r| {
        (
            r.random_range(0u8..3),
            r.random_range(-4i8..=8),
            gen::vec(r, 1..num_vars + 1, |r2| {
                (r2.random_range(0..num_vars), r2.random_range(-3i8..=4))
            }),
        )
    });
    RandomLp {
        objective,
        rows,
        maximize: rng.random(),
    }
}

fn build(lp: &RandomLp) -> Model {
    let mut m = if lp.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<_> = lp
        .objective
        .iter()
        .enumerate()
        .map(|(i, &c)| m.add_var(format!("x{i}"), f64::from(c)))
        .collect();
    for (r, (rel, rhs, coeffs)) in lp.rows.iter().enumerate() {
        // Shrinking can empty a row's coefficients; the generator always
        // emits at least one, so skip such rows rather than build 0 ⋈ rhs.
        if coeffs.is_empty() {
            continue;
        }
        let relation = match rel % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let row = m.add_constraint(format!("r{r}"), relation, f64::from(*rhs));
        for &(var, coeff) in coeffs {
            // Index modulo the variable count keeps shrunk cases in range.
            m.set_coeff(row, vars[var % vars.len()], f64::from(coeff));
        }
    }
    m
}

/// Dense and sparse solvers agree on status and, when optimal, on the
/// objective value; optimal solutions validate from first principles.
#[test]
fn dense_and_sparse_agree() {
    Checker::new("dense_and_sparse_agree")
        .cases(200)
        .regressions(REGRESSIONS)
        .run(random_lp, |lp| {
            let model = build(lp);
            let dense = model.solve_dense();
            let sparse = model.solve(&SolverOptions::default());
            match (dense, sparse) {
                (Ok(d), Ok(s)) => {
                    let scale = 1.0 + d.objective.abs().max(s.objective.abs());
                    prop_assert!(
                        (d.objective - s.objective).abs() < 1e-6 * scale,
                        "dense {} vs sparse {}",
                        d.objective,
                        s.objective
                    );
                    let violations = validate_solution(&model, &s);
                    prop_assert!(violations.is_empty(), "sparse violations: {violations:?}");
                    let violations = validate_solution(&model, &d);
                    prop_assert!(violations.is_empty(), "dense violations: {violations:?}");
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                (d, s) => prop_assert!(false, "status mismatch: dense {d:?}, sparse {s:?}"),
            }
            Ok(())
        });
}

/// Strong duality: at a reported optimum, the dual objective b'y equals
/// the primal objective (both solvers).
#[test]
fn strong_duality_holds() {
    Checker::new("strong_duality_holds")
        .cases(200)
        .regressions(REGRESSIONS)
        .run(random_lp, |lp| {
            let model = build(lp);
            if let Ok(sol) = model.solve(&SolverOptions::default()) {
                // Dual objective: sum over rows of rhs * dual. Skipped
                // (empty) rows never enter the model, so walk the kept rows
                // in construction order.
                let kept_rhs: Vec<f64> = lp
                    .rows
                    .iter()
                    .filter(|(_, _, coeffs)| !coeffs.is_empty())
                    .map(|&(_, rhs, _)| f64::from(rhs))
                    .collect();
                let mut dual_obj = 0.0;
                // Row handles are dense indices by construction.
                for (rhs, dual) in kept_rhs.iter().zip(&sol.duals).take(model.num_constraints()) {
                    dual_obj += dual * rhs;
                }
                let scale = 1.0 + sol.objective.abs();
                prop_assert!(
                    (dual_obj - sol.objective).abs() < 1e-5 * scale,
                    "primal {} vs dual {}",
                    sol.objective,
                    dual_obj
                );
            }
            Ok(())
        });
}

/// Scaling the objective scales the optimum (solver linearity sanity).
#[test]
fn objective_scaling() {
    Checker::new("objective_scaling")
        .cases(200)
        .regressions(REGRESSIONS)
        .run(
            |rng| (random_lp(rng), rng.random_range(1u8..5)),
            |(lp, factor)| {
                let factor = (*factor).max(1); // shrinking may drive it to 0
                let model = build(lp);
                let mut scaled_lp = lp.clone();
                for c in &mut scaled_lp.objective {
                    *c = c.saturating_mul(factor as i8);
                }
                let scaled = build(&scaled_lp);
                // Only meaningful when scaling didn't saturate.
                let saturated = lp.objective.iter().any(|&c| {
                    i16::from(c) * i16::from(factor) != i16::from(c.saturating_mul(factor as i8))
                });
                if !saturated {
                    match (
                        model.solve(&SolverOptions::default()),
                        scaled.solve(&SolverOptions::default()),
                    ) {
                        (Ok(a), Ok(b)) => {
                            let want = a.objective * f64::from(factor);
                            let scale = 1.0 + want.abs();
                            prop_assert!(
                                (b.objective - want).abs() < 1e-5 * scale,
                                "scaled {} vs expected {}",
                                b.objective,
                                want
                            );
                        }
                        (Err(ea), Err(eb)) => prop_assert_eq!(
                            std::mem::discriminant(&ea),
                            std::mem::discriminant(&eb)
                        ),
                        (a, b) => prop_assert!(false, "scaling changed status: {a:?} vs {b:?}"),
                    }
                }
                Ok(())
            },
        );
}

/// Presolve is equivalence-preserving: solving the presolved model and
/// restoring gives the same objective (and a solution that validates on
/// the original model) as solving directly. Status agreement includes
/// presolve proving infeasibility/unboundedness early.
#[test]
fn presolve_preserves_equivalence() {
    Checker::new("presolve_preserves_equivalence")
        .cases(200)
        .regressions(REGRESSIONS)
        .run(random_lp, |lp| {
            let model = build(lp);
            let direct = model.solve(&SolverOptions::default());
            let via = presolve(&model).and_then(|p| p.solve(&SolverOptions::default()));
            match (direct, via) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective.abs().max(b.objective.abs());
                    prop_assert!(
                        (a.objective - b.objective).abs() < 1e-6 * scale,
                        "direct {} vs presolved {}",
                        a.objective,
                        b.objective
                    );
                    let violations = validate_solution(&model, &b);
                    prop_assert!(violations.is_empty(), "restored violations: {violations:?}");
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                (a, b) => prop_assert!(false, "status mismatch: direct {a:?}, presolved {b:?}"),
            }
            Ok(())
        });
}

/// LP-format round trips preserve the optimum on random models.
#[test]
fn lp_format_round_trip() {
    Checker::new("lp_format_round_trip")
        .cases(200)
        .regressions(REGRESSIONS)
        .run(random_lp, |lp| {
            let model = build(lp);
            let text = cca_lp::write_lp(&model);
            let parsed = cca_lp::parse_lp(&text);
            prop_assert!(parsed.is_ok(), "parse failed: {:?}\n{text}", parsed.err());
            let parsed = parsed.unwrap();
            match (
                model.solve(&SolverOptions::default()),
                parsed.solve(&SolverOptions::default()),
            ) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective.abs().max(b.objective.abs());
                    prop_assert!(
                        (a.objective - b.objective).abs() < 1e-6 * scale,
                        "original {} vs reparsed {}",
                        a.objective,
                        b.objective
                    );
                }
                (Err(ea), Err(eb)) => {
                    prop_assert_eq!(std::mem::discriminant(&ea), std::mem::discriminant(&eb))
                }
                (a, b) => prop_assert!(false, "status mismatch: {a:?} vs {b:?}"),
            }
            Ok(())
        });
}

/// Deterministic regression cases distilled from fuzzing-style exploration.
#[test]
fn regression_zero_rhs_equalities() {
    let mut m = Model::minimize();
    let x = m.add_var("x", 1.0);
    let y = m.add_var("y", -1.0);
    m.add_constraint_with("e", Relation::Eq, 0.0, [(x, 1.0), (y, -1.0)]);
    m.add_constraint_with("cap", Relation::Le, 5.0, [(x, 1.0), (y, 1.0)]);
    // min x - y with x = y: objective 0 along the segment.
    let sol = m.solve(&SolverOptions::default()).unwrap();
    assert!(sol.objective.abs() < 1e-9);
}

#[test]
fn regression_all_zero_objective() {
    let mut m = Model::maximize();
    let x = m.add_var("x", 0.0);
    m.add_constraint_with("r", Relation::Ge, 2.0, [(x, 1.0)]);
    let sol = m.solve(&SolverOptions::default()).unwrap();
    assert_eq!(sol.objective, 0.0);
    assert!(sol.values[0] >= 2.0 - 1e-9);
}

#[test]
fn regression_redundant_equalities_sparse() {
    let mut m = Model::minimize();
    let x = m.add_var("x", 2.0);
    let y = m.add_var("y", 3.0);
    m.add_constraint_with("e1", Relation::Eq, 4.0, [(x, 1.0), (y, 1.0)]);
    m.add_constraint_with("e2", Relation::Eq, 8.0, [(x, 2.0), (y, 2.0)]);
    m.add_constraint_with("e3", Relation::Eq, 12.0, [(x, 3.0), (y, 3.0)]);
    let sol = m.solve(&SolverOptions::default()).unwrap();
    assert!((sol.objective - 8.0).abs() < 1e-8); // x = 4, y = 0
}

/// The shrunk case once persisted in `property.proptest-regressions`:
/// minimize −x0 subject to −x1 ≥ 0 and x1 ≥ 1. With x ≥ 0 this forces
/// x1 ≤ 0 and x1 ≥ 1 at once, so both solvers must report infeasibility
/// (historically the dense and sparse paths disagreed here).
#[test]
fn regression_conflicting_bounds_on_unused_variable() {
    let lp = RandomLp {
        objective: vec![-1, 0],
        rows: vec![(1, 0, vec![(1, -1)]), (1, 1, vec![(1, 1)])],
        maximize: false,
    };
    let model = build(&lp);
    assert!(matches!(model.solve_dense(), Err(LpError::Infeasible)));
    assert!(matches!(
        model.solve(&SolverOptions::default()),
        Err(LpError::Infeasible)
    ));
}
