//! Dense two-phase tableau simplex: the reference solver.
//!
//! Straightforward textbook implementation kept deliberately simple so it
//! can serve as a trustworthy oracle for the sparse revised simplex. Memory
//! is `O(m * n)`, so it is only suitable for small models.

use crate::model::{LpError, Model, Solution, SolveStatus};
use crate::standard::StandardForm;
use crate::tol;

/// Result of one simplex phase on the dense tableau.
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

struct Tableau {
    m: usize,
    n: usize,
    /// `m x (n + 1)` row-major tableau; the last column is the rhs.
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
    /// Columns allowed to enter the basis (artificials are barred in
    /// phase 2).
    enterable: Vec<bool>,
    /// Reduced costs `d_j = c_j - c_B' B^{-1} A_j` for the current phase.
    d: Vec<f64>,
    /// Current (internal, minimisation) objective value.
    obj: f64,
    iterations: u64,
    degenerate_streak: usize,
}

impl Tableau {
    fn new(sf: &StandardForm) -> Self {
        let mut t = vec![vec![0.0; sf.n + 1]; sf.m];
        let dense = sf.a.to_dense();
        for i in 0..sf.m {
            t[i][..sf.n].copy_from_slice(&dense[i]);
            t[i][sf.n] = sf.b[i];
        }
        Tableau {
            m: sf.m,
            n: sf.n,
            t,
            basis: sf.initial_basis.clone(),
            enterable: vec![true; sf.n],
            d: vec![0.0; sf.n],
            obj: 0.0,
            iterations: 0,
            degenerate_streak: 0,
        }
    }

    /// Recomputes reduced costs and the objective for cost vector `c`.
    /// Because the tableau rows are `B^{-1} A`, the reduced costs are
    /// `d = c - c_B' T` and the objective is `c_B' B^{-1} b`.
    fn set_costs(&mut self, c: &[f64]) {
        self.d.copy_from_slice(c);
        self.obj = 0.0;
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb != 0.0 {
                let row = &self.t[i];
                for j in 0..self.n {
                    self.d[j] -= cb * row[j];
                }
                self.obj += cb * row[self.n];
            }
        }
    }

    /// Chooses an entering column: Dantzig rule normally, Bland's rule after
    /// a long degenerate streak (anti-cycling).
    fn choose_entering(&self, bland: bool) -> Option<usize> {
        if bland {
            (0..self.n).find(|&j| self.enterable[j] && self.d[j] < -tol::OPT)
        } else {
            let mut best = None;
            let mut best_val = -tol::OPT;
            for j in 0..self.n {
                if self.enterable[j] && self.d[j] < best_val {
                    best_val = self.d[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Ratio test: returns the leaving row, or `None` if the column is
    /// unbounded. Ties are broken by the largest pivot magnitude, then by
    /// the smallest basis index (keeps Bland's rule sound).
    fn choose_leaving(&self, entering: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64, f64)> = None; // (row, ratio, pivot)
        for i in 0..self.m {
            let a = self.t[i][entering];
            if a > tol::PIVOT {
                let ratio = self.t[i][self.n] / a;
                match best {
                    None => best = Some((i, ratio, a)),
                    Some((bi, br, bp)) => {
                        let better = if ratio < br - tol::FEAS {
                            true
                        } else if ratio > br + tol::FEAS {
                            false
                        } else if bland {
                            self.basis[i] < self.basis[bi]
                        } else {
                            a > bp
                        };
                        if better {
                            best = Some((i, ratio, a));
                        }
                    }
                }
            }
        }
        best.map(|(i, _, _)| i)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.t[row][col];
        debug_assert!(pivot.abs() > tol::PIVOT);
        let inv = 1.0 / pivot;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        // Snapshot the pivot row to satisfy the borrow checker cheaply.
        let prow = self.t[row].clone();
        for i in 0..self.m {
            if i != row {
                let factor = self.t[i][col];
                if factor != 0.0 {
                    let dst = &mut self.t[i];
                    for (v, p) in dst.iter_mut().zip(&prow) {
                        *v -= factor * p;
                    }
                    dst[col] = 0.0; // exact zero to avoid drift
                }
            }
        }
        let dfac = self.d[col];
        if dfac != 0.0 {
            for (j, p) in prow.iter().take(self.n).enumerate() {
                self.d[j] -= dfac * p;
            }
            self.d[col] = 0.0;
            self.obj += dfac * prow[self.n];
        }
        self.basis[row] = col;
    }

    fn run_phase(&mut self, max_iterations: u64) -> Result<PhaseOutcome, LpError> {
        loop {
            if max_iterations > 0 && self.iterations >= max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            let bland = self.degenerate_streak > 100;
            let Some(entering) = self.choose_entering(bland) else {
                return Ok(PhaseOutcome::Optimal);
            };
            let Some(leaving) = self.choose_leaving(entering, bland) else {
                return Ok(PhaseOutcome::Unbounded);
            };
            let step = self.t[leaving][self.n] / self.t[leaving][entering];
            if step.abs() <= tol::FEAS {
                self.degenerate_streak += 1;
            } else {
                self.degenerate_streak = 0;
            }
            self.pivot(leaving, entering);
            self.iterations += 1;
        }
    }

    /// Drives basic artificial variables out of the basis after phase 1, or
    /// verifies their rows are redundant.
    fn expel_artificials(&mut self, artificial_start: usize) {
        for i in 0..self.m {
            if self.basis[i] >= artificial_start {
                // Any non-artificial column with a usable pivot in this row?
                let col = (0..artificial_start).find(|&j| self.t[i][j].abs() > tol::PIVOT);
                if let Some(j) = col {
                    self.pivot(i, j);
                    self.iterations += 1;
                }
                // Otherwise the row is redundant: the artificial stays basic
                // at value zero and every non-artificial entry of its row is
                // zero, so no later pivot can change its value.
            }
        }
    }
}

pub(crate) fn solve(model: &Model) -> Result<Solution, LpError> {
    let sf = StandardForm::from_model(model);
    let mut tab = Tableau::new(&sf);

    // Phase 1: minimise the sum of artificials (skipped when none exist).
    if sf.artificial_start < sf.n {
        tab.set_costs(&sf.phase1_obj());
        match tab.run_phase(0)? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                return Err(LpError::Numerical(
                    "phase-1 objective reported unbounded; it is bounded below by 0".into(),
                ));
            }
        }
        if tab.obj > tol::FEAS * 10.0 {
            return Err(LpError::Infeasible);
        }
        tab.expel_artificials(sf.artificial_start);
        for j in sf.artificial_start..sf.n {
            tab.enterable[j] = false;
        }
    }

    // Phase 2: the real objective.
    tab.set_costs(&sf.obj);
    match tab.run_phase(0)? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(LpError::Unbounded),
    }

    // Extract the primal solution.
    let mut values = vec![0.0; sf.n_structural];
    for i in 0..sf.m {
        let j = tab.basis[i];
        if j < sf.n_structural {
            values[j] = tab.t[i][sf.n];
        }
    }

    // Recover duals from the reduced costs of each row's unit column
    // (the slack of a `<=` row, the artificial otherwise):
    // d_u = c_u - y_i = -y_i because those columns cost 0 in phase 2.
    let mut y = vec![0.0; sf.m];
    {
        // Map each row to its unit column, mirroring standard-form layout.
        let mut unit_col = vec![usize::MAX; sf.m];
        for (i, &bc) in sf.initial_basis.iter().enumerate() {
            unit_col[i] = bc;
        }
        for i in 0..sf.m {
            y[i] = -tab.d[unit_col[i]];
        }
    }

    Ok(Solution {
        status: SolveStatus::Optimal,
        objective: sf.restore_objective(tab.obj),
        values,
        duals: sf.restore_duals(&y),
        iterations: tab.iterations,
    })
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, Relation};
    use crate::tol::approx_eq;

    #[test]
    fn textbook_maximisation() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x = 4, y = 0, obj 12.
        let mut m = Model::maximize();
        let x = m.add_var("x", 3.0);
        let y = m.add_var("y", 2.0);
        m.add_constraint_with("r1", Relation::Le, 4.0, [(x, 1.0), (y, 1.0)]);
        m.add_constraint_with("r2", Relation::Le, 6.0, [(x, 1.0), (y, 3.0)]);
        let sol = m.solve_dense().unwrap();
        assert!(approx_eq(sol.objective, 12.0, 1e-9));
        assert!(approx_eq(sol.value(x), 4.0, 1e-9));
        assert!(approx_eq(sol.value(y), 0.0, 1e-9));
    }

    #[test]
    fn minimisation_with_ge_rows_uses_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3 -> x = 10, y = 0? No:
        // cost of x is 2 < 3 so push everything to x: x = 10, y = 0, obj 20.
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0);
        let y = m.add_var("y", 3.0);
        m.add_constraint_with("cover", Relation::Ge, 10.0, [(x, 1.0), (y, 1.0)]);
        m.add_constraint_with("xmin", Relation::Ge, 3.0, [(x, 1.0)]);
        let sol = m.solve_dense().unwrap();
        assert!(approx_eq(sol.objective, 20.0, 1e-9));
        assert!(approx_eq(sol.value(x), 10.0, 1e-9));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> y = 1, x = 2, obj 3.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint_with("e1", Relation::Eq, 4.0, [(x, 1.0), (y, 2.0)]);
        m.add_constraint_with("e2", Relation::Eq, 1.0, [(x, 1.0), (y, -1.0)]);
        let sol = m.solve_dense().unwrap();
        assert!(approx_eq(sol.objective, 3.0, 1e-9));
        assert!(approx_eq(sol.value(x), 2.0, 1e-9));
        assert!(approx_eq(sol.value(y), 1.0, 1e-9));
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        m.add_constraint_with("lo", Relation::Ge, 5.0, [(x, 1.0)]);
        m.add_constraint_with("hi", Relation::Le, 3.0, [(x, 1.0)]);
        assert!(matches!(m.solve_dense(), Err(crate::LpError::Infeasible)));
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::maximize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 0.0);
        m.add_constraint_with("r", Relation::Ge, 1.0, [(x, 1.0), (y, -1.0)]);
        assert!(matches!(m.solve_dense(), Err(crate::LpError::Unbounded)));
    }

    #[test]
    fn degenerate_model_terminates() {
        // Classic degenerate vertex: several constraints meet at the origin.
        let mut m = Model::maximize();
        let x = m.add_var("x", 0.75);
        let y = m.add_var("y", -150.0);
        let z = m.add_var("z", 0.02);
        let w = m.add_var("w", -6.0);
        // Beale's cycling example (bounded by an extra row).
        m.add_constraint_with(
            "r1",
            Relation::Le,
            0.0,
            [(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
        );
        m.add_constraint_with(
            "r2",
            Relation::Le,
            0.0,
            [(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
        );
        m.add_constraint_with("r3", Relation::Le, 1.0, [(z, 1.0)]);
        let sol = m.solve_dense().unwrap();
        assert!(approx_eq(sol.objective, 0.05, 1e-9));
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // Second equality row is exactly the first doubled.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 2.0);
        m.add_constraint_with("e1", Relation::Eq, 2.0, [(x, 1.0), (y, 1.0)]);
        m.add_constraint_with("e2", Relation::Eq, 4.0, [(x, 2.0), (y, 2.0)]);
        let sol = m.solve_dense().unwrap();
        assert!(approx_eq(sol.objective, 2.0, 1e-9));
        assert!(approx_eq(sol.value(x), 2.0, 1e-9));
    }

    #[test]
    fn weak_duality_holds() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 4.0);
        let y = m.add_var("y", 3.0);
        let r1 = m.add_constraint_with("r1", Relation::Ge, 10.0, [(x, 2.0), (y, 1.0)]);
        let r2 = m.add_constraint_with("r2", Relation::Ge, 8.0, [(x, 1.0), (y, 3.0)]);
        let sol = m.solve_dense().unwrap();
        // Dual objective b'y must equal the primal objective at optimality.
        let dual_obj = 10.0 * sol.dual(r1) + 8.0 * sol.dual(r2);
        assert!(approx_eq(dual_obj, sol.objective, 1e-8));
        // Duals of >= rows in a minimisation are non-negative.
        assert!(sol.dual(r1) >= -1e-9);
        assert!(sol.dual(r2) >= -1e-9);
    }
}
