//! Numerical tolerances shared by the simplex implementations.

/// Feasibility tolerance: a constraint is considered satisfied when its
/// violation does not exceed this value.
pub const FEAS: f64 = 1e-7;

/// Optimality tolerance on reduced costs: a column prices out when its
/// reduced cost is below `-OPT` (minimisation).
pub const OPT: f64 = 1e-7;

/// Minimum acceptable pivot magnitude. Pivots smaller than this are rejected
/// in the ratio test to protect the factorisation.
pub const PIVOT: f64 = 1e-8;

/// Values with absolute value below this are treated as exact zeros when
/// storing sparse vectors.
pub const DROP: f64 = 1e-12;

/// Returns `true` if `a` and `b` are equal within an absolute/relative blend
/// suitable for objective-value comparisons in tests.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-9, 1e-8));
        assert!(!approx_eq(0.0, 1e-3, 1e-8));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1e9, 1.01e9, 1e-8));
    }
}
